//! The artifact's `generate-graphs.py` equivalent: render Figures 9, 10
//! and 11 as standalone SVG files from the simulated data.
//!
//! Usage: `graphs [output-dir]` (default `./figures`)

use lulesh_bench::plot::{Chart, Scale, Series, PALETTE};
use lulesh_bench::{fig10, fig11, fig9, REGION_COUNTS, SIZES, THREADS};
use simsched::CostModel;

fn main() {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "figures".into());
    std::fs::create_dir_all(&outdir).expect("create output directory");
    let cm = CostModel::default();

    // ---- Figure 9: one chart per size, runtime over threads, log-y.
    let rows = fig9(cm);
    for &size in &SIZES {
        let per: Vec<_> = rows.iter().filter(|r| r.size == size).collect();
        let chart = Chart {
            title: format!("Figure 9 — LULESH runtime, size {size} (simulated EPYC 7443P)"),
            x_label: "execution threads".into(),
            y_label: "runtime (s)".into(),
            x_scale: Scale::Log,
            y_scale: Scale::Log,
            x_ticks: THREADS.iter().map(|&t| t as f64).collect(),
            series: vec![
                Series {
                    label: "OpenMP reference".into(),
                    points: per
                        .iter()
                        .map(|r| (r.threads as f64, r.omp_seconds))
                        .collect(),
                    color: PALETTE[1].into(),
                    dashed: true,
                },
                Series {
                    label: "HPX-style task port".into(),
                    points: per
                        .iter()
                        .map(|r| (r.threads as f64, r.task_seconds))
                        .collect(),
                    color: PALETTE[0].into(),
                    dashed: false,
                },
            ],
        };
        let path = format!("{outdir}/fig9_size{size}.svg");
        std::fs::write(&path, chart.to_svg()).expect("write svg");
        println!("wrote {path}");
    }

    // ---- Figure 10: speed-up over size, one series per region count.
    let rows = fig10(cm);
    let chart = Chart {
        title: "Figure 10 — speed-up at 24 threads (simulated)".into(),
        x_label: "problem size".into(),
        y_label: "speed-up (OpenMP / task port)".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Linear,
        x_ticks: SIZES.iter().map(|&s| s as f64).collect(),
        series: REGION_COUNTS
            .iter()
            .enumerate()
            .map(|(i, &rc)| Series {
                label: format!("{rc} regions"),
                points: rows
                    .iter()
                    .filter(|r| r.regions == rc)
                    .map(|r| (r.size as f64, r.speedup))
                    .collect(),
                color: PALETTE[i].into(),
                dashed: false,
            })
            .collect(),
    };
    let path = format!("{outdir}/fig10_speedup.svg");
    std::fs::write(&path, chart.to_svg()).expect("write svg");
    println!("wrote {path}");

    // ---- Figure 11: productive-time ratio over size.
    let rows = fig11(cm);
    let chart = Chart {
        title: "Figure 11 — productive-time ratio at 24 threads (simulated)".into(),
        x_label: "problem size".into(),
        y_label: "productive time / total time".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Linear,
        x_ticks: SIZES.iter().map(|&s| s as f64).collect(),
        series: vec![
            Series {
                label: "OpenMP reference".into(),
                points: rows
                    .iter()
                    .map(|r| (r.size as f64, r.omp_utilization))
                    .collect(),
                color: PALETTE[1].into(),
                dashed: true,
            },
            Series {
                label: "HPX-style task port".into(),
                points: rows
                    .iter()
                    .map(|r| (r.size as f64, r.task_utilization))
                    .collect(),
                color: PALETTE[0].into(),
                dashed: false,
            },
        ],
    };
    let path = format!("{outdir}/fig11_utilization.svg");
    std::fs::write(&path, chart.to_svg()).expect("write svg");
    println!("wrote {path}");
}
