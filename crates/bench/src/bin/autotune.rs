//! Static-vs-auto partition comparison: run the online auto-tuner against
//! the simulated 24-core machine for every paper size and report how it
//! stacks up against the static Table I plan and the exhaustive sweep.

use lulesh_bench::{autotune_sim, autotune_sim_2d, render_table, SIZES};
use simsched::CostModel;

fn main() {
    let rows: Vec<_> = SIZES
        .iter()
        .map(|&s| autotune_sim(CostModel::default(), s, 24))
        .collect();

    println!("# Auto-tuned partitions vs static plan (simulated, 24 threads)");
    println!(
        "size,static_nodal,static_elements,static_ns,auto_nodal,auto_elements,auto_ns,\
         sweep_nodal,sweep_elements,sweep_ns,windows,converged"
    );
    for r in &rows {
        println!(
            "{},{},{},{:.0},{},{},{:.0},{},{},{:.0},{},{}",
            r.size,
            r.static_plan.0,
            r.static_plan.1,
            r.static_ns,
            r.auto_plan.0,
            r.auto_plan.1,
            r.auto_ns,
            r.sweep_plan.0,
            r.sweep_plan.1,
            r.sweep_ns,
            r.windows,
            r.converged
        );
    }

    println!();
    let header = vec![
        "size",
        "static",
        "auto",
        "sweep",
        "auto/static",
        "auto/sweep",
        "windows",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{}x{}", r.static_plan.0, r.static_plan.1),
                format!("{}x{}", r.auto_plan.0, r.auto_plan.1),
                format!("{}x{}", r.sweep_plan.0, r.sweep_plan.1),
                format!("{:.3}", r.auto_ns / r.static_ns),
                format!("{:.3}", r.auto_ns / r.sweep_ns),
                r.windows.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));

    // The 2-D search (`--simd auto`): partition sizes × lane width against
    // the exhaustive (partition, width) sweep.
    let rows2: Vec<_> = SIZES
        .iter()
        .map(|&s| autotune_sim_2d(CostModel::default(), s, 24))
        .collect();
    println!();
    println!("# 2-D auto-tune (partition × lane width) vs exhaustive sweep");
    let header = vec![
        "size",
        "auto",
        "simd",
        "sweep",
        "auto/sweep",
        "auto/scalar",
        "windows",
    ];
    let body: Vec<Vec<String>> = rows2
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{}x{}", r.auto_plan.0, r.auto_plan.1),
                r.auto_width.to_string(),
                format!("{}x{} {}", r.sweep_plan.0, r.sweep_plan.1, r.sweep_width),
                format!("{:.3}", r.auto_ns / r.sweep_ns),
                format!("{:.3}", r.auto_ns / r.scalar_ns),
                r.windows.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));
}
