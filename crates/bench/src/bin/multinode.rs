//! Multi-node strong-scaling PROJECTION (the paper's future work, §VI):
//! the decomposed solver from `multidom`, projected onto a cluster of
//! 24-core nodes, comparing synchronous (MPI-style) and asynchronous
//! (task-style, overlapped) halo exchange. No cluster is involved — this
//! extrapolates the calibrated single-node model; the in-process
//! decomposed solver itself is validated for correctness in `multidom`.

use lulesh_bench::render_table;
use simsched::multinode::{strong_scaling, task_compute_1node_ns, weak_scaling, ClusterParams};
use simsched::{CostModel, LuleshConfig, LuleshModel};

fn main() {
    let cluster = ClusterParams::default();
    println!("# Multi-node strong-scaling projection (future work; NOT a cluster measurement)");
    println!(
        "interconnect: {:.0} us latency, {:.0} Gb/s; async overlap {:.0}%",
        cluster.latency_ns / 1000.0,
        cluster.bandwidth_bytes_per_ns * 8.0,
        cluster.async_overlap * 100.0
    );
    println!("size,nodes,sync_iter_ms,async_iter_ms,sync_eff,async_eff");

    for &size in &[90usize, 150] {
        let model = LuleshModel::new(LuleshConfig::with_size(size), CostModel::default());
        let (pn, pe) = lulesh_bench::paper_partition(size);
        let compute = task_compute_1node_ns(&model, pn, pe);
        let rows = strong_scaling(size, compute, &cluster, &[1, 2, 4, 8, 16, 32]);
        for r in &rows {
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                size,
                r.nodes,
                r.sync_ns / 1e6,
                r.async_ns / 1e6,
                r.sync_efficiency,
                r.async_efficiency
            );
        }
        println!();
        println!("## size {size} (per-iteration, task port at 24 threads/node)");
        let header = vec!["nodes", "sync (ms)", "async (ms)", "sync eff", "async eff"];
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    format!("{:.2}", r.sync_ns / 1e6),
                    format!("{:.2}", r.async_ns / 1e6),
                    format!("{:.1}%", 100.0 * r.sync_efficiency),
                    format!("{:.1}%", 100.0 * r.async_efficiency),
                ]
            })
            .collect();
        println!("{}", render_table(&header, &body));
    }
    // Weak scaling: one paper-sized problem per node.
    println!("## weak scaling (size 45 per node, per-iteration)");
    let model = LuleshModel::new(LuleshConfig::with_size(45), CostModel::default());
    let compute = task_compute_1node_ns(&model, 2048, 2048);
    let rows = weak_scaling(45, compute, &cluster, &[1, 2, 4, 8, 16, 32]);
    let header = vec!["nodes", "sync (ms)", "async (ms)", "sync eff", "async eff"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.2}", r.sync_ns / 1e6),
                format!("{:.2}", r.async_ns / 1e6),
                format!("{:.1}%", 100.0 * r.sync_efficiency),
                format!("{:.1}%", 100.0 * r.async_efficiency),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));

    println!(
        "projection supports the paper's expectation: asynchronous halo exchange \
         retains more\nparallel efficiency at scale than synchronous exchange."
    );
}
