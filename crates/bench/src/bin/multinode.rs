//! Multi-node strong-scaling PROJECTION (the paper's future work, §VI):
//! the decomposed solver from `multidom`, projected onto a cluster of
//! 24-core nodes, comparing synchronous (MPI-style) and asynchronous
//! (task-style, overlapped) halo exchange.
//!
//! The projection extrapolates the calibrated single-node model; the
//! interconnect can be overridden (`--latency-ns`, `--bandwidth-gbps`) or
//! **measured** from a real loopback socket pair (`--calibrate`, via
//! `parcelnet::tcp::measure_loopback`). `--measure` additionally runs the
//! decomposed solver for real over TCP loopback, blocking vs overlapped
//! force exchange, and prints the measured comm-vs-compute overlap table —
//! the one cluster-free experiment that exercises actual sockets.

use lulesh_bench::render_table;
use multidom::{taskpar, Decomposition, FaultPlan, SimArgs, TransportKind};
use simsched::multinode::{strong_scaling, task_compute_1node_ns, weak_scaling, ClusterParams};
use simsched::{CostModel, LuleshConfig, LuleshModel};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cluster = ClusterParams::default();
    let mut source = "default interconnect model";
    let mut measure = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut val = |name: &str| -> f64 {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a number");
                    std::process::exit(2);
                })
        };
        match flag.trim_start_matches('-') {
            "latency-ns" => {
                cluster.latency_ns = val("--latency-ns");
                source = "overridden interconnect";
            }
            "bandwidth-gbps" => {
                cluster.bandwidth_bytes_per_ns = val("--bandwidth-gbps") / 8.0;
                source = "overridden interconnect";
            }
            "calibrate" => {
                let cal = parcelnet::tcp::measure_loopback(200, 200_000, 20)
                    .expect("loopback calibration");
                cluster = ClusterParams::calibrated(cal.latency_ns, cal.bandwidth_bytes_per_ns);
                source = "measured loopback (parcelnet ping-pong + bulk echo)";
            }
            "measure" => measure = true,
            _ => {
                eprintln!(
                    "usage: multinode [--latency-ns NS] [--bandwidth-gbps GBPS] \
                     [--calibrate] [--measure]"
                );
                std::process::exit(2);
            }
        }
    }

    println!("# Multi-node strong-scaling projection (future work; NOT a cluster measurement)");
    println!(
        "interconnect ({source}): {:.1} us latency, {:.1} Gb/s; async overlap {:.0}%",
        cluster.latency_ns / 1000.0,
        cluster.bandwidth_bytes_per_ns * 8.0,
        cluster.async_overlap * 100.0
    );
    println!("size,nodes,sync_iter_ms,async_iter_ms,sync_eff,async_eff");

    for &size in &[90usize, 150] {
        let model = LuleshModel::new(LuleshConfig::with_size(size), CostModel::default());
        let (pn, pe) = lulesh_bench::paper_partition(size);
        let compute = task_compute_1node_ns(&model, pn, pe);
        let rows = strong_scaling(size, compute, &cluster, &[1, 2, 4, 8, 16, 32]);
        for r in &rows {
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                size,
                r.nodes,
                r.sync_ns / 1e6,
                r.async_ns / 1e6,
                r.sync_efficiency,
                r.async_efficiency
            );
        }
        println!();
        println!("## size {size} (per-iteration, task port at 24 threads/node)");
        let header = vec!["nodes", "sync (ms)", "async (ms)", "sync eff", "async eff"];
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    format!("{:.2}", r.sync_ns / 1e6),
                    format!("{:.2}", r.async_ns / 1e6),
                    format!("{:.1}%", 100.0 * r.sync_efficiency),
                    format!("{:.1}%", 100.0 * r.async_efficiency),
                ]
            })
            .collect();
        println!("{}", render_table(&header, &body));
    }
    // Weak scaling: one paper-sized problem per node.
    println!("## weak scaling (size 45 per node, per-iteration)");
    let model = LuleshModel::new(LuleshConfig::with_size(45), CostModel::default());
    let compute = task_compute_1node_ns(&model, 2048, 2048);
    let rows = weak_scaling(45, compute, &cluster, &[1, 2, 4, 8, 16, 32]);
    let header = vec!["nodes", "sync (ms)", "async (ms)", "sync eff", "async eff"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.2}", r.sync_ns / 1e6),
                format!("{:.2}", r.async_ns / 1e6),
                format!("{:.1}%", 100.0 * r.sync_efficiency),
                format!("{:.1}%", 100.0 * r.async_efficiency),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &body));

    if measure {
        measured_overlap();
    }

    println!(
        "projection supports the paper's expectation: asynchronous halo exchange \
         retains more\nparallel efficiency at scale than synchronous exchange."
    );
}

/// Run the decomposed solver for real over TCP loopback sockets, blocking
/// vs overlapped force exchange, and print the wall-clock comparison. The
/// two variants are asserted bit-identical first — the overlap changes
/// scheduling, never physics.
fn measured_overlap() {
    println!("## measured comm/compute overlap (TCP loopback, task driver, real sockets)");
    println!("size,ranks,workers,iters,blocking_ms,overlapped_ms,speedup");
    let header = vec![
        "size",
        "ranks",
        "blocking (ms)",
        "overlapped (ms)",
        "speedup",
    ];
    let mut body = Vec::new();
    for &(size, ranks, workers, iters) in &[
        (12usize, 2usize, 2usize, 40u64),
        (24, 2, 2, 40),
        (24, 3, 2, 40),
    ] {
        let run = |overlap: bool| {
            let t0 = Instant::now();
            let results = taskpar::run_transport(
                Decomposition::new(size, ranks),
                TransportKind::TcpLoopback,
                Duration::from_secs(20),
                workers,
                lulesh_task::PartitionPlan::fixed(2048, 2048),
                overlap,
                SimArgs::new(11, 1, 1, 0, iters),
                FaultPlan::NONE,
            );
            let domains: Vec<_> = results
                .into_iter()
                .map(|r| r.expect("measurement run must succeed").0)
                .collect();
            (t0.elapsed(), domains)
        };
        let (t_block, d_block) = run(false);
        let (t_over, d_over) = run(true);
        for (a, b) in d_block.iter().zip(&d_over) {
            assert_eq!(
                lulesh_core::validate::max_field_difference(a, b),
                0.0,
                "overlap changed the physics"
            );
        }
        let (bms, oms) = (t_block.as_secs_f64() * 1e3, t_over.as_secs_f64() * 1e3);
        println!(
            "{size},{ranks},{workers},{iters},{bms:.1},{oms:.1},{:.2}",
            bms / oms
        );
        body.push(vec![
            size.to_string(),
            ranks.to_string(),
            format!("{bms:.1}"),
            format!("{oms:.1}"),
            format!("{:.2}x", bms / oms),
        ]);
    }
    println!("{}", render_table(&header, &body));
    println!(
        "(blocking = force halo on the critical path; overlapped = receive+combine \
         runs as a\ncontinuation while interior force tasks proceed; results verified \
         bit-identical.)"
    );
}
