//! Sim-vs-real drift report: run the *real* task port on this host with
//! tracing enabled, simulate the same configuration with `simsched`, and
//! print the per-phase relative error between predicted and measured time.
//!
//! Absolute times on this host differ from the paper's EPYC 7443P the cost
//! model is calibrated for, so the report separates two kinds of drift:
//!
//! * **scale** — one global factor `real_total / sim_total` (host speed);
//! * **shape** — per-phase error *after* removing the global scale, i.e.
//!   how well the simulator predicts where the time goes. This is the
//!   number that validates the simulator's figures.
//!
//! Usage: `drift [--s N] [--i N] [--threads N] [--r N] [--calibrate]`
//! `--calibrate` first measures the kernel coefficients on this host
//! (slower, but removes most of the scale drift).

use lulesh_core::{Domain, Opts};
use lulesh_task::{Features, PartitionPlan, TaskLulesh};
use obs::{MetricsSnapshot, SpanKind, Tracer};
use simsched::{
    record_work_stealing, CostModel, LuleshConfig, LuleshModel, MachineParams, SimFeatures,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let calibrate = if let Some(pos) = args
        .iter()
        .position(|a| a.trim_start_matches('-') == "calibrate")
    {
        args.remove(pos);
        true
    } else {
        false
    };
    let mut opts = Opts::parse(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        eprintln!("{}", Opts::usage("drift"));
        eprintln!("extra flag: --calibrate (measure kernel costs on this host first)");
        std::process::exit(2);
    });
    if !args
        .iter()
        .any(|a| a.trim_start_matches('-').starts_with('i'))
    {
        opts.max_cycles = 30; // keep the default report quick
    }

    // ---- real traced run ----
    let domain = Arc::new(Domain::build(
        opts.size,
        opts.num_reg,
        opts.balance,
        opts.cost,
        opts.seed,
    ));
    let plan = PartitionPlan::for_size(opts.size);
    let tracer = Tracer::shared(opts.threads + 1);
    let runner = TaskLulesh::with_tracer(opts.threads, Features::default(), Arc::clone(&tracer), 0);
    let t0 = Instant::now();
    runner
        .run(&domain, plan, opts.max_cycles)
        .expect("task run failed");
    let wall = t0.elapsed();
    let spans = tracer.drain();
    let metrics = MetricsSnapshot::from_spans(&spans);
    let iters = metrics.iterations.max(1);

    // Measured busy time per phase, per iteration (Task spans only; the
    // barrier/region spans measure waiting, not work).
    let mut real: BTreeMap<&str, f64> = BTreeMap::new();
    for p in &metrics.phases {
        if p.kind == SpanKind::Task {
            *real.entry(p.label).or_insert(0.0) += p.total_ns as f64 / iters as f64;
        }
    }

    // ---- simulated iteration ----
    let cm = if calibrate {
        eprintln!("calibrating kernel costs on this host...");
        simsched::calibrate::measure(opts.size.min(20), 5, 3)
    } else {
        CostModel::default()
    };
    let model = LuleshModel::new(
        LuleshConfig {
            size: opts.size,
            num_reg: opts.num_reg,
            balance: opts.balance,
            cost: opts.cost,
            seed: opts.seed,
        },
        cm,
    );
    let machine = MachineParams::epyc_7443p(opts.threads);
    let graph = model.task_graph(plan.nodal, plan.elements, SimFeatures::default());
    let timeline = record_work_stealing(&graph, &machine);
    // Predicted busy time per phase for one iteration, scheduling overhead
    // and contention included (event durations, not raw costs).
    let mut sim: BTreeMap<&str, f64> = BTreeMap::new();
    for e in &timeline.events {
        let label = graph.tasks[e.task].label;
        if !label.is_empty() && !label.starts_with("barrier") {
            *sim.entry(label).or_insert(0.0) += e.dur_ns;
        }
    }

    let real_total: f64 = real.values().sum();
    let sim_total: f64 = sim.values().sum();
    let scale = real_total / sim_total;

    println!(
        "# drift report: s={} r={} i={} threads={} (wall {:.3}s, {} spans, cost model {})",
        opts.size,
        opts.num_reg,
        iters,
        opts.threads,
        wall.as_secs_f64(),
        spans.len(),
        if calibrate {
            "host-calibrated"
        } else {
            "paper-default"
        },
    );
    println!("phase,sim_ns_per_iter,real_ns_per_iter,sim_share,real_share,shape_error");
    let mut worst: (f64, &str) = (0.0, "");
    let mut phases: Vec<&str> = sim.keys().chain(real.keys()).copied().collect();
    phases.sort_unstable();
    phases.dedup();
    for label in phases {
        let s = sim.get(label).copied().unwrap_or(0.0);
        let r = real.get(label).copied().unwrap_or(0.0);
        let (s_share, r_share) = (s / sim_total, r / real_total);
        // Shape error: relative error after removing the global scale
        // factor, i.e. comparing the phase's share of total busy time.
        let shape = if r_share > 0.0 {
            (s_share - r_share).abs() / r_share
        } else {
            f64::INFINITY
        };
        if shape > worst.0 {
            worst = (shape, label);
        }
        println!("{label},{s:.0},{r:.0},{s_share:.4},{r_share:.4},{shape:.4}",);
    }
    println!(
        "total,{sim_total:.0},{real_total:.0},1.0000,1.0000,{:.4}",
        (sim_total * scale - real_total).abs() / real_total
    );
    eprintln!(
        "global scale (real/sim) = {scale:.3}; worst shape drift: {} at {:.1}%",
        worst.1,
        worst.0 * 100.0
    );
    eprintln!(
        "measured sync points/iteration = {}",
        metrics.barriers / iters
    );
}
