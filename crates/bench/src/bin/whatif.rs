//! Lessons-learned counterfactual: would `schedule(dynamic)` have saved the
//! OpenMP reference? The paper observes that LULESH's loops "do not expose
//! load imbalance, preventing work-stealing" — dynamic scheduling recovers
//! the per-chunk variance the static split loses, but pays a dequeue
//! overhead per chunk and still pays every one of the ~500 barriers per
//! iteration. The task port removes the barriers too.

use lulesh_bench::{paper_partition, render_table, SIZES};
use simsched::{
    estimate_omp, estimate_omp_dynamic, estimate_task, CostModel, LuleshConfig, LuleshModel,
    MachineParams, SimFeatures,
};

fn main() {
    let cm = CostModel::default();
    let m = MachineParams::epyc_7443p(24);

    println!("# What if the reference had used schedule(dynamic)? (simulated, 24 threads)");
    println!("size,omp_static_s,omp_dynamic_s,task_s,dyn_gain,task_speedup_vs_best_omp");
    let mut body = Vec::new();
    for &size in &SIZES {
        let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
        let (pn, pe) = paper_partition(size);
        let stat = estimate_omp(&model, &m);
        // Modest chunking so even the small region loops parallelize.
        let dynamic = estimate_omp_dynamic(&model, &m, 128);
        let task = estimate_task(&model, &m, pn, pe, SimFeatures::default());
        let best_omp = stat.seconds.min(dynamic.seconds);
        println!(
            "{},{:.2},{:.2},{:.2},{:.3},{:.3}",
            size,
            stat.seconds,
            dynamic.seconds,
            task.seconds,
            stat.seconds / dynamic.seconds,
            best_omp / task.seconds
        );
        body.push(vec![
            size.to_string(),
            format!("{:.1}", stat.seconds),
            format!("{:.1}", dynamic.seconds),
            format!("{:.1}", task.seconds),
            format!("{:.2}x", stat.seconds / dynamic.seconds),
            format!("{:.2}x", best_omp / task.seconds),
        ]);
    }
    println!();
    let header = vec![
        "size",
        "omp static",
        "omp dynamic",
        "task port",
        "dyn gain",
        "task vs best omp",
    ];
    println!("{}", render_table(&header, &body));
    println!(
        "dynamic scheduling recovers part of the static imbalance, but the barrier\n\
         count is untouched — the task port's advantage survives the counterfactual."
    );
}
