//! Ablation of the paper's optimization tricks (DESIGN.md §5): simulated
//! runtime at 24 threads with each trick disabled individually, plus the
//! Fig-5 naive port, for a small and a large problem size.

use lulesh_bench::{ablation, render_table};
use simsched::CostModel;

fn main() {
    println!("# Ablation — simulated runtime at 24 threads");
    println!("size,config,seconds,slowdown");
    for &size in &[45usize, 90] {
        let rows = ablation(CostModel::default(), size);
        for r in &rows {
            println!("{},{},{:.3},{:.3}", size, r.name, r.seconds, r.slowdown);
        }
    }
    println!();
    for &size in &[45usize, 90] {
        let rows = ablation(CostModel::default(), size);
        println!("## size {size}");
        let header = vec!["configuration", "runtime (s)", "slowdown"];
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.2}", r.seconds),
                    format!("{:.3}x", r.slowdown),
                ]
            })
            .collect();
        println!("{}", render_table(&header, &body));
    }
}
