//! Regenerate Figure 9: runtime over thread count for the six problem
//! sizes, OpenMP reference vs. the task port, on the simulated 24-core
//! EPYC. Prints a CSV block (plot-ready) and a per-size summary with the
//! crossover thread counts the paper narrates in §V-A.

use lulesh_bench::{fig9, render_table, SIZES, THREADS};
use simsched::CostModel;

fn main() {
    let rows = fig9(CostModel::default());

    println!("# Figure 9 — runtime (s) vs. execution threads (simulated EPYC 7443P)");
    println!("size,threads,omp_seconds,task_seconds,speedup");
    for r in &rows {
        println!(
            "{},{},{:.3},{:.3},{:.3}",
            r.size,
            r.threads,
            r.omp_seconds,
            r.task_seconds,
            r.speedup()
        );
    }

    println!();
    for &size in &SIZES {
        let per: Vec<_> = rows.iter().filter(|r| r.size == size).collect();
        let header: Vec<&str> = vec!["threads", "omp (s)", "hpx (s)", "speedup"];
        let body: Vec<Vec<String>> = per
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    format!("{:.2}", r.omp_seconds),
                    format!("{:.2}", r.task_seconds),
                    format!("{:.3}", r.speedup()),
                ]
            })
            .collect();
        println!("## size {size}");
        println!("{}", render_table(&header, &body));
        let first_at = |margin: f64| {
            THREADS
                .iter()
                .find(|&&t| {
                    per.iter()
                        .find(|r| r.threads == t)
                        .map(|r| r.speedup() > margin)
                        .unwrap_or(false)
                })
                .copied()
        };
        match (first_at(1.0), first_at(1.05)) {
            (Some(a), Some(b)) => {
                println!("task port edges ahead at {a} threads, clearly (>5%) ahead at {b}\n")
            }
            (Some(a), None) => println!("task port edges ahead at {a} threads\n"),
            _ => println!("task port never wins\n"),
        }
    }
}
