//! # lulesh-bench — the figure/table regeneration harness
//!
//! One entry point per evaluation artifact of the paper:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig9` | Figure 9 — runtime vs. threads, OpenMP vs. HPX, six sizes |
//! | `fig10` | Figure 10 — speed-up at 24 threads vs. size × regions |
//! | `fig11` | Figure 11 — productive-time ratio vs. size |
//! | `table1` | Table I — best partition sizes per problem size |
//! | `ablation` | DESIGN.md §5 — value of each optimization trick |
//! | `calibrate` | re-measure the kernel cost model on this host |
//! | `realrun` | run the *real* runtimes side by side on this host |
//!
//! All scaling results come from the `simsched` virtual 24-core EPYC
//! (deterministic); `realrun` and the Criterion benches under `benches/`
//! exercise the real `ompsim`/`taskrt` execution paths.

#![warn(missing_docs)]

pub mod plot;

use lulesh_core::simd::LaneWidth;
use lulesh_task::{AutoTuneConfig, AutoTuner, PartitionPlan, WindowSample};
use simsched::{
    estimate_omp, estimate_task, sweep_partitions, CostModel, LuleshConfig, LuleshModel,
    MachineParams, SimFeatures,
};

/// The six problem sizes of the paper's evaluation.
pub const SIZES: [usize; 6] = [45, 60, 75, 90, 120, 150];

/// The thread counts of Figure 9.
pub const THREADS: [usize; 8] = [1, 2, 4, 8, 16, 24, 32, 48];

/// The region counts of Figure 10.
pub const REGION_COUNTS: [usize; 3] = [11, 16, 21];

/// Table I's partition plan per size, from the canonical table in
/// `lulesh_task::PartitionPlan` (single source of truth).
pub fn paper_partition(size: usize) -> (usize, usize) {
    let p = lulesh_task::PartitionPlan::for_size(size);
    (p.nodal, p.elements)
}

/// One Figure 9 data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Problem size.
    pub size: usize,
    /// Execution threads.
    pub threads: usize,
    /// Simulated OpenMP runtime (s).
    pub omp_seconds: f64,
    /// Simulated task-port runtime (s).
    pub task_seconds: f64,
}

impl Fig9Row {
    /// HPX-over-OpenMP speed-up at this point.
    pub fn speedup(&self) -> f64 {
        self.omp_seconds / self.task_seconds
    }
}

/// Generate all Figure 9 rows (6 sizes × 8 thread counts, 11 regions).
pub fn fig9(cm: CostModel) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for &size in &SIZES {
        let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
        let (pn, pe) = paper_partition(size);
        for &threads in &THREADS {
            let m = MachineParams::epyc_7443p(threads);
            let omp = estimate_omp(&model, &m);
            let task = estimate_task(&model, &m, pn, pe, SimFeatures::default());
            rows.push(Fig9Row {
                size,
                threads,
                omp_seconds: omp.seconds,
                task_seconds: task.seconds,
            });
        }
    }
    rows
}

/// One Figure 10 data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Problem size.
    pub size: usize,
    /// Region count.
    pub regions: usize,
    /// HPX-over-OpenMP speed-up at 24 threads.
    pub speedup: f64,
}

/// Generate all Figure 10 rows (6 sizes × 3 region counts, 24 threads).
pub fn fig10(cm: CostModel) -> Vec<Fig10Row> {
    let m = MachineParams::epyc_7443p(24);
    let mut rows = Vec::new();
    for &size in &SIZES {
        for &regions in &REGION_COUNTS {
            let mut cfg = LuleshConfig::with_size(size);
            cfg.num_reg = regions;
            let model = LuleshModel::new(cfg, cm);
            let (pn, pe) = paper_partition(size);
            let omp = estimate_omp(&model, &m);
            let task = estimate_task(&model, &m, pn, pe, SimFeatures::default());
            rows.push(Fig10Row {
                size,
                regions,
                speedup: omp.seconds / task.seconds,
            });
        }
    }
    rows
}

/// One Figure 11 data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Problem size.
    pub size: usize,
    /// OpenMP productive-time ratio.
    pub omp_utilization: f64,
    /// Task-port productive-time ratio.
    pub task_utilization: f64,
}

/// Generate all Figure 11 rows (6 sizes, 24 threads, 11 regions).
pub fn fig11(cm: CostModel) -> Vec<Fig11Row> {
    let m = MachineParams::epyc_7443p(24);
    SIZES
        .iter()
        .map(|&size| {
            let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
            let (pn, pe) = paper_partition(size);
            let omp = estimate_omp(&model, &m);
            let task = estimate_task(&model, &m, pn, pe, SimFeatures::default());
            Fig11Row {
                size,
                omp_utilization: omp.utilization,
                task_utilization: task.utilization,
            }
        })
        .collect()
}

/// One Table I sweep result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Problem size.
    pub size: usize,
    /// Best `LagrangeNodal` partition size found.
    pub best_nodal: usize,
    /// Best `LagrangeElements` partition size found.
    pub best_elements: usize,
    /// The paper's Table I values for comparison.
    pub paper: (usize, usize),
}

/// Candidate partition sizes for the Table I sweep.
pub const PARTITION_CANDIDATES: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];

/// Sweep partition sizes per problem size and pick the simulated-runtime
/// argmin at 24 threads (regenerates Table I).
pub fn table1(cm: CostModel) -> Vec<Table1Row> {
    let m = MachineParams::epyc_7443p(24);
    SIZES
        .iter()
        .map(|&size| {
            let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
            let (best_nodal, best_elements, _) =
                sweep_partitions(&model, &m, SimFeatures::default(), &PARTITION_CANDIDATES);
            Table1Row {
                size,
                best_nodal,
                best_elements,
                paper: paper_partition(size),
            }
        })
        .collect()
}

/// Static-vs-auto-vs-exhaustive comparison for one problem size on the
/// simulated machine. The online [`AutoTuner`] — the exact state machine
/// the real driver runs — is driven by simulator estimates instead of wall
/// clocks, then judged against the exhaustive [`sweep_partitions`] ground
/// truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTuneRow {
    /// Problem size.
    pub size: usize,
    /// The thread-aware static plan the tuner starts from.
    pub static_plan: (usize, usize),
    /// Simulated ns/iteration of the static plan.
    pub static_ns: f64,
    /// The plan the tuner converged to.
    pub auto_plan: (usize, usize),
    /// Simulated ns/iteration of the converged plan.
    pub auto_ns: f64,
    /// Exhaustive-sweep argmin over [`PARTITION_CANDIDATES`].
    pub sweep_plan: (usize, usize),
    /// Simulated ns/iteration of the sweep argmin.
    pub sweep_ns: f64,
    /// Measurement windows the tuner consumed.
    pub windows: u32,
    /// Whether the tuner converged (the budgets guarantee it).
    pub converged: bool,
}

/// Run the online auto-tuner against the simulator for one size and
/// compare it with the static plan and the exhaustive sweep.
pub fn autotune_sim(cm: CostModel, size: usize, threads: usize) -> AutoTuneRow {
    let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
    let m = MachineParams::epyc_7443p(threads);
    let features = SimFeatures::default();

    let static_plan = PartitionPlan::for_size_threads(size, threads);
    let static_est = estimate_task(
        &model,
        &m,
        static_plan.nodal,
        static_plan.elements,
        features,
    );

    // The simulator is deterministic, so one window per probe and a tiny
    // hysteresis suffice; the round/move budgets still bound the search.
    let cfg = AutoTuneConfig {
        window: 1,
        warmup_windows: 0,
        hysteresis: 0.002,
        ..AutoTuneConfig::default()
    };
    let mut tuner = AutoTuner::new(static_plan, threads, size * size * size, cfg);
    let mut windows = 0u32;
    while !tuner.converged() && windows < 1000 {
        let p = tuner.plan();
        let est = estimate_task(&model, &m, p.nodal, p.elements, features);
        // Mean busy ns per task: total productive time / task count.
        let busy = est.utilization * threads as f64 * est.iteration_ns;
        let mean_task_ns = busy / est.tasks_per_iteration.max(1) as f64;
        tuner.record_window(WindowSample {
            wall_per_iter_ns: est.iteration_ns,
            mean_task_ns,
        });
        windows += 1;
    }

    let best = tuner.best();
    let auto_est = estimate_task(&model, &m, best.nodal, best.elements, features);
    let (sn, se, sweep_est) = sweep_partitions(&model, &m, features, &PARTITION_CANDIDATES);

    AutoTuneRow {
        size,
        static_plan: (static_plan.nodal, static_plan.elements),
        static_ns: static_est.iteration_ns,
        auto_plan: (best.nodal, best.elements),
        auto_ns: auto_est.iteration_ns,
        sweep_plan: (sn, se),
        sweep_ns: sweep_est.iteration_ns,
        windows,
        converged: tuner.converged(),
    }
}

/// Per-width cost multiplier for the simulator's 2-D tuning validation:
/// the vectorizable share of an iteration (the lane-ported kernels' inner
/// loops) speeds up by the width's throughput factor while the remainder
/// (gathers, scatters, graph and steal overhead) stays scalar. The factors
/// follow the shape of the measured per-kernel curves in EXPERIMENTS.md —
/// near-linear to w4, flattening at w8.
pub fn width_cost_scale(w: LaneWidth) -> f64 {
    /// Vectorizable share of an iteration's wall time.
    const V: f64 = 0.65;
    let speedup = match w {
        LaneWidth::W1 => 1.0,
        LaneWidth::W2 => 1.7,
        LaneWidth::W4 => 2.6,
        LaneWidth::W8 => 2.9,
    };
    (1.0 - V) + V / speedup
}

/// Result of validating the 2-D (partition × lane width) auto-tuner
/// against the exhaustive sweep on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTune2dRow {
    /// Problem size.
    pub size: usize,
    /// Simulated ns/iteration of the static plan at scalar width — the
    /// baseline every gain is quoted against.
    pub scalar_ns: f64,
    /// The plan the 2-D tuner converged to.
    pub auto_plan: (usize, usize),
    /// The lane width the 2-D tuner converged to.
    pub auto_width: LaneWidth,
    /// Simulated ns/iteration of the converged (plan, width).
    pub auto_ns: f64,
    /// Exhaustive argmin over [`PARTITION_CANDIDATES`] × every width.
    pub sweep_plan: (usize, usize),
    /// The sweep argmin's width.
    pub sweep_width: LaneWidth,
    /// Simulated ns/iteration of the sweep argmin.
    pub sweep_ns: f64,
    /// Measurement windows the tuner consumed.
    pub windows: u32,
    /// Whether the tuner converged.
    pub converged: bool,
}

/// Run the 2-D auto-tuner (partition sizes × lane width, `--simd auto`)
/// against the simulator and judge it against the exhaustive
/// partition × width sweep. Width scales the vectorizable share of both
/// the iteration cost and the mean task time (so the granularity guard
/// sees the same faster-tasks signal the real runtime would produce).
pub fn autotune_sim_2d(cm: CostModel, size: usize, threads: usize) -> AutoTune2dRow {
    let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
    let m = MachineParams::epyc_7443p(threads);
    let features = SimFeatures::default();
    let cost = |pn: usize, pe: usize, w: LaneWidth| {
        let est = estimate_task(&model, &m, pn, pe, features);
        let scale = width_cost_scale(w);
        let busy = est.utilization * threads as f64 * est.iteration_ns;
        (
            est.iteration_ns * scale,
            busy * scale / est.tasks_per_iteration.max(1) as f64,
        )
    };

    let static_plan = PartitionPlan::for_size_threads(size, threads);
    let (scalar_ns, _) = cost(static_plan.nodal, static_plan.elements, LaneWidth::W1);

    let cfg = AutoTuneConfig {
        window: 1,
        warmup_windows: 0,
        hysteresis: 0.002,
        tune_width: true,
        ..AutoTuneConfig::default()
    };
    let mut tuner = AutoTuner::new(static_plan, threads, size * size * size, cfg);
    let mut windows = 0u32;
    while !tuner.converged() && windows < 1000 {
        let p = tuner.plan();
        let (iter_ns, mean_task_ns) = cost(p.nodal, p.elements, tuner.width());
        tuner.record_window(WindowSample {
            wall_per_iter_ns: iter_ns,
            mean_task_ns,
        });
        windows += 1;
    }

    let best = tuner.best();
    let (auto_ns, _) = cost(best.nodal, best.elements, tuner.best_width());

    let mut sweep = ((0usize, 0usize), LaneWidth::W1, f64::INFINITY);
    for &pn in &PARTITION_CANDIDATES {
        for &pe in &PARTITION_CANDIDATES {
            for w in LaneWidth::ALL {
                let (ns, _) = cost(pn, pe, w);
                if ns < sweep.2 {
                    sweep = ((pn, pe), w, ns);
                }
            }
        }
    }

    AutoTune2dRow {
        size,
        scalar_ns,
        auto_plan: (best.nodal, best.elements),
        auto_width: tuner.best_width(),
        auto_ns,
        sweep_plan: sweep.0,
        sweep_width: sweep.1,
        sweep_ns: sweep.2,
        windows,
        converged: tuner.converged(),
    }
}

/// One ablation result: simulated runtime with a feature set.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Name of the configuration.
    pub name: &'static str,
    /// Problem size.
    pub size: usize,
    /// Simulated runtime at 24 threads (s).
    pub seconds: f64,
    /// Slowdown relative to the fully optimized configuration.
    pub slowdown: f64,
}

/// Quantify each paper trick by switching it off individually (and all at
/// once) at 24 threads.
pub fn ablation(cm: CostModel, size: usize) -> Vec<AblationRow> {
    let m = MachineParams::epyc_7443p(24);
    let model = LuleshModel::new(LuleshConfig::with_size(size), cm);
    let (pn, pe) = paper_partition(size);
    let configs: [(&'static str, SimFeatures); 6] = [
        ("all-tricks (paper)", SimFeatures::default()),
        (
            "no-continuation-chains (T2 off)",
            SimFeatures {
                chain_continuations: false,
                ..SimFeatures::default()
            },
        ),
        (
            "no-kernel-merging (T3+T6 off)",
            SimFeatures {
                merge_kernels: false,
                ..SimFeatures::default()
            },
        ),
        (
            "no-parallel-force-chains (T4a off)",
            SimFeatures {
                parallel_force_chains: false,
                ..SimFeatures::default()
            },
        ),
        (
            "sequential-region-eos (T4b off)",
            SimFeatures {
                parallel_region_eos: false,
                ..SimFeatures::default()
            },
        ),
        ("naive (Fig-5 port)", SimFeatures::naive()),
    ];
    let base = estimate_task(&model, &m, pn, pe, SimFeatures::default()).seconds;
    configs
        .iter()
        .map(|&(name, f)| {
            let s = estimate_task(&model, &m, pn, pe, f).seconds;
            AblationRow {
                name,
                size,
                seconds: s,
                slowdown: s / base,
            }
        })
        .collect()
}

/// Render rows of (label, values) as an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds() {
        let rows = fig9(CostModel::default());
        assert_eq!(rows.len(), 48);
        // Minimum runtime at 24 threads for every size, both runtimes.
        for &size in &SIZES {
            let per_size: Vec<_> = rows.iter().filter(|r| r.size == size).collect();
            let omp_min = per_size
                .iter()
                .min_by(|a, b| a.omp_seconds.total_cmp(&b.omp_seconds))
                .unwrap();
            let task_min = per_size
                .iter()
                .min_by(|a, b| a.task_seconds.total_cmp(&b.task_seconds))
                .unwrap();
            assert!(
                omp_min.threads == 24 || omp_min.threads == 16 || omp_min.threads == 48,
                "size {size}: OpenMP minimum at {} threads",
                omp_min.threads
            );
            // The paper reports the HPX minimum at 24 threads for every
            // size; partition-wave quantization in the simulator can shift
            // it to a neighbouring count by a percent or two, so assert
            // "at or adjacent to 24, and 24 within 2% of the minimum".
            assert!(
                [16, 24, 32].contains(&task_min.threads),
                "size {size}: HPX minimum at {} threads",
                task_min.threads
            );
            let at24 = per_size
                .iter()
                .find(|r| r.threads == 24)
                .unwrap()
                .task_seconds;
            assert!(
                at24 <= task_min.task_seconds * 1.02,
                "size {size}: 24 threads not within 2% of the minimum"
            );
            // OpenMP wins single-threaded.
            let t1 = per_size.iter().find(|r| r.threads == 1).unwrap();
            assert!(t1.speedup() < 1.0, "size {size}: OMP must win at 1 thread");
            // HPX wins at 24 threads.
            let t24 = per_size.iter().find(|r| r.threads == 24).unwrap();
            assert!(t24.speedup() > 1.0, "size {size}: task port must win at 24");
        }
    }

    #[test]
    fn fig10_shape_holds() {
        let rows = fig10(CostModel::default());
        assert_eq!(rows.len(), 18);
        // Speed-up decreases with size (r = 11 series). Small bumps from
        // Table-I partition-granularity switches and from the PRNG's region
        // realization (the offline rand stand-in draws a different stream
        // than upstream StdRng) are tolerated.
        let r11: Vec<_> = rows.iter().filter(|r| r.regions == 11).collect();
        for pair in r11.windows(2) {
            assert!(
                pair[0].speedup >= pair[1].speedup - 0.1,
                "speed-up should fall with size: {pair:?}"
            );
        }
        assert!(
            r11.first().unwrap().speedup > r11.last().unwrap().speedup + 0.3,
            "overall trend must fall clearly"
        );
        // More regions → more speed-up at every size.
        for &size in &SIZES {
            let series: Vec<f64> = REGION_COUNTS
                .iter()
                .map(|&rc| {
                    rows.iter()
                        .find(|r| r.size == size && r.regions == rc)
                        .unwrap()
                        .speedup
                })
                .collect();
            assert!(
                series[0] <= series[1] && series[1] <= series[2],
                "size {size}: {series:?}"
            );
        }
        // Paper band: up to ~2.25–2.5× at 45, ~1.2–1.4× at 150.
        let s45 = rows
            .iter()
            .filter(|r| r.size == 45)
            .map(|r| r.speedup)
            .fold(0.0, f64::max);
        assert!(s45 > 1.9 && s45 < 3.0, "max speed-up at 45: {s45}");
        let s150 = rows
            .iter()
            .find(|r| r.size == 150 && r.regions == 11)
            .unwrap()
            .speedup;
        assert!(s150 > 1.1 && s150 < 1.5, "speed-up at 150: {s150}");
    }

    #[test]
    fn fig11_shape_holds() {
        let rows = fig11(CostModel::default());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.task_utilization > row.omp_utilization,
                "size {}: task {} !> omp {}",
                row.size,
                row.task_utilization,
                row.omp_utilization
            );
        }
        // Both ratios improve with size; the task port saturates high.
        for pair in rows.windows(2) {
            assert!(pair[1].omp_utilization > pair[0].omp_utilization - 0.01);
            assert!(pair[1].task_utilization > pair[0].task_utilization - 0.01);
        }
        assert!(
            rows.last().unwrap().task_utilization > 0.93,
            "HPX saturates near 96%"
        );
        assert!(
            rows.last().unwrap().omp_utilization < 0.93,
            "OpenMP stays below"
        );
        assert!(
            rows[0].omp_utilization < 0.6,
            "small size is sync-bound for OpenMP"
        );
    }

    #[test]
    fn table1_prefers_coarser_partitions_for_larger_problems() {
        let rows = table1(CostModel::default());
        assert_eq!(rows.len(), 6);
        let first = &rows[0];
        let last = &rows[5];
        assert!(last.best_nodal >= first.best_nodal, "{rows:?}");
        for r in &rows {
            assert!(PARTITION_CANDIDATES.contains(&r.best_nodal));
            assert!(PARTITION_CANDIDATES.contains(&r.best_elements));
        }
    }

    #[test]
    fn ablation_every_trick_helps() {
        let rows = ablation(CostModel::default(), 45);
        assert_eq!(rows[0].slowdown, 1.0);
        // Allow ~2% in favour of an ablated configuration: partition-wave
        // quantization plus the region realization drawn by the offline
        // rand stand-in can make a single trick a wash at one size.
        for row in &rows[1..] {
            assert!(
                row.slowdown >= 0.98,
                "{} should not beat the full configuration: {}",
                row.name,
                row.slowdown
            );
        }
        // The naive port must be clearly worse.
        assert!(
            rows.last().unwrap().slowdown > 1.1,
            "naive: {}",
            rows.last().unwrap().slowdown
        );
    }

    #[test]
    fn autotune_converges_near_the_sweep_optimum() {
        // Acceptance criterion: within 2× of the exhaustive-sweep argmin
        // on the simulated 24-core sweep at sizes 45 and 90.
        for size in [45usize, 90] {
            let row = autotune_sim(CostModel::default(), size, 24);
            assert!(row.converged, "size {size}: tuner must converge");
            for (got, opt) in [
                (row.auto_plan.0, row.sweep_plan.0),
                (row.auto_plan.1, row.sweep_plan.1),
            ] {
                let ratio = got.max(opt) as f64 / got.min(opt) as f64;
                assert!(
                    ratio <= 2.0,
                    "size {size}: auto {:?} not within 2× of sweep {:?}",
                    row.auto_plan,
                    row.sweep_plan
                );
            }
            // And the converged runtime must essentially match the sweep's.
            assert!(
                row.auto_ns <= row.sweep_ns * 1.10,
                "size {size}: auto {} ns vs sweep {} ns",
                row.auto_ns,
                row.sweep_ns
            );
        }
    }

    #[test]
    fn two_d_autotune_matches_the_partition_width_sweep_within_1pct() {
        // Acceptance criterion: the 2-D tuner (`--simd auto`) must match
        // or beat the best exhaustively-swept (partition, width) pair
        // within 1% on every paper size — and beat the scalar static
        // baseline outright.
        for &size in &SIZES {
            let row = autotune_sim_2d(CostModel::default(), size, 24);
            assert!(row.converged, "size {size}: 2-D tuner must converge");
            assert!(
                row.auto_ns <= row.sweep_ns * 1.01,
                "size {size}: auto {:?}/{} = {} ns vs sweep {:?}/{} = {} ns",
                row.auto_plan,
                row.auto_width,
                row.auto_ns,
                row.sweep_plan,
                row.sweep_width,
                row.sweep_ns
            );
            assert!(
                row.auto_ns < row.scalar_ns,
                "size {size}: auto never beat the scalar baseline"
            );
            assert!(
                row.auto_width.lanes() > 1,
                "size {size}: the width dimension was never exploited"
            );
        }
    }

    #[test]
    fn autotune_never_regresses_versus_the_static_plan() {
        // Acceptance criterion: never >5% slower than the static
        // `PartitionPlan::for_size` plan on any swept size.
        for &size in &SIZES {
            let row = autotune_sim(CostModel::default(), size, 24);
            assert!(row.converged, "size {size}: tuner must converge");
            assert!(
                row.auto_ns <= row.static_ns * 1.05,
                "size {size}: auto {} ns regresses vs static {} ns",
                row.auto_ns,
                row.static_ns
            );
        }
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].len(), lines[2].len());
    }
}
