//! Minimal SVG plotting — the counterpart of the artifact's
//! `generate-graphs.py`: line charts with log/linear axes, markers and a
//! legend, written as standalone `.svg` files. No dependencies; enough for
//! the three figures.

/// One data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (CSS).
    pub color: String,
    /// Dashed stroke?
    pub dashed: bool,
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear mapping.
    Linear,
    /// Base-10 logarithmic mapping (all values must be positive).
    Log,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X scale.
    pub x_scale: Scale,
    /// Y scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Explicit x tick positions (data coordinates).
    pub x_ticks: Vec<f64>,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // margins
const MR: f64 = 20.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;

fn map(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => (v - lo) / (hi - lo),
        Scale::Log => (v.log10() - lo.log10()) / (hi.log10() - lo.log10()),
    }
}

/// "Nice" y ticks: 1-2-5 progression for linear, decades for log.
fn y_ticks(lo: f64, hi: f64, scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Log => {
            let mut ticks = Vec::new();
            let mut d = 10f64.powf(lo.log10().floor());
            while d <= hi * 1.0001 {
                if d >= lo * 0.9999 {
                    ticks.push(d);
                }
                d *= 10.0;
            }
            if ticks.len() < 2 {
                ticks = vec![lo, hi];
            }
            ticks
        }
        Scale::Linear => {
            let span = hi - lo;
            let raw = span / 5.0;
            let mag = 10f64.powf(raw.log10().floor());
            let step = [1.0, 2.0, 5.0, 10.0]
                .iter()
                .map(|m| m * mag)
                .find(|&s| span / s <= 6.0)
                .unwrap_or(mag);
            let mut t = (lo / step).ceil() * step;
            let mut ticks = Vec::new();
            while t <= hi + 1e-12 {
                ticks.push(t);
                t += step;
            }
            ticks
        }
    }
}

impl Chart {
    /// Render the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "chart needs data");
        let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            xlo = xlo.min(x);
            xhi = xhi.max(x);
            ylo = ylo.min(y);
            yhi = yhi.max(y);
        }
        // Pad the y range a touch.
        match self.y_scale {
            Scale::Linear => {
                let pad = 0.05 * (yhi - ylo).max(1e-12);
                ylo -= pad;
                yhi += pad;
            }
            Scale::Log => {
                ylo /= 1.3;
                yhi *= 1.3;
            }
        }

        let px = |x: f64| ML + map(x, xlo, xhi, self.x_scale) * (W - ML - MR);
        let py = |y: f64| H - MB - map(y, ylo, yhi, self.y_scale) * (H - MT - MB);

        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">
<style>text {{ font-family: sans-serif; font-size: 12px; }} .t {{ font-size: 15px; font-weight: bold; }}</style>
<rect width="{W}" height="{H}" fill="white"/>
<text class="t" x="{:.1}" y="22" text-anchor="middle">{}</text>
"#,
            (W + ML - MR) / 2.0,
            xml_escape(&self.title)
        );

        // Axes frame.
        svg.push_str(&format!(
            r##"<rect x="{ML}" y="{MT}" width="{:.1}" height="{:.1}" fill="none" stroke="#444"/>
"##,
            W - ML - MR,
            H - MT - MB
        ));

        // Y grid + labels.
        for t in y_ticks(ylo, yhi, self.y_scale) {
            let y = py(t);
            svg.push_str(&format!(
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>
"##,
                W - MR,
                ML - 6.0,
                y + 4.0,
                fmt_tick(t)
            ));
        }
        // X ticks.
        for &t in &self.x_ticks {
            let x = px(t);
            svg.push_str(&format!(
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#444"/>
<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>
"##,
                H - MB,
                H - MB + 5.0,
                H - MB + 20.0,
                fmt_tick(t)
            ));
        }

        // Axis labels.
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>
<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>
"#,
            (W + ML - MR) / 2.0,
            H - 14.0,
            xml_escape(&self.x_label),
            (H + MT - MB) / 2.0,
            (H + MT - MB) / 2.0,
            xml_escape(&self.y_label)
        ));

        // Series.
        for s in &self.series {
            let d: String = s
                .points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    format!(
                        "{}{:.1},{:.1}",
                        if i == 0 { "M" } else { "L" },
                        px(x),
                        py(y)
                    )
                })
                .collect();
            let dash = if s.dashed {
                r#" stroke-dasharray="6 3""#
            } else {
                ""
            };
            svg.push_str(&format!(
                r#"<path d="{d}" fill="none" stroke="{}" stroke-width="2"{dash}/>
"#,
                s.color
            ));
            for &(x, y) in &s.points {
                svg.push_str(&format!(
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{}"/>
"#,
                    px(x),
                    py(y),
                    s.color
                ));
            }
        }

        // Legend.
        for (i, s) in self.series.iter().enumerate() {
            let y = MT + 14.0 + 16.0 * i as f64;
            svg.push_str(&format!(
                r#"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{}" stroke-width="2"/>
<text x="{:.1}" y="{:.1}">{}</text>
"#,
                ML + 10.0,
                ML + 34.0,
                s.color,
                ML + 40.0,
                y + 4.0,
                xml_escape(&s.label)
            ));
        }

        svg.push_str("</svg>\n");
        svg
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(0.01..1000.0).contains(&a) {
        format!("{v:.0e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Categorical palette (colorblind-safe-ish).
pub const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Log,
            series: vec![Series {
                label: "a<b>".into(),
                points: vec![(1.0, 10.0), (2.0, 100.0), (4.0, 50.0)],
                color: PALETTE[0].into(),
                dashed: false,
            }],
            x_ticks: vec![1.0, 2.0, 4.0],
        }
    }

    #[test]
    fn svg_is_structurally_sound() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<path").count(), 1);
        assert!(svg.contains("&lt;b&gt;"), "labels must be XML-escaped");
    }

    #[test]
    fn log_ticks_are_decades() {
        let t = y_ticks(5.0, 5000.0, Scale::Log);
        assert_eq!(t, vec![10.0, 100.0, 1000.0]);
    }

    #[test]
    fn linear_ticks_are_nice() {
        let t = y_ticks(0.0, 2.3, Scale::Linear);
        assert!(t.len() >= 3 && t.len() <= 7, "{t:?}");
        for pair in t.windows(2) {
            assert!((pair[1] - pair[0]) > 0.0);
        }
    }

    #[test]
    fn points_land_inside_plot_area() {
        let svg = chart().to_svg();
        for cap in svg.split("<circle cx=\"").skip(1) {
            let cx: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((ML - 1.0..=W - MR + 1.0).contains(&cx), "cx {cx}");
        }
    }
}
