//! # lulesh-omp — the OpenMP-reference-style LULESH port
//!
//! Reproduces the structure the paper compares against: every loop of the
//! reference's `LagrangeLeapFrog` becomes one statically scheduled
//! [`ompsim::Pool::parallel_for`] **with a barrier at the end** — about 30
//! parallel loops/regions per iteration, including the per-region EOS
//! sub-loops. This is the "AMT-hostile" baseline whose synchronization
//! overhead the paper's task port removes.
//!
//! Results are bit-identical to `lulesh_core::serial` (same kernels, same
//! static chunking of the same index spaces, same gather orders); the
//! integration tests assert this.

#![warn(missing_docs)]

use lulesh_core::domain::Domain;
use lulesh_core::kernels::{constraints, eos, hourglass, kinematics, monoq, nodal, stress};
use lulesh_core::params::SimState;
use lulesh_core::serial::SerialScratch as Scratch;
use lulesh_core::timestep::time_increment;
use lulesh_core::types::{Index, LuleshError, Real};
use obs::{SpanKind, Tracer};
use ompsim::Pool;
use parutil::{static_split, Chunk, SharedSlice};
use std::sync::atomic::{AtomicBool, Ordering};

/// The fork-join LULESH runner. Owns its thread pool; reusable across runs.
pub struct OmpLulesh {
    pool: Pool,
}

impl OmpLulesh {
    /// Create a runner with `threads` execution threads.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: Pool::new(threads),
        }
    }

    /// Runner with span tracing attached: thread `tid` records each
    /// parallel region on `tracer` lane `lane_base + tid`; the driver's
    /// per-iteration span goes on lane `lane_base + threads`.
    pub fn with_tracer(threads: usize, tracer: std::sync::Arc<Tracer>, lane_base: usize) -> Self {
        Self {
            pool: Pool::with_tracer(threads, tracer, lane_base),
        }
    }

    /// The attached tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&std::sync::Arc<Tracer>> {
        self.pool.tracer()
    }

    /// Execution threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.nthreads()
    }

    /// Productive-time ratio since the pool's counters were last reset
    /// (Figure 11's OpenMP series).
    pub fn utilization(&self) -> f64 {
        self.pool.utilization_since_reset()
    }

    /// Reset the pool's performance counters.
    pub fn reset_counters(&self) {
        self.pool.reset_counters()
    }

    /// Run `d` for at most `max_cycles` iterations (or to `stoptime`).
    pub fn run(&mut self, d: &Domain, max_cycles: u64) -> Result<SimState, LuleshError> {
        let mut state = SimState::new(d.initial_dt());
        let mut scratch = Scratch::new(d.num_elem());
        let trace = self
            .pool
            .tracer()
            .map(std::sync::Arc::clone)
            .zip(self.pool.trace_lane_base());
        while state.time < d.params.stoptime && state.cycle < max_cycles {
            time_increment(&mut state, &d.params);
            let start = trace.as_ref().map(|(t, _)| t.now_ns());
            self.step(d, &mut scratch, &mut state)?;
            if let (Some((tracer, lane_base)), Some(start)) = (&trace, start) {
                // One region span per leapfrog iteration on the control
                // lane (past the pool's worker lanes).
                tracer.record_interval(
                    lane_base + self.pool.nthreads(),
                    SpanKind::Region,
                    "iteration",
                    start,
                    tracer.now_ns(),
                );
            }
        }
        Ok(state)
    }

    /// One `LagrangeLeapFrog` with the reference's loop/barrier structure.
    fn step(
        &mut self,
        d: &Domain,
        s: &mut Scratch,
        state: &mut SimState,
    ) -> Result<(), LuleshError> {
        let dt = state.deltatime;
        self.lagrange_nodal(d, s, dt)?;
        self.lagrange_elements(d, s, dt)?;

        // CalcTimeConstraintsForElems: per-region parallel min reductions.
        let nthreads = self.pool.nthreads();
        let mut dtcourant: Real = 1.0e20;
        let mut dthydro: Real = 1.0e20;
        let mut slots_c: Vec<Option<Real>> = vec![None; nthreads];
        let mut slots_h: Vec<Option<Real>> = vec![None; nthreads];
        for r in 0..d.num_reg() {
            let elems = &d.regions.reg_elem_list[r];
            {
                let vc = SharedSlice::new(&mut slots_c);
                let vh = SharedSlice::new(&mut slots_h);
                self.pool.parallel_region_labeled("constraints", |tid, n| {
                    let c = static_split(elems.len(), n, tid);
                    let sub = &elems[c.begin..c.end];
                    // SAFETY: slot `tid` is written by thread `tid` only.
                    unsafe {
                        vc.write(
                            tid,
                            constraints::calc_courant_constraint_for_elems(d, sub, d.params.qqc),
                        );
                        vh.write(
                            tid,
                            constraints::calc_hydro_constraint_for_elems(d, sub, d.params.dvovmax),
                        );
                    }
                });
            }
            for t in 0..nthreads {
                if let Some(c) = slots_c[t] {
                    dtcourant = dtcourant.min(c);
                }
                if let Some(h) = slots_h[t] {
                    dthydro = dthydro.min(h);
                }
            }
        }
        state.dtcourant = dtcourant;
        state.dthydro = dthydro;
        Ok(())
    }

    fn lagrange_nodal(&mut self, d: &Domain, s: &mut Scratch, dt: Real) -> Result<(), LuleshError> {
        let num_elem = d.num_elem();
        let num_node = d.num_node();
        let failed = AtomicBool::new(false);

        // CalcForceForNodes prologue.
        self.pool
            .parallel_for_labeled("stress", num_node, |c| stress::zero_forces(d, c));

        // InitStressTermsForElems + IntegrateStressForElems.
        {
            let sigxx = SharedSlice::new(&mut s.sigxx);
            let sigyy = SharedSlice::new(&mut s.sigyy);
            let sigzz = SharedSlice::new(&mut s.sigzz);
            let determ = SharedSlice::new(&mut s.determ);
            let fx = SharedSlice::new(&mut s.fx_elem);
            let fy = SharedSlice::new(&mut s.fy_elem);
            let fz = SharedSlice::new(&mut s.fz_elem);

            self.pool.parallel_for_labeled("stress", num_elem, |c| {
                // SAFETY: chunks are disjoint per thread.
                unsafe {
                    stress::init_stress_terms_for_elems(
                        d,
                        sigxx.slice_mut(c.begin, c.end),
                        sigyy.slice_mut(c.begin, c.end),
                        sigzz.slice_mut(c.begin, c.end),
                        c,
                    );
                }
            });
            self.pool.parallel_for_labeled("stress", num_elem, |c| {
                // SAFETY: disjoint chunks; sig* written in the previous loop
                // (barrier passed), read-only here.
                unsafe {
                    stress::integrate_stress_for_elems(
                        d,
                        sigxx.slice(c.begin, c.end),
                        sigyy.slice(c.begin, c.end),
                        sigzz.slice(c.begin, c.end),
                        determ.slice_mut(c.begin, c.end),
                        fx.slice_mut(8 * c.begin, 8 * c.end),
                        fy.slice_mut(8 * c.begin, 8 * c.end),
                        fz.slice_mut(8 * c.begin, 8 * c.end),
                        c,
                    );
                }
            });
            self.pool.parallel_for_labeled("stress", num_elem, |c| {
                // SAFETY: determ complete (barrier), read-only.
                let sub = unsafe { determ.slice(c.begin, c.end) };
                if stress::check_volume_error(sub).is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
            });
            if failed.load(Ordering::Relaxed) {
                return Err(LuleshError::VolumeError);
            }
            self.pool
                .parallel_for_labeled("node-gather", num_node, |c| {
                    // SAFETY: f*_elem complete (barrier), read-only.
                    unsafe {
                        stress::gather_forces_set(
                            d,
                            fx.slice(0, 8 * num_elem),
                            fy.slice(0, 8 * num_elem),
                            fz.slice(0, 8 * num_elem),
                            c,
                        );
                    }
                });
        }

        // CalcHourglassControlForElems + CalcFBHourglassForceForElems.
        {
            let dvdx = SharedSlice::new(&mut s.dvdx);
            let dvdy = SharedSlice::new(&mut s.dvdy);
            let dvdz = SharedSlice::new(&mut s.dvdz);
            let x8n = SharedSlice::new(&mut s.x8n);
            let y8n = SharedSlice::new(&mut s.y8n);
            let z8n = SharedSlice::new(&mut s.z8n);
            let determ = SharedSlice::new(&mut s.determ);
            let fx = SharedSlice::new(&mut s.fx_hg);
            let fy = SharedSlice::new(&mut s.fy_hg);
            let fz = SharedSlice::new(&mut s.fz_hg);

            self.pool.parallel_for_labeled("hourglass", num_elem, |c| {
                // SAFETY: disjoint chunks.
                let r = unsafe {
                    hourglass::calc_hourglass_control_for_elems(
                        d,
                        dvdx.slice_mut(8 * c.begin, 8 * c.end),
                        dvdy.slice_mut(8 * c.begin, 8 * c.end),
                        dvdz.slice_mut(8 * c.begin, 8 * c.end),
                        x8n.slice_mut(8 * c.begin, 8 * c.end),
                        y8n.slice_mut(8 * c.begin, 8 * c.end),
                        z8n.slice_mut(8 * c.begin, 8 * c.end),
                        determ.slice_mut(c.begin, c.end),
                        c,
                    )
                };
                if r.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
            });
            if failed.load(Ordering::Relaxed) {
                return Err(LuleshError::VolumeError);
            }

            if d.params.hgcoef > 0.0 {
                self.pool.parallel_for_labeled("hourglass", num_elem, |c| {
                    // SAFETY: geometry arrays complete (barrier), read-only;
                    // force chunks disjoint.
                    unsafe {
                        hourglass::calc_fb_hourglass_force_for_elems(
                            d,
                            determ.slice(c.begin, c.end),
                            x8n.slice(8 * c.begin, 8 * c.end),
                            y8n.slice(8 * c.begin, 8 * c.end),
                            z8n.slice(8 * c.begin, 8 * c.end),
                            dvdx.slice(8 * c.begin, 8 * c.end),
                            dvdy.slice(8 * c.begin, 8 * c.end),
                            dvdz.slice(8 * c.begin, 8 * c.end),
                            d.params.hgcoef,
                            fx.slice_mut(8 * c.begin, 8 * c.end),
                            fy.slice_mut(8 * c.begin, 8 * c.end),
                            fz.slice_mut(8 * c.begin, 8 * c.end),
                            c,
                        );
                    }
                });
                self.pool
                    .parallel_for_labeled("node-gather", num_node, |c| {
                        // SAFETY: hg forces complete (barrier), read-only.
                        unsafe {
                            stress::gather_forces_add(
                                d,
                                fx.slice(0, 8 * num_elem),
                                fy.slice(0, 8 * num_elem),
                                fz.slice(0, 8 * num_elem),
                                c,
                            );
                        }
                    });
            }
        }

        // Node state advance: four loops, four barriers.
        self.pool.parallel_for_labeled("node", num_node, |c| {
            nodal::calc_acceleration_for_nodes(d, c)
        });
        self.pool
            .parallel_for_labeled("node", nodal::symm_list_len(d), |c| {
                nodal::apply_acceleration_boundary_conditions(d, c)
            });
        let u_cut = d.params.u_cut;
        self.pool.parallel_for_labeled("node", num_node, |c| {
            nodal::calc_velocity_for_nodes(d, dt, u_cut, c)
        });
        self.pool.parallel_for_labeled("node", num_node, |c| {
            nodal::calc_position_for_nodes(d, dt, c)
        });
        Ok(())
    }

    fn lagrange_elements(
        &mut self,
        d: &Domain,
        s: &mut Scratch,
        dt: Real,
    ) -> Result<(), LuleshError> {
        let num_elem = d.num_elem();
        let p = d.params;
        let failed = AtomicBool::new(false);

        // CalcLagrangeElements.
        self.pool.parallel_for_labeled("kinematics", num_elem, |c| {
            kinematics::calc_kinematics_for_elems(d, dt, c)
        });
        self.pool.parallel_for_labeled("kinematics", num_elem, |c| {
            if kinematics::calc_lagrange_elements_finish(d, c).is_err() {
                failed.store(true, Ordering::Relaxed);
            }
        });
        if failed.load(Ordering::Relaxed) {
            return Err(LuleshError::VolumeError);
        }

        // CalcQForElems.
        self.pool.parallel_for_labeled("kinematics", num_elem, |c| {
            monoq::calc_monotonic_q_gradients_for_elems(d, c)
        });
        for r in 0..d.num_reg() {
            let elems = &d.regions.reg_elem_list[r];
            self.pool.parallel_for_labeled("monoq", elems.len(), |c| {
                monoq::calc_monotonic_q_region_for_elems(d, &elems[c.begin..c.end], &p);
            });
        }
        self.pool.parallel_for_labeled("qstop", num_elem, |c| {
            if monoq::check_q_stop(d, p.qstop, c).is_err() {
                failed.store(true, Ordering::Relaxed);
            }
        });
        if failed.load(Ordering::Relaxed) {
            return Err(LuleshError::QStopError);
        }

        // ApplyMaterialPropertiesForElems.
        {
            let vnewc = SharedSlice::new(&mut s.vnewc);
            self.pool.parallel_for_labeled("vnewc", num_elem, |c| {
                // SAFETY: disjoint chunks.
                unsafe {
                    eos::fill_vnewc_clamped(
                        d,
                        vnewc.slice_mut(c.begin, c.end),
                        p.eosvmin,
                        p.eosvmax,
                        c,
                    );
                }
            });
            self.pool.parallel_for_labeled("vnewc", num_elem, |c| {
                if eos::check_eos_volume_bounds(d, p.eosvmin, p.eosvmax, c).is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
            });
            if failed.load(Ordering::Relaxed) {
                return Err(LuleshError::VolumeError);
            }
        }

        for r in 0..d.num_reg() {
            let rep = d.regions.rep(r);
            self.eval_eos_region(d, s, r, rep)?;
        }

        // UpdateVolumesForElems.
        self.pool.parallel_for_labeled("volume", num_elem, |c| {
            kinematics::update_volumes_for_elems(d, p.v_cut, c)
        });
        Ok(())
    }

    /// `EvalEOSForElems` with one parallel loop (and barrier) per internal
    /// step, like the reference.
    fn eval_eos_region(
        &mut self,
        d: &Domain,
        s: &mut Scratch,
        region: usize,
        rep: usize,
    ) -> Result<(), LuleshError> {
        let p = d.params;
        let rho0 = p.refdens;
        let elems: &[Index] = &d.regions.reg_elem_list[region];
        let len = elems.len();
        s.eos.resize(len);
        let vnewc_full: &[Real] = &s.vnewc;

        // Shared views over the region-length scratch. SAFETY throughout:
        // each chunk of the region-length arrays is touched by exactly one
        // thread per loop, and loops are barrier-separated.
        let e_old = SharedSlice::new(&mut s.eos.e_old);
        let delvc = SharedSlice::new(&mut s.eos.delvc);
        let p_old = SharedSlice::new(&mut s.eos.p_old);
        let q_old = SharedSlice::new(&mut s.eos.q_old);
        let qq_old = SharedSlice::new(&mut s.eos.qq_old);
        let ql_old = SharedSlice::new(&mut s.eos.ql_old);
        let compression = SharedSlice::new(&mut s.eos.compression);
        let comp_half_step = SharedSlice::new(&mut s.eos.comp_half_step);
        let work = SharedSlice::new(&mut s.eos.work);
        let p_new = SharedSlice::new(&mut s.eos.p_new);
        let e_new = SharedSlice::new(&mut s.eos.e_new);
        let q_new = SharedSlice::new(&mut s.eos.q_new);
        let bvc = SharedSlice::new(&mut s.eos.bvc);
        let pbvc = SharedSlice::new(&mut s.eos.pbvc);
        let p_half_step = SharedSlice::new(&mut s.eos.p_half_step);

        for _ in 0..rep {
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::eos_gather(
                        d,
                        &elems[c.begin..c.end],
                        e_old.slice_mut(c.begin, c.end),
                        delvc.slice_mut(c.begin, c.end),
                        p_old.slice_mut(c.begin, c.end),
                        q_old.slice_mut(c.begin, c.end),
                        qq_old.slice_mut(c.begin, c.end),
                        ql_old.slice_mut(c.begin, c.end),
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::eos_compression(
                        &elems[c.begin..c.end],
                        vnewc_full,
                        delvc.slice(c.begin, c.end),
                        compression.slice_mut(c.begin, c.end),
                        comp_half_step.slice_mut(c.begin, c.end),
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::eos_clamp_compression(
                        &elems[c.begin..c.end],
                        vnewc_full,
                        p.eosvmin,
                        p.eosvmax,
                        compression.slice_mut(c.begin, c.end),
                        comp_half_step.slice_mut(c.begin, c.end),
                        p_old.slice_mut(c.begin, c.end),
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    work.slice_mut(c.begin, c.end).fill(0.0);
                });

            // CalcEnergyForElems, one parallel loop per step.
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::energy_step1(
                        e_new.slice_mut(c.begin, c.end),
                        e_old.slice(c.begin, c.end),
                        delvc.slice(c.begin, c.end),
                        p_old.slice(c.begin, c.end),
                        q_old.slice(c.begin, c.end),
                        work.slice(c.begin, c.end),
                        p.emin,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::calc_pressure_for_elems(
                        p_half_step.slice_mut(c.begin, c.end),
                        bvc.slice_mut(c.begin, c.end),
                        pbvc.slice_mut(c.begin, c.end),
                        e_new.slice(c.begin, c.end),
                        comp_half_step.slice(c.begin, c.end),
                        vnewc_full,
                        &elems[c.begin..c.end],
                        p.pmin,
                        p.p_cut,
                        p.eosvmax,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::energy_step2(
                        e_new.slice_mut(c.begin, c.end),
                        q_new.slice_mut(c.begin, c.end),
                        comp_half_step.slice(c.begin, c.end),
                        p_half_step.slice(c.begin, c.end),
                        bvc.slice(c.begin, c.end),
                        pbvc.slice(c.begin, c.end),
                        delvc.slice(c.begin, c.end),
                        p_old.slice(c.begin, c.end),
                        q_old.slice(c.begin, c.end),
                        ql_old.slice(c.begin, c.end),
                        qq_old.slice(c.begin, c.end),
                        rho0,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::energy_step3(
                        e_new.slice_mut(c.begin, c.end),
                        work.slice(c.begin, c.end),
                        p.e_cut,
                        p.emin,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::calc_pressure_for_elems(
                        p_new.slice_mut(c.begin, c.end),
                        bvc.slice_mut(c.begin, c.end),
                        pbvc.slice_mut(c.begin, c.end),
                        e_new.slice(c.begin, c.end),
                        compression.slice(c.begin, c.end),
                        vnewc_full,
                        &elems[c.begin..c.end],
                        p.pmin,
                        p.p_cut,
                        p.eosvmax,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::energy_step4(
                        e_new.slice_mut(c.begin, c.end),
                        delvc.slice(c.begin, c.end),
                        p_old.slice(c.begin, c.end),
                        q_old.slice(c.begin, c.end),
                        p_half_step.slice(c.begin, c.end),
                        q_new.slice(c.begin, c.end),
                        p_new.slice(c.begin, c.end),
                        bvc.slice(c.begin, c.end),
                        pbvc.slice(c.begin, c.end),
                        ql_old.slice(c.begin, c.end),
                        qq_old.slice(c.begin, c.end),
                        vnewc_full,
                        &elems[c.begin..c.end],
                        rho0,
                        p.e_cut,
                        p.emin,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::calc_pressure_for_elems(
                        p_new.slice_mut(c.begin, c.end),
                        bvc.slice_mut(c.begin, c.end),
                        pbvc.slice_mut(c.begin, c.end),
                        e_new.slice(c.begin, c.end),
                        compression.slice(c.begin, c.end),
                        vnewc_full,
                        &elems[c.begin..c.end],
                        p.pmin,
                        p.p_cut,
                        p.eosvmax,
                    );
                });
            self.pool
                .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                    eos::energy_step5(
                        q_new.slice_mut(c.begin, c.end),
                        delvc.slice(c.begin, c.end),
                        pbvc.slice(c.begin, c.end),
                        e_new.slice(c.begin, c.end),
                        vnewc_full,
                        &elems[c.begin..c.end],
                        bvc.slice(c.begin, c.end),
                        p_new.slice(c.begin, c.end),
                        ql_old.slice(c.begin, c.end),
                        qq_old.slice(c.begin, c.end),
                        rho0,
                        p.q_cut,
                    );
                });
        }

        self.pool
            .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                eos::eos_store(
                    d,
                    &elems[c.begin..c.end],
                    p_new.slice(c.begin, c.end),
                    e_new.slice(c.begin, c.end),
                    q_new.slice(c.begin, c.end),
                );
            });
        self.pool
            .parallel_for_labeled("eos", len, |c: Chunk| unsafe {
                eos::calc_sound_speed_for_elems(
                    d,
                    vnewc_full,
                    rho0,
                    e_new.slice(c.begin, c.end),
                    p_new.slice(c.begin, c.end),
                    pbvc.slice(c.begin, c.end),
                    bvc.slice(c.begin, c.end),
                    &elems[c.begin..c.end],
                );
            });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lulesh_core::serial;
    use lulesh_core::validate::max_field_difference;

    fn run_pair(size: usize, regs: usize, threads: usize, cycles: u64) -> (Domain, Domain) {
        let ds = Domain::build(size, regs, 1, 1, 0);
        let dp = Domain::build(size, regs, 1, 1, 0);
        serial::run(&ds, cycles).unwrap();
        let mut omp = OmpLulesh::new(threads);
        omp.run(&dp, cycles).unwrap();
        (ds, dp)
    }

    #[test]
    fn matches_serial_single_thread() {
        let (ds, dp) = run_pair(6, 3, 1, 10);
        assert_eq!(max_field_difference(&ds, &dp), 0.0);
    }

    #[test]
    fn matches_serial_multi_thread() {
        let (ds, dp) = run_pair(6, 3, 4, 10);
        assert_eq!(
            max_field_difference(&ds, &dp),
            0.0,
            "bitwise agreement expected"
        );
    }

    #[test]
    fn matches_serial_many_regions_odd_threads() {
        let (ds, dp) = run_pair(5, 7, 3, 8);
        assert_eq!(max_field_difference(&ds, &dp), 0.0);
    }

    #[test]
    fn iteration_counts_agree() {
        let ds = Domain::build(5, 2, 1, 1, 0);
        let dp = Domain::build(5, 2, 1, 1, 0);
        let st_s = serial::run(&ds, 1_000_000).unwrap();
        let mut omp = OmpLulesh::new(2);
        let st_p = omp.run(&dp, 1_000_000).unwrap();
        assert_eq!(st_s.cycle, st_p.cycle);
        assert_eq!(st_s.time, st_p.time);
        assert_eq!(st_s.deltatime, st_p.deltatime);
    }

    #[test]
    fn utilization_reported() {
        let d = Domain::build(5, 2, 1, 1, 0);
        let mut omp = OmpLulesh::new(2);
        omp.reset_counters();
        omp.run(&d, 5).unwrap();
        let u = omp.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn traced_run_emits_phase_spans_and_identical_results() {
        let iterations = 3u64;
        let threads = 2usize;
        let ds = Domain::build(5, 2, 1, 1, 0);
        serial::run(&ds, iterations).unwrap();

        let tracer = Tracer::shared(threads + 1);
        let dp = Domain::build(5, 2, 1, 1, 0);
        let mut omp = OmpLulesh::with_tracer(threads, std::sync::Arc::clone(&tracer), 0);
        omp.run(&dp, iterations).unwrap();
        assert_eq!(
            max_field_difference(&ds, &dp),
            0.0,
            "tracing must not perturb physics"
        );

        let spans = tracer.drain();
        let iter_spans = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Region && s.label == "iteration")
            .count();
        assert_eq!(iter_spans as u64, iterations);
        // Every kernel phase shows up, and each loop produced one span per
        // participating thread.
        for phase in [
            "stress",
            "hourglass",
            "node",
            "kinematics",
            "eos",
            "constraints",
        ] {
            let n = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Region && s.label == phase)
                .count();
            assert!(n >= threads, "phase {phase} missing from trace ({n} spans)");
        }
    }
}
