//! OpenMP-reference-style LULESH binary (fork-join execution with a barrier
//! after every parallel loop). CLI and CSV output match the artifact; the
//! thread count flag is `--threads` (the reference uses OMP_NUM_THREADS).

use lulesh_core::{Domain, Opts, RunReport};
use lulesh_omp::OmpLulesh;
use obs::Tracer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-omp"));
            std::process::exit(2);
        }
    };

    // No online tuner here: `--simd auto` resolves to the static sweet
    // spot. Every width is bit-identical, so this only changes speed.
    lulesh_core::simd::set_active(opts.simd.static_width());

    let domain = Domain::build(opts.size, opts.num_reg, opts.balance, opts.cost, opts.seed);
    // One lane per pool thread plus a control lane for iteration spans.
    let tracer =
        (opts.trace.is_some() || opts.metrics.is_some()).then(|| Tracer::shared(opts.threads + 1));
    let mut runner = match &tracer {
        Some(t) => OmpLulesh::with_tracer(opts.threads, Arc::clone(t), 0),
        None => OmpLulesh::new(opts.threads),
    };
    runner.reset_counters();
    let t0 = Instant::now();
    let state = match runner.run(&domain, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    let report = RunReport::collect(&domain, &state, opts.threads, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
        eprintln!("Productive-time ratio = {:.4}", runner.utilization());
    }
    if let Some(t) = &tracer {
        let spans = t.drain();
        if let Err(e) = obs::write_reports(&spans, opts.trace.as_deref(), opts.metrics.as_deref()) {
            eprintln!("failed to write trace/metrics: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
