//! Resilience for the multi-domain drivers: checkpoint/restart, live
//! domain migration, and a cross-rank load balancer.
//!
//! The repo's fault machinery up to PR 8 could *detect* everything —
//! typed [`parcelnet::ParcelError`]s, fault plans, the straggler
//! detector — but acted on none of it. This crate closes both loops:
//!
//! * [`DomainSnapshot`] is a versioned, checksummed serialization of one
//!   rank's domain partition (every SoA array live at the top of the
//!   step loop, plus the cycle/dt state) in the same flat-`Real` style
//!   as `obs::live::StepSummary` —
//!   so the identical encoding rides a [`parcelnet::Tag::MigrateData`]
//!   parcel for live migration *and* lands in `--ckpt-dir` files for
//!   checkpoint/restart.
//! * [`CkptWriter`] is the asynchronous writer thread: the step loop
//!   hands it an encoded snapshot and keeps simulating; file I/O (atomic
//!   tmp+rename, like the bench harness's baseline writes) happens off
//!   the critical path, mirroring parcelnet's TCP writer-thread split.
//! * [`latest_consistent_cycle`] implements the recovery rule: roll back
//!   to the newest cycle for which **every** rank has a
//!   checksum-valid snapshot (a partial checkpoint wave must never be
//!   resumed from).
//! * [`balance::BalanceController`] extends the PR-2 hill-climbing
//!   autotuner's acceptance primitive
//!   ([`lulesh_task::autotune::HysteresisGate`]) into a cross-rank
//!   controller: it consumes the in-band `StepSummary` telemetry at the
//!   allreduce root and orders a domain migration when the EWMA
//!   max/median self-time ratio stays over threshold.
//!
//! Determinism is the load-bearing property: restoring a snapshot and
//! re-running yields **bit-identical** trajectories, because the
//! snapshot captures the step loop's complete top-of-loop state and the
//! physics is deterministic. The failure-injection suite asserts final
//! energies equal to an uninterrupted run after kill → respawn → resume.

#![warn(missing_docs)]

pub mod balance;

use lulesh_core::domain::Domain;
use lulesh_core::params::SimState;
use lulesh_core::types::Real;
use parcelnet::{fnv1a64, Tag};
use std::path::{Path, PathBuf};

/// Version stamped first into every snapshot; bump on layout changes.
/// v2 dropped the 21 scratch arrays (see [`for_each_snapshot_field`]'s
/// liveness note) — a v1 file is rejected as [`SnapshotError::SchemaMismatch`].
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 2;

/// Magic word stored after the version: the checkpoint parcel tag's wire
/// code, so a stray file is rejected as a type error rather than decoded
/// as garbage.
pub const SNAPSHOT_MAGIC: u64 = Tag::Ckpt.to_u32() as u64;

/// Scalar header slots before the flat arrays (see [`DomainSnapshot::encode`]).
const HEADER_LEN: usize = 13;

/// Node-, element-, and gradient-length arrays captured per snapshot.
/// Only the arrays *live* at the top of the step loop are stored; the
/// gradient arrays are pure intra-cycle scratch, so none are captured
/// (the `grad_len` header slot remains as a shape check).
const NODE_ARRAYS: usize = 7;
const ELEM_ARRAYS: usize = 7;
const GRAD_ARRAYS: usize = 0;

/// Total SoA arrays in a snapshot, in fixed capture order.
pub const ARRAY_COUNT: usize = NODE_ARRAYS + ELEM_ARRAYS + GRAD_ARRAYS;

/// Typed snapshot failures: a truncated or bit-flipped checkpoint must
/// surface as one of these, never as a corrupt resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is shorter than its header claims.
    Truncated {
        /// Values (or bytes, for [`DomainSnapshot::from_bytes`]) required.
        need: usize,
        /// Values (or bytes) present.
        got: usize,
    },
    /// The trailing FNV-1a64 checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the payload.
        got: u64,
    },
    /// The snapshot was written by a different schema version.
    SchemaMismatch {
        /// Version found in the header.
        got: u64,
    },
    /// The magic word is wrong: not a snapshot at all.
    BadMagic {
        /// Value found where [`SNAPSHOT_MAGIC`] belongs.
        got: u64,
    },
    /// The snapshot's mesh extents do not match the restore target.
    ShapeMismatch,
    /// The snapshot's region fingerprint does not match the rebuilt
    /// domain (different `--numReg`/balance/cost/seed).
    RegionMismatch,
    /// Filesystem failure reading or writing a snapshot.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { need, got } => {
                write!(f, "snapshot truncated: need {need}, got {got}")
            }
            SnapshotError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {expected:#018x}, computed {got:#018x}"
                )
            }
            SnapshotError::SchemaMismatch { got } => {
                write!(
                    f,
                    "snapshot schema {got} (this build reads {SNAPSHOT_SCHEMA_VERSION})"
                )
            }
            SnapshotError::BadMagic { got } => {
                write!(
                    f,
                    "not a snapshot: magic {got:#x} (expected {SNAPSHOT_MAGIC:#x})"
                )
            }
            SnapshotError::ShapeMismatch => write!(f, "snapshot mesh extents do not match target"),
            SnapshotError::RegionMismatch => {
                write!(f, "snapshot region assignment does not match target domain")
            }
            SnapshotError::Io(k) => write!(f, "snapshot I/O failure: {k:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// Fingerprint of a domain's region assignment (FNV-1a64 over the
/// per-element region numbers). Regions are rebuilt deterministically
/// from the CLI seed on restore, so the snapshot stores this fingerprint
/// instead of the full lists and [`DomainSnapshot::restore`] verifies
/// the rebuilt domain matches.
pub fn region_fingerprint(d: &Domain) -> u64 {
    let mut bytes = Vec::with_capacity(d.regions.reg_num_list.len() * 4);
    for &r in &d.regions.reg_num_list {
        bytes.extend_from_slice(&r.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// A versioned, checksummed serialization of one rank's domain
/// partition: every SoA array that is live at the top of the step loop,
/// plus the loop's [`SimState`]. Connectivity, symmetry lists, and
/// region lists are *not* stored — `Domain::build_subdomain` rebuilds
/// them deterministically from the decomposition, and the region
/// fingerprint in the header verifies the rebuild matches. Intra-cycle
/// scratch arrays are not stored either (see
/// [`for_each_snapshot_field`]): the first post-restore cycle rewrites
/// them before reading, so the trajectory is still bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSnapshot {
    /// The rank that owned this partition at capture time.
    pub rank: usize,
    /// Completed cycles at capture (top of the step loop).
    pub cycle: u64,
    /// Simulation time.
    pub time: Real,
    /// Current time increment.
    pub deltatime: Real,
    /// Courant constraint from the previous step.
    pub dtcourant: Real,
    /// Hydro constraint from the previous step.
    pub dthydro: Real,
    /// Nodes in the partition.
    pub num_node: usize,
    /// Elements in the partition.
    pub num_elem: usize,
    /// Gradient-array length (elements + ghost planes).
    pub grad_len: usize,
    /// [`region_fingerprint`] of the source domain.
    pub region_fp: u64,
    /// The [`ARRAY_COUNT`] SoA arrays, in fixed capture order.
    pub arrays: Vec<Vec<Real>>,
}

/// Apply `$f!(len, getter, setter)` to every captured array in capture
/// order — the one place the field list lives.
///
/// Only arrays **live at the top of the step loop** are captured. Every
/// cycle writes the rest before its first read, so a restored domain
/// regenerates them on its first post-resume cycle and the trajectory
/// stays bit-identical (asserted end-to-end by the failure-injection and
/// hosted-migration suites):
///
/// * `fx/fy/fz` — `zero_forces` clears them before stress integration;
/// * `xdd/ydd/zdd` — recomputed from the fresh forces in `advance_nodes`;
/// * `vnew/delv/vdov/arealg/dxx/dyy/dzz` — kinematics scratch;
/// * `delx_*`/`delv_*` — monotonic-q gradients, rebuilt (and re-exchanged)
///   each cycle before the q calculation reads them;
/// * `ql/qq` — written by the q region pass just before the EOS consumes
///   them.
///
/// Skipping the 21 dead arrays shrinks a snapshot (and a
/// `Tag::MigrateData` parcel) by ~60%, which is what keeps the armed
/// checkpointing cost inside the regress harness's CPU budget.
macro_rules! for_each_snapshot_field {
    ($f:ident, $nn:expr, $ne:expr, $ng:expr) => {
        $f!($nn, x, set_x);
        $f!($nn, y, set_y);
        $f!($nn, z, set_z);
        $f!($nn, xd, set_xd);
        $f!($nn, yd, set_yd);
        $f!($nn, zd, set_zd);
        $f!($nn, nodal_mass, set_nodal_mass);
        $f!($ne, e, set_e);
        $f!($ne, p, set_p);
        $f!($ne, q, set_q);
        $f!($ne, v, set_v);
        $f!($ne, volo, set_volo);
        $f!($ne, ss, set_ss);
        $f!($ne, elem_mass, set_elem_mass);
    };
}

impl DomainSnapshot {
    /// Capture `rank`'s partition at the top of the step loop. Restoring
    /// this snapshot into a freshly built domain and re-entering the loop
    /// reproduces the remaining cycles bit-identically.
    pub fn capture(rank: usize, d: &Domain, state: &SimState) -> Self {
        let nn = d.num_node();
        let ne = d.num_elem();
        let ng = d.shape().grad_len();
        let mut arrays = Vec::with_capacity(ARRAY_COUNT);
        macro_rules! grab {
            ($len:expr, $get:ident, $set:ident) => {
                arrays.push((0..$len).map(|i| d.$get(i)).collect());
            };
        }
        for_each_snapshot_field!(grab, nn, ne, ng);
        Self {
            rank,
            cycle: state.cycle,
            time: state.time,
            deltatime: state.deltatime,
            dtcourant: state.dtcourant,
            dthydro: state.dthydro,
            num_node: nn,
            num_elem: ne,
            grad_len: ng,
            region_fp: region_fingerprint(d),
            arrays,
        }
    }

    /// Write every array back into `d` (which must have been rebuilt
    /// with the same shape and region parameters) and return the
    /// [`SimState`] to resume from. Shape or region mismatches are typed
    /// errors; nothing is written before both checks pass.
    pub fn restore(&self, d: &Domain) -> Result<SimState, SnapshotError> {
        if d.num_node() != self.num_node
            || d.num_elem() != self.num_elem
            || d.shape().grad_len() != self.grad_len
        {
            return Err(SnapshotError::ShapeMismatch);
        }
        if region_fingerprint(d) != self.region_fp {
            return Err(SnapshotError::RegionMismatch);
        }
        let mut it = self.arrays.iter();
        macro_rules! put {
            ($len:expr, $get:ident, $set:ident) => {
                let a = it.next().expect("snapshot holds ARRAY_COUNT arrays");
                for (i, &v) in a.iter().enumerate() {
                    d.$set(i, v);
                }
            };
        }
        for_each_snapshot_field!(put, 0, 0, 0);
        Ok(SimState {
            time: self.time,
            deltatime: self.deltatime,
            cycle: self.cycle,
            dtcourant: self.dtcourant,
            dthydro: self.dthydro,
        })
    }

    /// Values in the flat encoding for these extents.
    fn encoded_len(num_node: usize, num_elem: usize, grad_len: usize) -> usize {
        HEADER_LEN + NODE_ARRAYS * num_node + ELEM_ARRAYS * num_elem + GRAD_ARRAYS * grad_len
    }

    /// Flat-`Real` encoding (the `StepSummary` idiom): a fixed scalar
    /// header — version, magic, rank, cycle, the four dt-state fields,
    /// the three extents, the region fingerprint split into two 32-bit
    /// halves (a u64 does not round-trip through one f64) — followed by
    /// every array. All integer fields are far below 2^53, and `Real`
    /// fields are stored as themselves, so the encoding is exact.
    pub fn encode(&self) -> Vec<Real> {
        let mut v = Vec::with_capacity(Self::encoded_len(
            self.num_node,
            self.num_elem,
            self.grad_len,
        ));
        v.push(SNAPSHOT_SCHEMA_VERSION as Real);
        v.push(SNAPSHOT_MAGIC as Real);
        v.push(self.rank as Real);
        v.push(self.cycle as Real);
        v.push(self.time);
        v.push(self.deltatime);
        v.push(self.dtcourant);
        v.push(self.dthydro);
        v.push(self.num_node as Real);
        v.push(self.num_elem as Real);
        v.push(self.grad_len as Real);
        v.push((self.region_fp >> 32) as u32 as Real);
        v.push(self.region_fp as u32 as Real);
        for a in &self.arrays {
            v.extend_from_slice(a);
        }
        v
    }

    /// Decode [`encode`](Self::encode)'s output; every malformation is a
    /// typed [`SnapshotError`].
    pub fn decode(p: &[Real]) -> Result<Self, SnapshotError> {
        if p.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN,
                got: p.len(),
            });
        }
        if p[0] as u64 != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch { got: p[0] as u64 });
        }
        if p[1] as u64 != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { got: p[1] as u64 });
        }
        let num_node = p[8] as usize;
        let num_elem = p[9] as usize;
        let grad_len = p[10] as usize;
        let need = Self::encoded_len(num_node, num_elem, grad_len);
        if p.len() != need {
            return Err(SnapshotError::Truncated { need, got: p.len() });
        }
        let region_fp = ((p[11] as u32 as u64) << 32) | (p[12] as u32 as u64);
        let mut arrays = Vec::with_capacity(ARRAY_COUNT);
        let mut off = HEADER_LEN;
        let lens = [num_node; NODE_ARRAYS]
            .into_iter()
            .chain([num_elem; ELEM_ARRAYS])
            .chain([grad_len; GRAD_ARRAYS]);
        for len in lens {
            arrays.push(p[off..off + len].to_vec());
            off += len;
        }
        Ok(Self {
            rank: p[2] as usize,
            cycle: p[3] as u64,
            time: p[4],
            deltatime: p[5],
            dtcourant: p[6],
            dthydro: p[7],
            num_node,
            num_elem,
            grad_len,
            region_fp,
            arrays,
        })
    }

    /// Serialize the on-disk form into `out` (cleared first): the flat
    /// encoding as little-endian f64 bytes (bit exact for every value,
    /// NaN payloads included) with a word-folded FNV-1a64 checksum
    /// appended. One pass over the state — the checksum folds each
    /// value's bit pattern as it is written, so there is no intermediate
    /// `Vec<Real>` and no second byte-wise hashing sweep (both showed up
    /// at ~0.5 MB per snapshot wave). Callers that write repeatedly
    /// (the [`CkptWriter`] thread) reuse one buffer to avoid re-faulting
    /// fresh pages on every checkpoint.
    pub fn write_bytes_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(Self::encoded_len(self.num_node, self.num_elem, self.grad_len) * 8 + 8);
        let mut sum = FNV_OFFSET;
        let header: [Real; HEADER_LEN] = [
            SNAPSHOT_SCHEMA_VERSION as Real,
            SNAPSHOT_MAGIC as Real,
            self.rank as Real,
            self.cycle as Real,
            self.time,
            self.deltatime,
            self.dtcourant,
            self.dthydro,
            self.num_node as Real,
            self.num_elem as Real,
            self.grad_len as Real,
            (self.region_fp >> 32) as u32 as Real,
            self.region_fp as u32 as Real,
        ];
        for v in header {
            sum = fold_word(sum, v.to_bits());
            out.extend_from_slice(&v.to_le_bytes());
        }
        for a in &self.arrays {
            for &v in a {
                sum = fold_word(sum, v.to_bits());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out.extend_from_slice(&sum.to_le_bytes());
    }

    /// [`write_bytes_into`](Self::write_bytes_into) into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes_into(&mut out);
        out
    }

    /// Parse [`to_bytes`](Self::to_bytes): checksum first (a bit flip
    /// anywhere in the payload is a [`SnapshotError::ChecksumMismatch`]),
    /// then decode.
    pub fn from_bytes(b: &[u8]) -> Result<Self, SnapshotError> {
        if b.len() < 16 || !(b.len() - 8).is_multiple_of(8) {
            return Err(SnapshotError::Truncated {
                need: 16,
                got: b.len(),
            });
        }
        let (payload, sum_bytes) = b.split_at(b.len() - 8);
        let expected = u64::from_le_bytes(sum_bytes.try_into().expect("8 checksum bytes"));
        let got = payload_checksum(payload);
        if expected != got {
            return Err(SnapshotError::ChecksumMismatch { expected, got });
        }
        let vals: Vec<Real> = payload
            .chunks_exact(8)
            .map(|c| Real::from_le_bytes(c.try_into().expect("8-byte chunks")))
            .collect();
        Self::decode(&vals)
    }
}

/// FNV-1a64 basis and prime (the same constants `parcelnet::fnv1a64`
/// uses byte-wise).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a round over a whole 64-bit word. xor-then-multiply
/// propagates any flipped bit into the running hash, so single-bit-flip
/// detection is preserved, while folding 8 bytes per multiply makes the
/// checksum pass ~8x cheaper than the byte-wise variant — measurable
/// when every checkpoint wave hashes hundreds of kilobytes.
#[inline]
fn fold_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// The snapshot checksum: word-folded FNV-1a64 over the payload, which
/// is always whole little-endian f64 values (so exactly the fold of
/// every value's bit pattern that [`DomainSnapshot::write_bytes_into`]
/// computes while serializing).
fn payload_checksum(payload: &[u8]) -> u64 {
    payload.chunks_exact(8).fold(FNV_OFFSET, |h, c| {
        fold_word(h, u64::from_le_bytes(c.try_into().expect("8-byte chunks")))
    })
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

/// Where and how often to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptConfig {
    /// Directory snapshot files land in (created on first write).
    pub dir: PathBuf,
    /// Checkpoint every `period` cycles (cycle 0 included, so a death
    /// before the first period still has a consistent wave to resume
    /// from).
    pub period: u64,
}

impl CkptConfig {
    /// A config checkpointing to `dir` every `period` cycles.
    pub fn new(dir: impl Into<PathBuf>, period: u64) -> Self {
        Self {
            dir: dir.into(),
            period: period.max(1),
        }
    }
}

/// The snapshot file for `(rank, cycle)` under `dir`.
pub fn snapshot_path(dir: &Path, rank: usize, cycle: u64) -> PathBuf {
    dir.join(format!("ckpt-r{rank:04}-c{cycle:08}.bin"))
}

/// Parse a [`snapshot_path`] file name back into `(rank, cycle)`.
fn parse_snapshot_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("ckpt-r")?.strip_suffix(".bin")?;
    let (rank, cycle) = rest.split_once("-c")?;
    Some((rank.parse().ok()?, cycle.parse().ok()?))
}

/// Write one snapshot atomically (tmp + rename, the same idiom the bench
/// harness uses for its baseline): a crash mid-write leaves no
/// half-written file that [`latest_consistent_cycle`] could trust.
pub fn write_snapshot(dir: &Path, snap: &DomainSnapshot, cycle: u64) -> Result<(), SnapshotError> {
    write_snapshot_buffered(dir, snap, cycle, &mut Vec::new())
}

/// [`write_snapshot`] serializing through a caller-owned buffer, so a
/// long-lived writer ([`CkptWriter`]) touches the same pages every wave
/// instead of faulting in a fresh half-megabyte allocation per file.
pub fn write_snapshot_buffered(
    dir: &Path,
    snap: &DomainSnapshot,
    cycle: u64,
    buf: &mut Vec<u8>,
) -> Result<(), SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let path = snapshot_path(dir, snap.rank, cycle);
    let tmp = path.with_extension("tmp");
    snap.write_bytes_into(buf);
    std::fs::write(&tmp, &*buf)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Load and fully validate the snapshot for `(rank, cycle)`.
pub fn load_snapshot(dir: &Path, rank: usize, cycle: u64) -> Result<DomainSnapshot, SnapshotError> {
    let bytes = std::fs::read(snapshot_path(dir, rank, cycle))?;
    DomainSnapshot::from_bytes(&bytes)
}

/// The newest cycle for which **every** rank `0..ranks` has a
/// checksum-valid snapshot in `dir` — the only cycles a coordinated
/// restart may resume from. A missing directory or an interrupted
/// checkpoint wave simply doesn't qualify; `None` means restart from
/// scratch.
pub fn latest_consistent_cycle(dir: &Path, ranks: usize) -> Option<u64> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut per_cycle: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for entry in entries.flatten() {
        let name = entry.file_name();
        if let Some((rank, cycle)) = parse_snapshot_name(&name.to_string_lossy()) {
            per_cycle.entry(cycle).or_default().push(rank);
        }
    }
    per_cycle
        .into_iter()
        .rev()
        .find(|(cycle, present)| {
            (0..ranks).all(|r| present.contains(&r) && load_snapshot(dir, r, *cycle).is_ok())
        })
        .map(|(cycle, _)| cycle)
}

// ---------------------------------------------------------------------------
// Asynchronous checkpoint writer
// ---------------------------------------------------------------------------

/// The checkpoint writer thread: the step loop submits encoded
/// snapshots and keeps simulating; serialization-to-bytes and file I/O
/// happen here, off the critical path — the same split parcelnet's TCP
/// transport uses for frame serialization. Dropping (or
/// [`finish`](Self::finish)ing) the writer flushes every pending write,
/// so a rank that dies with an error still lands its last wave.
pub struct CkptWriter {
    tx: Option<std::sync::mpsc::Sender<(DomainSnapshot, u64)>>,
    handle: Option<std::thread::JoinHandle<usize>>,
}

impl CkptWriter {
    /// Spawn the writer for `dir` (created eagerly so a bad path fails
    /// at startup, not at the first checkpoint).
    pub fn spawn(dir: &Path) -> Result<Self, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let dir = dir.to_path_buf();
        let (tx, rx) = std::sync::mpsc::channel::<(DomainSnapshot, u64)>();
        let handle = std::thread::Builder::new()
            .name("ckpt-writer".into())
            .spawn(move || {
                let mut failures = 0usize;
                let mut buf = Vec::new();
                while let Ok((snap, cycle)) = rx.recv() {
                    if write_snapshot_buffered(&dir, &snap, cycle, &mut buf).is_err() {
                        failures += 1;
                    }
                }
                failures
            })
            .map_err(|e| SnapshotError::Io(e.kind()))?;
        Ok(Self {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    /// Queue one snapshot for writing; returns immediately.
    pub fn submit(&self, snap: DomainSnapshot, cycle: u64) {
        if let Some(tx) = &self.tx {
            // A dead writer thread is reported by `finish`, not here.
            let _ = tx.send((snap, cycle));
        }
    }

    /// Flush every pending write and return how many failed.
    pub fn finish(mut self) -> usize {
        self.tx.take();
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(usize::MAX))
            .unwrap_or(0)
    }
}

impl Drop for CkptWriter {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_snapshot(rank: usize, seed: u64) -> DomainSnapshot {
        let d = Domain::build(3, 2, 1, 1, seed);
        let mut state = SimState::new(d.initial_dt());
        state.cycle = 17;
        state.time = 0.125;
        DomainSnapshot::capture(rank, &d, &state)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resil-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn capture_restore_roundtrip_is_bit_identical() {
        let d = Domain::build(3, 2, 1, 1, 9);
        let mut state = SimState::new(d.initial_dt());
        state.cycle = 5;
        state.dtcourant = 3.5e-4;
        let snap = DomainSnapshot::capture(0, &d, &state);
        assert_eq!(snap.arrays.len(), ARRAY_COUNT);

        let fresh = Domain::build(3, 2, 1, 1, 9);
        let restored = snap.restore(&fresh).expect("restore");
        assert_eq!(restored, state);
        for i in 0..d.num_node() {
            assert_eq!(d.x(i).to_bits(), fresh.x(i).to_bits());
            assert_eq!(d.nodal_mass(i).to_bits(), fresh.nodal_mass(i).to_bits());
        }
        for i in 0..d.num_elem() {
            assert_eq!(d.e(i).to_bits(), fresh.e(i).to_bits());
        }
    }

    #[test]
    fn restore_rejects_wrong_shape_and_regions() {
        let snap = test_snapshot(0, 7);
        let other_shape = Domain::build(4, 2, 1, 1, 7);
        assert_eq!(
            snap.restore(&other_shape),
            Err(SnapshotError::ShapeMismatch)
        );
        let other_seed = Domain::build(3, 11, 1, 1, 123);
        assert_eq!(
            snap.restore(&other_seed),
            Err(SnapshotError::RegionMismatch)
        );
    }

    #[test]
    fn byte_roundtrip_and_corruption_detection() {
        let snap = test_snapshot(2, 3);
        let bytes = snap.to_bytes();
        assert_eq!(DomainSnapshot::from_bytes(&bytes).expect("roundtrip"), snap);

        // One flipped bit anywhere in the payload is a checksum error.
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 0x10;
        assert!(matches!(
            DomainSnapshot::from_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation is typed too (cut to a multiple of 8 so the length
        // check alone doesn't catch it — the checksum must).
        let cut = &bytes[..bytes.len() - 64];
        assert!(matches!(
            DomainSnapshot::from_bytes(cut),
            Err(SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_schema_and_magic() {
        let snap = test_snapshot(0, 1);
        let mut vals = snap.encode();
        vals[0] = 99.0;
        assert_eq!(
            DomainSnapshot::decode(&vals),
            Err(SnapshotError::SchemaMismatch { got: 99 })
        );
        let mut vals = snap.encode();
        vals[1] = 4.0;
        assert_eq!(
            DomainSnapshot::decode(&vals),
            Err(SnapshotError::BadMagic { got: 4 })
        );
    }

    #[test]
    fn consistent_cycle_requires_every_rank() {
        let dir = tmpdir("consistency");
        let ranks = 3;
        for cycle in [0u64, 10, 20] {
            for rank in 0..ranks {
                if cycle == 20 && rank == 1 {
                    continue; // interrupted wave: rank 1 never landed 20
                }
                write_snapshot(&dir, &test_snapshot(rank, rank as u64), cycle).expect("write");
            }
        }
        assert_eq!(latest_consistent_cycle(&dir, ranks), Some(10));

        // A corrupt member disqualifies its whole wave.
        let p = snapshot_path(&dir, 2, 10);
        let mut bytes = std::fs::read(&p).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&p, bytes).expect("rewrite");
        assert_eq!(latest_consistent_cycle(&dir, ranks), Some(0));
        assert_eq!(latest_consistent_cycle(&dir.join("missing"), ranks), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_thread_flushes_on_finish() {
        let dir = tmpdir("writer");
        let w = CkptWriter::spawn(&dir).expect("spawn");
        for cycle in [0u64, 4, 8] {
            w.submit(test_snapshot(1, 5), cycle);
        }
        assert_eq!(w.finish(), 0);
        for cycle in [0u64, 4, 8] {
            assert!(
                load_snapshot(&dir, 1, cycle).is_ok(),
                "cycle {cycle} missing"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
