//! The cross-rank balance controller: the actuator the PR-8
//! `StragglerDetector` lacked. It consumes the in-band
//! [`StepSummary`](obs::live::StepSummary) telemetry at the allreduce
//! root (per-rank *self* times — wall minus transport wait, so a rank
//! stalled behind a straggler is not itself blamed), smooths them with
//! per-rank EWMAs, and orders a domain migration when the max/median
//! ratio stays over threshold for a full
//! [`HysteresisGate`](lulesh_task::autotune::HysteresisGate) streak —
//! the same noise-rejection primitive the PR-2 partition autotuner
//! accepts moves with, extended from "accept a better plan" to "evict a
//! domain from an overloaded host".

use lulesh_task::autotune::HysteresisGate;
use obs::live::StepSummary;

/// Controller knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceConfig {
    /// EWMA smoothing factor (weight of the newest sample).
    pub alpha: f64,
    /// Trigger when EWMA max/median self time exceeds this ratio.
    pub ratio: f64,
    /// Consecutive over-ratio observations required (hysteresis streak).
    pub streak: u32,
    /// Observations to absorb before the first decision (EWMA warmup).
    pub warmup: u64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        Self {
            // Same smoothing/trigger defaults as the straggler detector,
            // which this controller is the actuator for.
            alpha: 0.4,
            ratio: 1.5,
            streak: 2,
            warmup: 2,
        }
    }
}

/// One migration order: move `rank`'s domain from `from_host` to
/// `to_host`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDecision {
    /// The rank (domain) to move.
    pub rank: usize,
    /// Host currently stepping it.
    pub from_host: usize,
    /// Least-loaded host, by summed EWMA self time.
    pub to_host: usize,
}

/// A record of an executed migration, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Cycle after which the move was committed.
    pub cycle: u64,
    /// The decision that was executed.
    pub decision: MigrationDecision,
}

/// See the module docs. Drive it with
/// [`observe`](Self::observe)/[`observe_summaries`](Self::observe_summaries)
/// once per telemetry step, then ask [`decide`](Self::decide) whether a
/// migration is due.
#[derive(Debug, Clone)]
pub struct BalanceController {
    cfg: BalanceConfig,
    gate: HysteresisGate,
    ewma: Vec<f64>,
    seen: u64,
}

impl BalanceController {
    /// A controller for `ranks` domains.
    pub fn new(ranks: usize, cfg: BalanceConfig) -> Self {
        Self {
            cfg,
            // The gate watches `imbalance − ratio`: fire after `streak`
            // consecutive observations above the configured ratio.
            gate: HysteresisGate::new(cfg.ratio, cfg.streak),
            ewma: vec![0.0; ranks],
            seen: 0,
        }
    }

    /// Feed one step's per-rank self times (nanoseconds, rank order).
    pub fn observe(&mut self, self_ns: &[u64]) {
        debug_assert_eq!(self_ns.len(), self.ewma.len());
        for (e, &s) in self.ewma.iter_mut().zip(self_ns) {
            let s = s as f64;
            *e = if self.seen == 0 {
                s
            } else {
                self.cfg.alpha * s + (1.0 - self.cfg.alpha) * *e
            };
        }
        self.seen += 1;
    }

    /// [`observe`](Self::observe) from decoded in-band telemetry — the
    /// exact payloads the allreduce root collects.
    pub fn observe_summaries(&mut self, summaries: &[StepSummary]) {
        let self_ns: Vec<u64> = summaries.iter().map(|s| s.step_ns).collect();
        self.observe(&self_ns);
    }

    /// Current EWMA max / lower-median self-time ratio. The *lower*
    /// median (index `(n−1)/2` of the sorted times) is deliberate: with
    /// half the ranks on a slow host, the upper median would be a slow
    /// rank too and the ratio would read 1.0 — exactly the imbalance the
    /// controller exists to fix.
    pub fn imbalance(&self) -> f64 {
        let mut sorted = self.ewma.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[(sorted.len() - 1) / 2];
        let max = *sorted.last().expect("at least one rank");
        if median <= 0.0 {
            1.0
        } else {
            max / median
        }
    }

    /// Order a migration if the imbalance has stayed over threshold for
    /// a full streak: the slowest rank (never rank 0 — it anchors the dt
    /// star and telemetry root) moves to the host with the smallest
    /// summed EWMA load. `owner[r]` is the host currently stepping rank
    /// `r`; `hosts` is the host count.
    pub fn decide(&mut self, owner: &[usize], hosts: usize) -> Option<MigrationDecision> {
        debug_assert_eq!(owner.len(), self.ewma.len());
        let ratio = self.imbalance();
        if self.seen <= self.cfg.warmup || !self.gate.observe(ratio) {
            return None;
        }
        let rank = self
            .ewma
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))?
            .0;
        let from_host = owner[rank];
        let mut load = vec![0.0f64; hosts];
        for (r, &h) in owner.iter().enumerate() {
            load[h] += self.ewma[r];
        }
        let to_host = load.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))?.0;
        if to_host == from_host {
            return None;
        }
        // The move invalidates the rank's load history (its self time was
        // a property of the old placement): reseed its EWMA at the median
        // so the controller re-learns from fresh samples instead of
        // ping-ponging the same domain on a stale spike.
        let mut sorted = self.ewma.clone();
        sorted.sort_by(f64::total_cmp);
        self.ewma[rank] = sorted[(sorted.len() - 1) / 2];
        Some(MigrationDecision {
            rank,
            from_host,
            to_host,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_load_never_triggers() {
        let mut c = BalanceController::new(4, BalanceConfig::default());
        for _ in 0..50 {
            c.observe(&[100, 105, 95, 102]);
            assert_eq!(c.decide(&[0, 0, 1, 1], 2), None);
        }
        assert!(c.imbalance() < 1.2);
    }

    #[test]
    fn persistent_straggler_is_evicted_to_idle_host() {
        let mut c = BalanceController::new(3, BalanceConfig::default());
        let owner = [0, 0, 1];
        // Host 1 is slow: rank 2's self time dwarfs the others.
        let mut decision = None;
        for _ in 0..10 {
            c.observe(&[100, 110, 900]);
            if let Some(d) = c.decide(&owner, 2) {
                decision = Some(d);
                break;
            }
        }
        let d = decision.expect("sustained imbalance must trigger");
        assert_eq!(d.rank, 2);
        assert_eq!(d.from_host, 1);
        assert_eq!(d.to_host, 0);
    }

    #[test]
    fn rank_zero_is_never_migrated() {
        let mut c = BalanceController::new(3, BalanceConfig::default());
        for _ in 0..10 {
            // Rank 0 is the worst hog, but it anchors the dt star: the
            // controller must evict the slowest of the *rest*.
            c.observe(&[900, 500, 100]);
            if let Some(d) = c.decide(&[0, 0, 1], 2) {
                assert_eq!(d.rank, 1);
                assert_eq!(d.to_host, 1);
                return;
            }
        }
        panic!("imbalance never triggered");
    }

    #[test]
    fn one_shot_spike_is_rejected_by_the_gate() {
        let mut c = BalanceController::new(2, BalanceConfig::default());
        for step in 0..20 {
            // One spike pushes the EWMA ratio over threshold for exactly
            // one observation; the streak-of-2 gate must not fire, and
            // by the next step the EWMA is back under.
            let spike = if step == 10 { 280 } else { 105 };
            c.observe(&[100, spike]);
            assert_eq!(c.decide(&[0, 1], 2), None, "step {step}");
        }
    }
}
