//! Property tests for the snapshot wire/disk format: for arbitrary
//! extents and array contents (including negatives, tiny magnitudes, and
//! exact zeros), `encode → decode` and `to_bytes → from_bytes` are
//! bit-identical per SoA array, and any truncation or bit flip surfaces
//! as a typed [`SnapshotError`] — never a silently corrupt snapshot.

use proptest::prelude::*;
use resil::{DomainSnapshot, SnapshotError, ARRAY_COUNT};

/// Deterministically fill a snapshot from a seed (SplitMix64), with the
/// extents under test. Values span signs and ~60 binary orders of
/// magnitude so the exactness claim is not tested on friendly inputs.
fn synth(
    seed: u64,
    rank: usize,
    num_node: usize,
    num_elem: usize,
    grad_len: usize,
) -> DomainSnapshot {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut val = move || {
        let r = next();
        match r % 8 {
            // An exact zero and an exact power of two keep the easy
            // cases in the mix alongside the awkward ones.
            0 => 0.0,
            1 => 2.0f64.powi((r >> 3) as i32 % 32 - 16),
            _ => {
                let mag = ((r >> 8) as f64 / (1u64 << 56) as f64) * 1e10 + 1e-20;
                if r & 1 == 0 {
                    mag
                } else {
                    -mag
                }
            }
        }
    };
    // v2 layout: 7 node + 7 elem arrays; the gradient arrays are
    // intra-cycle scratch and not captured (grad_len stays in the header
    // purely as a shape check).
    let lens: Vec<usize> = std::iter::repeat_n(num_node, 7)
        .chain(std::iter::repeat_n(num_elem, 7))
        .collect();
    assert_eq!(lens.len(), ARRAY_COUNT);
    DomainSnapshot {
        rank,
        cycle: next() % 1_000_000,
        time: val(),
        deltatime: val().abs() + 1e-12,
        dtcourant: val().abs() + 1e-12,
        dthydro: val().abs() + 1e-12,
        num_node,
        num_elem,
        grad_len,
        region_fp: next(),
        arrays: lens
            .iter()
            .map(|&l| (0..l).map(|_| val()).collect())
            .collect(),
    }
}

/// Bit-exact equality per array, plus every header field.
fn assert_bit_identical(a: &DomainSnapshot, b: &DomainSnapshot) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rank, b.rank);
    prop_assert_eq!(a.cycle, b.cycle);
    prop_assert_eq!(a.time.to_bits(), b.time.to_bits());
    prop_assert_eq!(a.deltatime.to_bits(), b.deltatime.to_bits());
    prop_assert_eq!(a.dtcourant.to_bits(), b.dtcourant.to_bits());
    prop_assert_eq!(a.dthydro.to_bits(), b.dthydro.to_bits());
    prop_assert_eq!(a.num_node, b.num_node);
    prop_assert_eq!(a.num_elem, b.num_elem);
    prop_assert_eq!(a.grad_len, b.grad_len);
    prop_assert_eq!(a.region_fp, b.region_fp);
    prop_assert_eq!(a.arrays.len(), b.arrays.len());
    for (i, (x, y)) in a.arrays.iter().zip(&b.arrays).enumerate() {
        prop_assert_eq!(x.len(), y.len(), "array {} length", i);
        for (j, (p, q)) in x.iter().zip(y).enumerate() {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "array {} slot {}", i, j);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The flat-Real encoding round-trips bit-identically for arbitrary
    /// extents (including degenerate zero-length gradient arrays).
    #[test]
    fn encode_decode_is_bit_identical(
        seed in 0u64..1_000_000,
        num_node in 1usize..64,
        num_elem in 0usize..64,
    ) {
        let grad_len = num_elem + seed as usize % 9;
        let snap = synth(seed, seed as usize % 8, num_node, num_elem, grad_len);
        let back = DomainSnapshot::decode(&snap.encode()).expect("own encoding decodes");
        assert_bit_identical(&snap, &back)?;
    }

    /// The on-disk byte form round-trips bit-identically too — NaN-free
    /// here, but the le-bytes encoding preserves every payload bit.
    #[test]
    fn byte_roundtrip_is_bit_identical(seed in 0u64..1_000_000, num_node in 1usize..48) {
        let snap = synth(seed, 3, num_node, num_node / 2, num_node / 2);
        let back = DomainSnapshot::from_bytes(&snap.to_bytes()).expect("own bytes parse");
        assert_bit_identical(&snap, &back)?;
    }

    /// Truncating the byte form anywhere yields a typed error: either the
    /// length check fires, or the checksum no longer matches. Never Ok.
    #[test]
    fn any_truncation_is_a_typed_error(seed in 0u64..1_000_000, cut in 1usize..4096) {
        let bytes = synth(seed, 0, 12, 8, 10).to_bytes();
        let cut = cut % (bytes.len() - 1) + 1;
        match DomainSnapshot::from_bytes(&bytes[..bytes.len() - cut]) {
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "truncation by {} gave {:?}", cut, other),
        }
    }

    /// Flipping any single bit of the byte form is caught by the FNV-1a64
    /// checksum (flips in the trailer itself included).
    #[test]
    fn any_bit_flip_is_a_checksum_mismatch(seed in 0u64..1_000_000, pos in 0usize..1_000_000) {
        let mut bytes = synth(seed, 1, 10, 6, 8).to_bytes();
        let bit = pos % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match DomainSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::ChecksumMismatch { expected, got }) => {
                prop_assert!(expected != got);
            }
            other => prop_assert!(false, "bit flip at {} gave {:?}", bit, other),
        }
    }
}
