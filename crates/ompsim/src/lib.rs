//! # ompsim — an OpenMP-substitute fork-join runtime
//!
//! Models the execution the LULESH OpenMP reference gets from
//! `#pragma omp parallel for` with libgomp:
//!
//! * a **persistent pool** of worker threads (like `OMP_NUM_THREADS`);
//! * [`Pool::parallel_for`] — a statically scheduled loop: `0..n` is split
//!   into one contiguous chunk per thread (sizes differing by at most one)
//!   and **every loop ends in a barrier**, the synchronization cost the
//!   paper's task-based port eliminates;
//! * [`Pool::parallel_region`] — a fused region executing a closure once
//!   per thread (for the reference's multi-loop parallel regions);
//! * per-thread productive-time counters, mirroring the paper's manual
//!   OpenMP instrumentation for Figure 11.
//!
//! Closures are *borrowed* (non-`'static`), like OpenMP's lexical regions:
//! the pool guarantees every worker finished before `parallel_for` returns,
//! which is what makes the internal lifetime erasure sound.

#![warn(missing_docs)]

use obs::{SpanKind, Tracer};
use parking_lot::{Condvar, Mutex};
use parutil::{static_split, BusyIdleClock, CachePadded, Chunk, SenseBarrier};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The job the pool broadcasts to its workers: a borrowed closure invoked
/// as `f(thread_id, nthreads)`.
type Job = *const (dyn Fn(usize, usize) + Sync);

/// Tracing attachment: thread `tid` records [`SpanKind::Region`] spans on
/// `tracer` lane `lane_base + tid`.
struct TraceCtx {
    tracer: Arc<Tracer>,
    lane_base: usize,
}

struct Shared {
    /// Current job plus its generation; valid only between post and the
    /// completion barrier.
    job: Mutex<Option<SendJob>>,
    job_cv: Condvar,
    done_barrier: SenseBarrier,
    shutdown: AtomicBool,
    /// Set when any participant's closure panicked during the current
    /// region; the master re-raises after the join barrier.
    panicked: AtomicBool,
    clocks: Vec<CachePadded<BusyIdleClock>>,
    epoch: Mutex<Instant>,
    /// `None` ⇒ tracing disabled; each region pays one branch.
    trace: Option<TraceCtx>,
}

/// Wrapper making the raw job pointer `Send`. Validity is guaranteed by the
/// fork-join protocol: the master does not return (and therefore the
/// referenced closure does not die) until every worker has passed the
/// completion barrier for this job. Carries the region's generation and
/// phase label (labels are `'static`, so shipping them is free).
struct SendJob(Job, u64, &'static str);
unsafe impl Send for SendJob {}

/// Time `f` on thread `tid`, crediting the single measurement to both the
/// thread's busy clock and (when tracing) a [`SpanKind::Region`] span — so
/// `Pool::stats().busy_ns` equals the summed span durations exactly.
fn exec_region(shared: &Shared, tid: usize, label: &'static str, f: impl FnOnce()) {
    match shared.trace.as_ref() {
        Some(tc) => {
            let start = tc.tracer.now_ns();
            let t0 = Instant::now();
            f();
            let dur = t0.elapsed().as_nanos() as u64;
            shared.clocks[tid].add_busy_ns(dur);
            shared.clocks[tid].count_task();
            tc.tracer.record_interval(
                tc.lane_base + tid,
                SpanKind::Region,
                label,
                start,
                start + dur,
            );
        }
        None => shared.clocks[tid].run_busy(f),
    }
}

/// A persistent fork-join worker pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
    next_gen: u64,
}

/// Counter snapshot across the pool's threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Threads in the pool (including the master).
    pub threads: usize,
    /// Σ busy nanoseconds since last reset.
    pub busy_ns: u64,
    /// Parallel loops/regions executed (counted once per thread).
    pub tasks: u64,
    /// Wall nanoseconds since last reset.
    pub wall_ns: u64,
}

impl Pool {
    /// Create a pool of `nthreads` total execution threads. The calling
    /// thread acts as thread 0 (like an OpenMP master), so `nthreads - 1`
    /// OS threads are spawned.
    pub fn new(nthreads: usize) -> Self {
        Self::build(nthreads, None)
    }

    /// [`new`](Self::new) with span tracing attached: thread `tid` records
    /// each parallel region as a [`SpanKind::Region`] span on `tracer`
    /// lane `lane_base + tid`.
    pub fn with_tracer(nthreads: usize, tracer: Arc<Tracer>, lane_base: usize) -> Self {
        Self::build(nthreads, Some(TraceCtx { tracer, lane_base }))
    }

    fn build(nthreads: usize, trace: Option<TraceCtx>) -> Self {
        assert!(nthreads >= 1, "need at least one thread");
        let shared = Arc::new(Shared {
            job: Mutex::new(None),
            job_cv: Condvar::new(),
            done_barrier: SenseBarrier::new(nthreads),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            clocks: (0..nthreads)
                .map(|_| CachePadded(BusyIdleClock::new()))
                .collect(),
            epoch: Mutex::new(Instant::now()),
            trace,
        });

        let handles = (1..nthreads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ompsim-worker-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("spawn pool worker")
            })
            .collect();

        Self {
            shared,
            handles,
            nthreads,
            next_gen: 0,
        }
    }

    /// Number of execution threads (master included).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `f(tid, nthreads)` on every thread and wait for all of them
    /// — one OpenMP `parallel` region.
    pub fn parallel_region<F>(&mut self, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_region_labeled("region", f)
    }

    /// [`parallel_region`](Self::parallel_region) with a phase label for
    /// the per-thread trace spans (e.g. the LULESH kernel the region runs).
    pub fn parallel_region_labeled<F>(&mut self, label: &'static str, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let nthreads = self.nthreads;
        if nthreads == 1 {
            exec_region(&self.shared, 0, label, || f(0, 1));
            return;
        }
        self.shared.panicked.store(false, Ordering::Relaxed);

        self.next_gen += 1;
        let wide: &(dyn Fn(usize, usize) + Sync) = &f;
        // SAFETY (lifetime erasure): `f` outlives this call, and this call
        // does not return until every worker has crossed `done_barrier`
        // below, after which no worker touches the pointer again.
        let job: Job = unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), Job>(wide) };
        {
            let mut slot = self.shared.job.lock();
            *slot = Some(SendJob(job, self.next_gen, label));
            self.shared.job_cv.notify_all();
        }

        // Master participates as thread 0. A panic in `f` must not unwind
        // past the join barrier: the workers still hold the lifetime-erased
        // pointer to `f` until they cross it. Catch, join, then re-raise.
        let master_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec_region(&self.shared, 0, label, || f(0, nthreads));
        }))
        .err();

        // Join: wait until all workers finished this job.
        self.shared.done_barrier.wait();

        if let Some(payload) = master_panic {
            std::panic::resume_unwind(payload);
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a worker thread panicked inside the parallel region");
        }
    }

    /// `#pragma omp parallel for schedule(static)`: run `body` over `0..n`
    /// split into one contiguous chunk per thread, then barrier.
    pub fn parallel_for<F>(&mut self, n: usize, body: F)
    where
        F: Fn(Chunk) + Sync,
    {
        self.parallel_for_labeled("loop", n, body)
    }

    /// [`parallel_for`](Self::parallel_for) with a phase label for the
    /// per-thread trace spans.
    pub fn parallel_for_labeled<F>(&mut self, label: &'static str, n: usize, body: F)
    where
        F: Fn(Chunk) + Sync,
    {
        self.parallel_region_labeled(label, |tid, nthreads| {
            let chunk = static_split(n, nthreads, tid);
            if !chunk.is_empty() {
                body(chunk);
            }
        });
    }

    /// The attached tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.shared.trace.as_ref().map(|t| &t.tracer)
    }

    /// The lane tracing was attached at (thread `tid` records on
    /// `lane_base + tid`). `None` when untraced.
    pub fn trace_lane_base(&self) -> Option<usize> {
        self.shared.trace.as_ref().map(|t| t.lane_base)
    }

    /// `#pragma omp parallel for schedule(dynamic, chunk)`: threads grab
    /// `chunk`-sized pieces of `0..n` from a shared counter until the loop
    /// is exhausted, then barrier. The counterfactual baseline the paper's
    /// "LULESH does not expose load imbalance during its loops" observation
    /// invites (see the `whatif` bench binary).
    pub fn parallel_for_dynamic<F>(&mut self, n: usize, chunk: usize, body: F)
    where
        F: Fn(Chunk) + Sync,
    {
        assert!(chunk > 0, "dynamic chunk must be positive");
        let next = AtomicUsize::new(0);
        self.parallel_region(|_tid, _nthreads| loop {
            let begin = next.fetch_add(chunk, Ordering::Relaxed);
            if begin >= n {
                break;
            }
            body(Chunk {
                begin,
                end: (begin + chunk).min(n),
            });
        });
    }

    /// Counter snapshot since the last reset.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.nthreads,
            busy_ns: self.shared.clocks.iter().map(|c| c.busy_ns()).sum(),
            tasks: self.shared.clocks.iter().map(|c| c.tasks()).sum(),
            wall_ns: self.shared.epoch.lock().elapsed().as_nanos() as u64,
        }
    }

    /// Zero the counters and restart the utilization epoch.
    pub fn reset_counters(&self) {
        for c in &self.shared.clocks {
            c.reset();
        }
        *self.shared.epoch.lock() = Instant::now();
    }

    /// Productive-time ratio since the last reset (Figure 11's metric,
    /// measured the way the paper measures OpenMP: time inside parallel
    /// regions vs. total).
    pub fn utilization_since_reset(&self) -> f64 {
        let s = self.stats();
        if s.wall_ns == 0 {
            return 0.0;
        }
        (s.busy_ns as f64 / (s.wall_ns as f64 * s.threads as f64)).min(1.0)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.job.lock();
            self.shared.job_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut seen_gen = 0u64;
    loop {
        // Wait for a new job generation: spin briefly first (consecutive
        // parallel loops dispatch within microseconds of each other, and a
        // futex sleep/wake per worker per loop would dominate the
        // barrier-heavy baseline), then park on the condvar.
        let mut job = None;
        for spin in 0..512u32 {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(slot) = shared.job.try_lock() {
                if let Some(SendJob(ptr, gen, label)) = &*slot {
                    if *gen > seen_gen {
                        seen_gen = *gen;
                        job = Some((*ptr, *label));
                        break;
                    }
                }
            }
            if spin % 64 == 63 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        let (job, label) = match job {
            Some(j) => j,
            None => {
                let mut slot = shared.job.lock();
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match &*slot {
                        Some(SendJob(ptr, gen, label)) if *gen > seen_gen => {
                            seen_gen = *gen;
                            break (*ptr, *label);
                        }
                        _ => shared.job_cv.wait(&mut slot),
                    }
                }
            }
        };

        // SAFETY: the master keeps the closure alive until after it passes
        // `done_barrier`, which happens only after this call returns and we
        // arrive at the barrier below. A panicking closure is caught so the
        // worker still reaches the barrier (otherwise the master would wait
        // forever); the master re-raises it after the join.
        let f: &(dyn Fn(usize, usize) + Sync) = unsafe { &*job };
        let nthreads = shared.done_barrier.participants();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec_region(&shared, tid, label, || f(tid, nthreads));
        }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        shared.done_barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_all_indices_once() {
        let mut pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(1000, |chunk| {
            for i in chunk.iter() {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn borrowed_state_is_visible_after_barrier() {
        // The defining property of the fork-join barrier: all writes are
        // done when parallel_for returns.
        let mut pool = Pool::new(3);
        let mut data = vec![0usize; 100];
        {
            let view = parutil::SharedSlice::new(&mut data);
            pool.parallel_for(100, |chunk| {
                for i in chunk.iter() {
                    // SAFETY: static split → disjoint indices per thread.
                    unsafe { view.write(i, i * 3) };
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn consecutive_loops_are_ordered() {
        // Loop 2 must observe all of loop 1's writes (barrier semantics).
        let mut pool = Pool::new(4);
        let mut a = vec![0u64; 64];
        let mut b = vec![0u64; 64];
        {
            let va = parutil::SharedSlice::new(&mut a);
            let vb = parutil::SharedSlice::new(&mut b);
            pool.parallel_for(64, |chunk| {
                for i in chunk.iter() {
                    // SAFETY: disjoint static chunks.
                    unsafe { va.write(i, (i + 1) as u64) };
                }
            });
            pool.parallel_for(64, |chunk| {
                for i in chunk.iter() {
                    // Read a *different* thread's region: reversed index.
                    let j = 63 - i;
                    // SAFETY: loop 1 completed (barrier); reads race nothing.
                    unsafe { vb.write(i, *va.get(j) * 2) };
                }
            });
        }
        for (i, v) in b.iter().enumerate() {
            assert_eq!(*v, ((63 - i) + 1) as u64 * 2);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut pool = Pool::new(1);
        let total = AtomicU64::new(0);
        pool.parallel_for(10, |chunk| {
            for i in chunk.iter() {
                total.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn parallel_region_runs_once_per_thread() {
        let mut pool = Pool::new(5);
        let count = AtomicU64::new(0);
        let tid_sum = AtomicU64::new(0);
        pool.parallel_region(|tid, n| {
            assert_eq!(n, 5);
            count.fetch_add(1, Ordering::SeqCst);
            tid_sum.fetch_add(tid as u64, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
        assert_eq!(tid_sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn many_consecutive_regions() {
        let mut pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..200 {
            pool.parallel_region(|_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn stats_count_regions_per_thread() {
        let mut pool = Pool::new(2);
        pool.reset_counters();
        for _ in 0..10 {
            pool.parallel_for(100, |_c| {});
        }
        let s = pool.stats();
        assert_eq!(s.tasks, 20, "10 loops × 2 threads");
        assert!(s.busy_ns > 0);
        let u = pool.utilization_since_reset();
        assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn dynamic_schedule_covers_all_indices_once() {
        let mut pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..997).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for_dynamic(997, 16, |chunk| {
            for i in chunk.iter() {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn dynamic_matches_static_results() {
        // Scheduling must not change what gets computed.
        let mut pool = Pool::new(3);
        let mut a = vec![0u64; 200];
        let mut b = vec![0u64; 200];
        {
            let va = parutil::SharedSlice::new(&mut a);
            let vb = parutil::SharedSlice::new(&mut b);
            pool.parallel_for(200, |c| {
                for i in c.iter() {
                    // SAFETY: disjoint chunks.
                    unsafe { va.write(i, (i * i) as u64) };
                }
            });
            pool.parallel_for_dynamic(200, 7, |c| {
                for i in c.iter() {
                    // SAFETY: dynamic chunks are disjoint (atomic counter).
                    unsafe { vb.write(i, (i * i) as u64) };
                }
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    fn empty_loop_is_fine() {
        let mut pool = Pool::new(4);
        pool.parallel_for(0, |_c| panic!("no chunk should be non-empty"));
        pool.parallel_for(2, |c| assert!(c.len() <= 1));
    }

    #[test]
    fn pool_drop_joins() {
        let pool = Pool::new(6);
        drop(pool);
    }

    #[test]
    fn worker_panic_is_reraised_on_master_and_pool_survives() {
        let mut pool = Pool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_region(|tid, _| {
                if tid == 2 {
                    panic!("boom on worker");
                }
            });
        }));
        assert!(r.is_err(), "worker panic must surface on the master");
        // The pool must remain usable afterwards.
        let count = AtomicU64::new(0);
        pool.parallel_region(|_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn master_panic_is_reraised_after_join() {
        let mut pool = Pool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_region(|tid, _| {
                if tid == 0 {
                    panic!("boom on master");
                }
            });
        }));
        assert!(r.is_err());
        let count = AtomicU64::new(0);
        pool.parallel_region(|_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn traced_pool_records_region_spans_matching_busy_clock() {
        let tracer = Tracer::shared(3);
        let mut pool = Pool::with_tracer(3, Arc::clone(&tracer), 0);
        pool.reset_counters();
        for _ in 0..4 {
            pool.parallel_for_labeled("stress", 300, |c| {
                std::hint::black_box(c.iter().map(|i| i as u64).sum::<u64>());
            });
        }
        let s = pool.stats();
        let spans = tracer.drain();
        let regions: Vec<_> = spans
            .iter()
            .filter(|sp| sp.kind == SpanKind::Region)
            .collect();
        assert_eq!(regions.len(), 12, "4 loops × 3 threads");
        assert!(regions.iter().all(|sp| sp.label == "stress"));
        let span_ns: u64 = regions.iter().map(|sp| sp.dur_ns()).sum();
        assert_eq!(
            s.busy_ns, span_ns,
            "busy clock and region spans must share one measurement"
        );
        // Lanes 0..3 correspond to threads 0..3.
        assert!(regions.iter().all(|sp| sp.worker < 3));
    }

    #[test]
    fn untraced_pool_has_no_tracer() {
        let pool = Pool::new(2);
        assert!(pool.tracer().is_none());
        assert!(pool.trace_lane_base().is_none());
    }

    #[test]
    fn static_schedule_is_deterministic() {
        // The same (n, nthreads) must always produce the same chunks — a
        // property LULESH's bitwise reproducibility relies on.
        let mut pool = Pool::new(3);
        let chunks = Mutex::new(vec![Chunk { begin: 0, end: 0 }; 3]);
        for _ in 0..5 {
            pool.parallel_region(|tid, n| {
                let c = static_split(100, n, tid);
                chunks.lock()[tid] = c;
            });
            let got = chunks.lock().clone();
            assert_eq!(got[0], Chunk { begin: 0, end: 34 });
            assert_eq!(got[1], Chunk { begin: 34, end: 67 });
            assert_eq!(
                got[2],
                Chunk {
                    begin: 67,
                    end: 100
                }
            );
        }
    }
}
