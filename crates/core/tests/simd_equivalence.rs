//! Bitwise scalar-vs-lane equivalence for every SIMD-ported kernel.
//!
//! Each test runs the scalar reference and every lane width (2, 4, 8) on
//! the same state and compares outputs with `f64::to_bits` — not approximate
//! equality. Element counts are deliberately non-multiples of every width
//! (27 dense elements; region lists of odd lengths) so the ragged-tail
//! paths are always exercised.

use lulesh_core::kernels::{eos, hourglass, kinematics, monoq, stress};
use lulesh_core::simd::{self, LaneWidth};
use lulesh_core::types::Real;
use lulesh_core::{Domain, Params};
use parutil::Chunk;

/// Deterministically perturbed domain: 27 elements (3³), two regions,
/// mixed-sign pressures, viscosities and velocities.
fn seeded_domain() -> Domain {
    let d = Domain::build(3, 2, 1, 1, 0);
    for e in 0..d.num_elem() {
        d.set_p(e, (e as Real * 0.7).sin() * 0.1);
        d.set_q(e, (e as Real * 0.3).cos().abs() * 0.01);
        d.set_ss(e, 0.5 + (e as Real * 0.11).sin().abs());
    }
    for n in 0..d.num_node() {
        d.set_xd(n, (n as Real * 0.13).sin() * 0.02);
        d.set_yd(n, (n as Real * 0.29).cos() * 0.02);
        d.set_zd(n, (n as Real * 0.41).sin() * 0.02);
    }
    d
}

fn assert_bits_eq(a: &[Real], b: &[Real], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for i in 0..a.len() {
        assert_eq!(
            a[i].to_bits(),
            b[i].to_bits(),
            "{what}[{i}]: {} vs {}",
            a[i],
            b[i]
        );
    }
}

// ---------------------------------------------------------------- stress --

fn stress_lanes_case<const W: usize>(d: &Domain, range: Chunk) {
    let n = range.len();
    let mut sx = vec![0.0; n];
    let mut sy = vec![0.0; n];
    let mut sz = vec![0.0; n];
    stress::init_stress_terms_for_elems(d, &mut sx, &mut sy, &mut sz, range);

    let mut det1 = vec![0.0; n];
    let mut fx1 = vec![0.0; 8 * n];
    let mut fy1 = vec![0.0; 8 * n];
    let mut fz1 = vec![0.0; 8 * n];
    stress::integrate_stress_for_elems_scalar(
        d, &sx, &sy, &sz, &mut det1, &mut fx1, &mut fy1, &mut fz1, range,
    );

    let mut det2 = vec![0.0; n];
    let mut fx2 = vec![0.0; 8 * n];
    let mut fy2 = vec![0.0; 8 * n];
    let mut fz2 = vec![0.0; 8 * n];
    stress::integrate_stress_for_elems_lanes::<W>(
        d, &sx, &sy, &sz, &mut det2, &mut fx2, &mut fy2, &mut fz2, range,
    );

    assert_bits_eq(&det1, &det2, &format!("determ w{W}"));
    assert_bits_eq(&fx1, &fx2, &format!("fx_elem w{W}"));
    assert_bits_eq(&fy1, &fy2, &format!("fy_elem w{W}"));
    assert_bits_eq(&fz1, &fz2, &format!("fz_elem w{W}"));
}

#[test]
fn stress_every_width_matches_scalar_bitwise() {
    let d = seeded_domain();
    // 27 elements: ragged for every width; also a nonzero chunk begin
    // (19 elements: ragged again) to catch chunk-local offset bugs.
    let full = Chunk {
        begin: 0,
        end: d.num_elem(),
    };
    let off = Chunk {
        begin: 8,
        end: d.num_elem(),
    };
    for range in [full, off] {
        stress_lanes_case::<2>(&d, range);
        stress_lanes_case::<4>(&d, range);
        stress_lanes_case::<8>(&d, range);
    }
}

// ------------------------------------------------------------- hourglass --

fn hourglass_lanes_case<const W: usize>(d: &Domain, range: Chunk) {
    let n = range.len();
    let mut dvdx = vec![0.0; 8 * n];
    let mut dvdy = vec![0.0; 8 * n];
    let mut dvdz = vec![0.0; 8 * n];
    let mut x8n = vec![0.0; 8 * n];
    let mut y8n = vec![0.0; 8 * n];
    let mut z8n = vec![0.0; 8 * n];
    let mut determ = vec![0.0; n];
    hourglass::calc_hourglass_control_for_elems(
        d,
        &mut dvdx,
        &mut dvdy,
        &mut dvdz,
        &mut x8n,
        &mut y8n,
        &mut z8n,
        &mut determ,
        range,
    )
    .unwrap();

    let hourg = 3.0;
    let mut fx1 = vec![0.0; 8 * n];
    let mut fy1 = vec![0.0; 8 * n];
    let mut fz1 = vec![0.0; 8 * n];
    hourglass::calc_fb_hourglass_force_for_elems_scalar(
        d, &determ, &x8n, &y8n, &z8n, &dvdx, &dvdy, &dvdz, hourg, &mut fx1, &mut fy1, &mut fz1,
        range,
    );

    let mut fx2 = vec![0.0; 8 * n];
    let mut fy2 = vec![0.0; 8 * n];
    let mut fz2 = vec![0.0; 8 * n];
    hourglass::calc_fb_hourglass_force_for_elems_lanes::<W>(
        d, &determ, &x8n, &y8n, &z8n, &dvdx, &dvdy, &dvdz, hourg, &mut fx2, &mut fy2, &mut fz2,
        range,
    );

    assert_bits_eq(&fx1, &fx2, &format!("hg fx_elem w{W}"));
    assert_bits_eq(&fy1, &fy2, &format!("hg fy_elem w{W}"));
    assert_bits_eq(&fz1, &fz2, &format!("hg fz_elem w{W}"));
}

#[test]
fn hourglass_every_width_matches_scalar_bitwise() {
    let d = seeded_domain();
    let full = Chunk {
        begin: 0,
        end: d.num_elem(),
    };
    let off = Chunk {
        begin: 4,
        end: d.num_elem() - 2,
    };
    for range in [full, off] {
        hourglass_lanes_case::<2>(&d, range);
        hourglass_lanes_case::<4>(&d, range);
        hourglass_lanes_case::<8>(&d, range);
    }
}

// ----------------------------------------------------------------- monoq --

/// Run kinematics so `vnew`/`vdov` and the positions reflect the seeded
/// velocity field.
fn prep_kinematics(d: &Domain) {
    let full = Chunk {
        begin: 0,
        end: d.num_elem(),
    };
    kinematics::calc_kinematics_for_elems(d, 0.0, full);
    kinematics::calc_lagrange_elements_finish(d, full).unwrap();
}

fn grad_outputs(d: &Domain) -> Vec<Real> {
    (0..d.num_elem())
        .flat_map(|i| {
            [
                d.delx_xi(i),
                d.delx_eta(i),
                d.delx_zeta(i),
                d.delv_xi(i),
                d.delv_eta(i),
                d.delv_zeta(i),
            ]
        })
        .collect()
}

#[test]
fn monoq_gradients_every_width_matches_scalar_bitwise() {
    let d = seeded_domain();
    prep_kinematics(&d);
    let full = Chunk {
        begin: 0,
        end: d.num_elem(),
    };
    let off = Chunk {
        begin: 3,
        end: d.num_elem(),
    };
    for range in [full, off] {
        monoq::calc_monotonic_q_gradients_for_elems_scalar(&d, range);
        let reference = grad_outputs(&d);
        monoq::calc_monotonic_q_gradients_for_elems_lanes::<2>(&d, range);
        assert_bits_eq(&grad_outputs(&d), &reference, "monoq grad w2");
        monoq::calc_monotonic_q_gradients_for_elems_lanes::<4>(&d, range);
        assert_bits_eq(&grad_outputs(&d), &reference, "monoq grad w4");
        monoq::calc_monotonic_q_gradients_for_elems_lanes::<8>(&d, range);
        assert_bits_eq(&grad_outputs(&d), &reference, "monoq grad w8");
    }
}

#[test]
fn monoq_region_every_width_matches_scalar_bitwise() {
    let d = seeded_domain();
    prep_kinematics(&d);
    let full = Chunk {
        begin: 0,
        end: d.num_elem(),
    };
    monoq::calc_monotonic_q_gradients_for_elems_scalar(&d, full);
    let p = Params::default();
    let qq_ql =
        |d: &Domain| -> Vec<Real> { (0..d.num_elem()).flat_map(|i| [d.qq(i), d.ql(i)]).collect() };
    for r in 0..d.num_reg() {
        let elems = &d.regions.reg_elem_list[r];
        monoq::calc_monotonic_q_region_for_elems_scalar(&d, elems, &p);
        let reference = qq_ql(&d);
        monoq::calc_monotonic_q_region_for_elems_lanes::<2>(&d, elems, &p);
        assert_bits_eq(&qq_ql(&d), &reference, "monoq region w2");
        monoq::calc_monotonic_q_region_for_elems_lanes::<4>(&d, elems, &p);
        assert_bits_eq(&qq_ql(&d), &reference, "monoq region w4");
        monoq::calc_monotonic_q_region_for_elems_lanes::<8>(&d, elems, &p);
        assert_bits_eq(&qq_ql(&d), &reference, "monoq region w8");
    }
}

// ------------------------------------------------------------------- eos --

/// EOS state designed to hit every branch: mixed-sign `delv` (the `q = 0`
/// expansion path), tiny and negative energies (`e_cut`/`emin`), and small
/// q terms (`q_cut`).
fn seed_eos_state(d: &Domain) {
    for e in 0..d.num_elem() {
        d.set_e(e, (e as Real * 0.37).sin() * 2.0);
        d.set_vnew(e, 0.6 + 0.5 * (e as Real * 0.17).cos().abs());
        d.set_delv(e, 0.2 * (e as Real * 0.53).sin());
        d.set_ql(e, (e as Real * 0.19).sin().abs() * 0.05);
        d.set_qq(e, (e as Real * 0.23).cos().abs() * 0.05);
    }
    d.set_e(1, 0.0); // exact zero: p_cut/e_cut paths
    d.set_e(2, -2.0e15); // emin floor
    d.set_delv(3, 0.0); // boundary of the delv > 0 branch
}

fn eos_outputs(d: &Domain) -> Vec<Real> {
    (0..d.num_elem())
        .flat_map(|i| [d.p(i), d.e(i), d.q(i), d.ss(i)])
        .collect()
}

fn eos_lanes_case<const W: usize>(rep: usize) {
    let d1 = seeded_domain();
    let d2 = seeded_domain();
    seed_eos_state(&d1);
    seed_eos_state(&d2);
    let p = Params::default();
    let vnewc: Vec<Real> = (0..d1.num_elem()).map(|e| d1.vnew(e)).collect();

    for r in 0..d1.num_reg() {
        let elems = &d1.regions.reg_elem_list[r];
        let mut s = eos::EosScratch::new(elems.len());
        eos::eval_eos_for_elems_scalar(&d1, &vnewc, elems, rep, &p, &mut s);
        eos::eval_eos_for_elems_lanes::<W>(&d2, &vnewc, elems, rep, &p);
    }
    assert_bits_eq(&eos_outputs(&d2), &eos_outputs(&d1), &format!("eos w{W}"));
}

#[test]
fn eos_every_width_matches_scalar_bitwise() {
    eos_lanes_case::<2>(1);
    eos_lanes_case::<4>(1);
    eos_lanes_case::<8>(1);
    // The rep loop re-runs the whole pipeline; results must not depend on it.
    eos_lanes_case::<4>(3);
}

// -------------------------------------------------------------- dispatch --

#[test]
fn entry_points_dispatch_on_global_width() {
    let d = seeded_domain();
    let n = d.num_elem();
    let range = Chunk { begin: 0, end: n };
    let mut sx = vec![0.0; n];
    let mut sy = vec![0.0; n];
    let mut sz = vec![0.0; n];
    stress::init_stress_terms_for_elems(&d, &mut sx, &mut sy, &mut sz, range);

    let mut det1 = vec![0.0; n];
    let mut fx1 = vec![0.0; 8 * n];
    let mut fy1 = vec![0.0; 8 * n];
    let mut fz1 = vec![0.0; 8 * n];
    stress::integrate_stress_for_elems_scalar(
        &d, &sx, &sy, &sz, &mut det1, &mut fx1, &mut fy1, &mut fz1, range,
    );

    let prior = simd::active();
    for w in LaneWidth::ALL {
        simd::set_active(w);
        let mut det2 = vec![0.0; n];
        let mut fx2 = vec![0.0; 8 * n];
        let mut fy2 = vec![0.0; 8 * n];
        let mut fz2 = vec![0.0; 8 * n];
        stress::integrate_stress_for_elems(
            &d, &sx, &sy, &sz, &mut det2, &mut fx2, &mut fy2, &mut fz2, range,
        );
        assert_bits_eq(&det1, &det2, &format!("dispatch determ {w}"));
        assert_bits_eq(&fx1, &fx2, &format!("dispatch fx {w}"));
    }
    simd::set_active(prior);
}
