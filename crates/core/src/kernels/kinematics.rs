//! Element kinematics (`CalcKinematicsForElems` and the trailing loop of
//! `CalcLagrangeElements`): new relative volumes, characteristic lengths,
//! and the deviatoric strain rate.

use crate::domain::Domain;
use crate::kernels::shape::{calc_elem_shape_function_derivatives, calc_elem_velocity_gradient};
use crate::kernels::volume::{calc_elem_characteristic_length, calc_elem_volume};
use crate::types::{LuleshError, Real};
use parutil::Chunk;

/// Per element: new relative volume (`vnew`), volume change (`delv`),
/// characteristic length (`arealg`), and principal strain rates
/// (`dxx/dyy/dzz`) evaluated at the half-step geometry.
pub fn calc_kinematics_for_elems(d: &Domain, dt: Real, range: Chunk) {
    let mut b = [[0.0; 8]; 3];
    let mut x_local = [0.0; 8];
    let mut y_local = [0.0; 8];
    let mut z_local = [0.0; 8];
    let mut xd_local = [0.0; 8];
    let mut yd_local = [0.0; 8];
    let mut zd_local = [0.0; 8];

    for k in range.iter() {
        d.collect_domain_nodes_to_elem_nodes(k, &mut x_local, &mut y_local, &mut z_local);

        // Volume calculations.
        let volume = calc_elem_volume(&x_local, &y_local, &z_local);
        let relative_volume = volume / d.volo(k);
        d.set_vnew(k, relative_volume);
        d.set_delv(k, relative_volume - d.v(k));

        // Characteristic length for time increment.
        d.set_arealg(
            k,
            calc_elem_characteristic_length(&x_local, &y_local, &z_local, volume),
        );

        d.collect_elem_velocities(k, &mut xd_local, &mut yd_local, &mut zd_local);

        // Move the geometry half a timestep back.
        let dt2 = 0.5 * dt;
        for j in 0..8 {
            x_local[j] -= dt2 * xd_local[j];
            y_local[j] -= dt2 * yd_local[j];
            z_local[j] -= dt2 * zd_local[j];
        }

        let detj = calc_elem_shape_function_derivatives(&x_local, &y_local, &z_local, &mut b);
        let dvg = calc_elem_velocity_gradient(&xd_local, &yd_local, &zd_local, &b, detj);

        d.set_dxx(k, dvg[0]);
        d.set_dyy(k, dvg[1]);
        d.set_dzz(k, dvg[2]);
    }
}

/// Trailing loop of `CalcLagrangeElements`: `vdov` and the deviatoric
/// strain-rate adjustment; detects non-positive new volumes.
pub fn calc_lagrange_elements_finish(d: &Domain, range: Chunk) -> Result<(), LuleshError> {
    let mut failed = false;
    for k in range.iter() {
        // Calc strain rate and apply as constraint (only done in FB element).
        let vdov = d.dxx(k) + d.dyy(k) + d.dzz(k);
        let vdovthird = vdov / 3.0;

        // Make the rate of deformation tensor deviatoric.
        d.set_vdov(k, vdov);
        d.set_dxx(k, d.dxx(k) - vdovthird);
        d.set_dyy(k, d.dyy(k) - vdovthird);
        d.set_dzz(k, d.dzz(k) - vdovthird);

        failed |= d.vnew(k) <= 0.0;
    }
    if failed {
        Err(LuleshError::VolumeError)
    } else {
        Ok(())
    }
}

/// `UpdateVolumesForElems`: commit the new relative volumes, snapping values
/// within `v_cut` of 1 to exactly 1.
pub fn update_volumes_for_elems(d: &Domain, v_cut: Real, range: Chunk) {
    for i in range.iter() {
        let mut tmp_v = d.vnew(i);
        if (tmp_v - 1.0).abs() < v_cut {
            tmp_v = 1.0;
        }
        d.set_v(i, tmp_v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elems(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    #[test]
    fn static_mesh_has_unit_vnew_and_zero_strain() {
        let d = Domain::build(3, 1, 1, 1, 0);
        calc_kinematics_for_elems(&d, 1e-3, elems(&d));
        for k in 0..d.num_elem() {
            assert!((d.vnew(k) - 1.0).abs() < 1e-12);
            assert!(d.delv(k).abs() < 1e-12);
            assert!(d.dxx(k).abs() < 1e-14);
            assert!(d.dyy(k).abs() < 1e-14);
            assert!(d.dzz(k).abs() < 1e-14);
            // Characteristic length of a uniform hex = its edge length.
            let h = crate::params::MESH_EXTENT / 3.0;
            assert!((d.arealg(k) - h).abs() < 1e-12, "arealg = {}", d.arealg(k));
        }
        calc_lagrange_elements_finish(&d, elems(&d)).unwrap();
        for k in 0..d.num_elem() {
            assert!(d.vdov(k).abs() < 1e-14);
        }
    }

    #[test]
    fn uniform_expansion_strain_rates() {
        // v = c·(x,y,z): divergence is 3c, principal strains c each,
        // deviatoric part zero.
        let d = Domain::build(2, 1, 1, 1, 0);
        let c = 0.1;
        for n in 0..d.num_node() {
            d.set_xd(n, c * d.x(n));
            d.set_yd(n, c * d.y(n));
            d.set_zd(n, c * d.z(n));
        }
        // dt = 0 keeps the evaluation geometry at the current coordinates.
        calc_kinematics_for_elems(&d, 0.0, elems(&d));
        for k in 0..d.num_elem() {
            assert!((d.dxx(k) - c).abs() < 1e-12);
            assert!((d.dyy(k) - c).abs() < 1e-12);
            assert!((d.dzz(k) - c).abs() < 1e-12);
        }
        calc_lagrange_elements_finish(&d, elems(&d)).unwrap();
        for k in 0..d.num_elem() {
            assert!((d.vdov(k) - 3.0 * c).abs() < 1e-12);
            assert!(d.dxx(k).abs() < 1e-12, "deviatoric xx must vanish");
        }
    }

    #[test]
    fn compressed_element_shrinks_vnew() {
        let d = Domain::build(1, 1, 1, 1, 0);
        // Scale all coordinates by 0.5: volume shrinks 8×.
        for n in 0..d.num_node() {
            d.set_x(n, 0.5 * d.x(n));
            d.set_y(n, 0.5 * d.y(n));
            d.set_z(n, 0.5 * d.z(n));
        }
        calc_kinematics_for_elems(&d, 0.0, elems(&d));
        assert!((d.vnew(0) - 0.125).abs() < 1e-12);
        assert!((d.delv(0) + 0.875).abs() < 1e-12);
        assert!(calc_lagrange_elements_finish(&d, elems(&d)).is_ok());
    }

    #[test]
    fn update_volumes_commits_and_snaps() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_vnew(0, 1.0 + 1e-12);
        d.set_vnew(1, 0.5);
        update_volumes_for_elems(&d, 1e-10, elems(&d));
        assert_eq!(d.v(0), 1.0, "within v_cut snaps to exactly 1");
        assert_eq!(d.v(1), 0.5);
    }

    #[test]
    fn inverted_element_detected() {
        let d = Domain::build(1, 1, 1, 1, 0);
        // Collapse the element through zero volume by reflecting the top.
        for n in 0..d.num_node() {
            d.set_z(n, -2.0 * d.z(n));
        }
        calc_kinematics_for_elems(&d, 0.0, elems(&d));
        assert_eq!(
            calc_lagrange_elements_finish(&d, elems(&d)),
            Err(LuleshError::VolumeError)
        );
    }
}
