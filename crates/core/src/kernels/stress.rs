//! Stress-force pipeline: `InitStressTermsForElems`,
//! `IntegrateStressForElems`, and the node-centered force gathers.
//!
//! All element-loop kernels operate on a [`Chunk`] of the element index
//! space plus *local* scratch slices whose length matches the chunk
//! (`sigxx[i - range.begin]`), so the same code serves the serial driver
//! (one chunk covering everything), the OpenMP-style driver (one chunk per
//! thread) and the task driver (one chunk per partition task, scratch
//! task-local per the paper's locality trick T6).
//!
//! Force gathering always follows the reference's *threaded* path: element
//! loops write per-element-corner forces (`fx_elem`), and a node loop sums
//! each node's corners in corner-list order. This makes the floating-point
//! summation order identical across all drivers.

// Indexed loops mirror the reference kernels.
#![allow(clippy::needless_range_loop)]
use crate::domain::Domain;
use crate::kernels::shape::{
    calc_elem_node_normals, calc_elem_shape_function_derivatives, gather_elem_coords,
    gather_elem_coords_lanes, sum_elem_stresses_to_node_forces,
};
use crate::simd::{self, LaneWidth, Lanes, SimdReal};
use crate::types::{Index, LuleshError, Real};
use parutil::Chunk;

/// Approximate per-element working set of the stress integration (gathered
/// coordinates, stresses, determinant and per-corner forces), used to size
/// the cache blocks of the lane-blocked variant.
const STRESS_BYTES_PER_ELEM: usize = 416;

/// Zero the nodal force arrays (`CalcForceForNodes` prologue).
pub fn zero_forces(d: &Domain, range: Chunk) {
    for n in range.iter() {
        d.set_fx(n, 0.0);
        d.set_fy(n, 0.0);
        d.set_fz(n, 0.0);
    }
}

/// `sigxx = sigyy = sigzz = −p − q` for each element of the chunk.
/// Scratch slices are chunk-local: entry `i − range.begin` belongs to
/// element `i`.
pub fn init_stress_terms_for_elems(
    d: &Domain,
    sigxx: &mut [Real],
    sigyy: &mut [Real],
    sigzz: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(sigxx.len(), range.len());
    for i in range.iter() {
        let s = -d.p(i) - d.q(i);
        let k = i - range.begin;
        sigxx[k] = s;
        sigyy[k] = s;
        sigzz[k] = s;
    }
}

/// Integrate the isotropic element stress into per-corner forces
/// (`IntegrateStressForElems`, threaded variant). Writes `determ` (for the
/// volume-error check) and `f*_elem[8·(i − range.begin) + c]`.
///
/// Dispatches on the process-wide SIMD width ([`simd::active`]): the scalar
/// path is the reference, the lane paths are bit-identical by construction
/// (same per-element IEEE operation sequence, no reassociation).
#[allow(clippy::too_many_arguments)]
pub fn integrate_stress_for_elems(
    d: &Domain,
    sigxx: &[Real],
    sigyy: &[Real],
    sigzz: &[Real],
    determ: &mut [Real],
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    match simd::active() {
        LaneWidth::W1 => integrate_stress_for_elems_scalar(
            d, sigxx, sigyy, sigzz, determ, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W2 => integrate_stress_for_elems_lanes::<2>(
            d, sigxx, sigyy, sigzz, determ, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W4 => integrate_stress_for_elems_lanes::<4>(
            d, sigxx, sigyy, sigzz, determ, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W8 => integrate_stress_for_elems_lanes::<8>(
            d, sigxx, sigyy, sigzz, determ, fx_elem, fy_elem, fz_elem, range,
        ),
    }
}

/// Scalar reference implementation of [`integrate_stress_for_elems`].
#[allow(clippy::too_many_arguments)]
pub fn integrate_stress_for_elems_scalar(
    d: &Domain,
    sigxx: &[Real],
    sigyy: &[Real],
    sigzz: &[Real],
    determ: &mut [Real],
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(determ.len(), range.len());
    debug_assert_eq!(fx_elem.len(), 8 * range.len());

    let mut b = [[0.0; 8]; 3];
    let mut x_local = [0.0; 8];
    let mut y_local = [0.0; 8];
    let mut z_local = [0.0; 8];
    let mut fx_local = [0.0; 8];
    let mut fy_local = [0.0; 8];
    let mut fz_local = [0.0; 8];

    for i in range.iter() {
        let k = i - range.begin;
        gather_elem_coords(d, i, &mut x_local, &mut y_local, &mut z_local);

        determ[k] = calc_elem_shape_function_derivatives(&x_local, &y_local, &z_local, &mut b);
        let (b0, b12) = b.split_first_mut().expect("b has 3 rows");
        let (b1, b2) = b12.split_first_mut().expect("b has 3 rows");
        calc_elem_node_normals(b0, b1, &mut b2[0], &x_local, &y_local, &z_local);
        sum_elem_stresses_to_node_forces(
            &b,
            sigxx[k],
            sigyy[k],
            sigzz[k],
            &mut fx_local,
            &mut fy_local,
            &mut fz_local,
        );

        fx_elem[8 * k..8 * k + 8].copy_from_slice(&fx_local);
        fy_elem[8 * k..8 * k + 8].copy_from_slice(&fy_local);
        fz_elem[8 * k..8 * k + 8].copy_from_slice(&fz_local);
    }
}

/// Lane-blocked implementation of [`integrate_stress_for_elems`]: the chunk
/// is walked in cache-sized blocks, each block in groups of `W` elements
/// computed with [`Lanes<W>`]; the ragged tail reuses the same generic body
/// at `W = 1`, which is operation-identical to the scalar reference.
#[allow(clippy::too_many_arguments)]
pub fn integrate_stress_for_elems_lanes<const W: usize>(
    d: &Domain,
    sigxx: &[Real],
    sigyy: &[Real],
    sigzz: &[Real],
    determ: &mut [Real],
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(determ.len(), range.len());
    debug_assert_eq!(fx_elem.len(), 8 * range.len());

    let block = simd::block_len(STRESS_BYTES_PER_ELEM, W);
    let mut lo = range.begin;
    while lo < range.end {
        let hi = (lo + block).min(range.end);
        let mut e = lo;
        while e + W <= hi {
            stress_lane_group::<W>(
                d,
                range.begin,
                e,
                sigxx,
                sigyy,
                sigzz,
                determ,
                fx_elem,
                fy_elem,
                fz_elem,
            );
            e += W;
        }
        while e < hi {
            stress_lane_group::<1>(
                d,
                range.begin,
                e,
                sigxx,
                sigyy,
                sigzz,
                determ,
                fx_elem,
                fy_elem,
                fz_elem,
            );
            e += 1;
        }
        lo = hi;
    }
}

/// One group of `W` consecutive elements starting at `e0` (chunk-local slot
/// `e0 - begin`), computed entirely in lane registers and scattered back.
#[allow(clippy::too_many_arguments)]
fn stress_lane_group<const W: usize>(
    d: &Domain,
    begin: Index,
    e0: Index,
    sigxx: &[Real],
    sigyy: &[Real],
    sigzz: &[Real],
    determ: &mut [Real],
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
) {
    let k0 = e0 - begin;
    let mut xl = [Lanes::<W>::splat(0.0); 8];
    let mut yl = [Lanes::<W>::splat(0.0); 8];
    let mut zl = [Lanes::<W>::splat(0.0); 8];
    gather_elem_coords_lanes(d, e0, &mut xl, &mut yl, &mut zl);

    let mut b = [[Lanes::<W>::splat(0.0); 8]; 3];
    let det = calc_elem_shape_function_derivatives(&xl, &yl, &zl, &mut b);
    let (b0, b12) = b.split_first_mut().expect("b has 3 rows");
    let (b1, b2) = b12.split_first_mut().expect("b has 3 rows");
    calc_elem_node_normals(b0, b1, &mut b2[0], &xl, &yl, &zl);

    let sx = Lanes::<W>::load(sigxx, k0);
    let sy = Lanes::<W>::load(sigyy, k0);
    let sz = Lanes::<W>::load(sigzz, k0);
    let mut fxl = [Lanes::<W>::splat(0.0); 8];
    let mut fyl = [Lanes::<W>::splat(0.0); 8];
    let mut fzl = [Lanes::<W>::splat(0.0); 8];
    sum_elem_stresses_to_node_forces(&b, sx, sy, sz, &mut fxl, &mut fyl, &mut fzl);

    det.store(determ, k0);
    for l in 0..W {
        for c in 0..8 {
            fx_elem[8 * (k0 + l) + c] = fxl[c].0[l];
            fy_elem[8 * (k0 + l) + c] = fyl[c].0[l];
            fz_elem[8 * (k0 + l) + c] = fzl[c].0[l];
        }
    }
}

/// Fail with [`LuleshError::VolumeError`] if any determinant in the slice is
/// non-positive.
pub fn check_volume_error(determ: &[Real]) -> Result<(), LuleshError> {
    if determ.iter().any(|&v| v <= 0.0) {
        Err(LuleshError::VolumeError)
    } else {
        Ok(())
    }
}

/// Gather per-corner stress forces into nodal forces: `f(n) = Σ corners`.
/// `f*_elem` are the full `8·numElem` arrays.
pub fn gather_forces_set(
    d: &Domain,
    fx_elem: &[Real],
    fy_elem: &[Real],
    fz_elem: &[Real],
    node_range: Chunk,
) {
    for n in node_range.iter() {
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut fz = 0.0;
        for &c in d.node_elem_corners(n) {
            fx += fx_elem[c];
            fy += fy_elem[c];
            fz += fz_elem[c];
        }
        d.set_fx(n, fx);
        d.set_fy(n, fy);
        d.set_fz(n, fz);
    }
}

/// Gather per-corner hourglass forces, *adding* to the nodal forces
/// (`CalcFBHourglassForceForElems` epilogue).
pub fn gather_forces_add(
    d: &Domain,
    fx_elem: &[Real],
    fy_elem: &[Real],
    fz_elem: &[Real],
    node_range: Chunk,
) {
    for n in node_range.iter() {
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut fz = 0.0;
        for &c in d.node_elem_corners(n) {
            fx += fx_elem[c];
            fy += fy_elem[c];
            fz += fz_elem[c];
        }
        d.set_fx(n, d.fx(n) + fx);
        d.set_fy(n, d.fy(n) + fy);
        d.set_fz(n, d.fz(n) + fz);
    }
}

/// Combined gather used by the task driver after the parallel stress ∥
/// hourglass chains: `f(n) = Σ stress corners + Σ hourglass corners`.
/// Summation order matches `gather_forces_set` followed by
/// `gather_forces_add` bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn gather_forces_sum2(
    d: &Domain,
    fx_a: &[Real],
    fy_a: &[Real],
    fz_a: &[Real],
    fx_b: &[Real],
    fy_b: &[Real],
    fz_b: &[Real],
    node_range: Chunk,
) {
    for n in node_range.iter() {
        // One walk over the corner list, two independent accumulators per
        // component: each sum's internal order is unchanged, so the result
        // is bit-identical to gather_forces_set followed by
        // gather_forces_add, at half the index-list traffic.
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut fz = 0.0;
        let mut gx = 0.0;
        let mut gy = 0.0;
        let mut gz = 0.0;
        for &c in d.node_elem_corners(n) {
            fx += fx_a[c];
            fy += fy_a[c];
            fz += fz_a[c];
            gx += fx_b[c];
            gy += fy_b[c];
            gz += fz_b[c];
        }
        d.set_fx(n, fx + gx);
        d.set_fy(n, fy + gy);
        d.set_fz(n, fz + gz);
    }
}

/// Local per-corner index of element `e`'s corner `c` within chunk-local
/// `f*_elem` storage for `range`.
#[inline]
pub fn corner_slot(range: Chunk, e: Index, c: usize) -> usize {
    8 * (e - range.begin) + c
}

#[cfg(test)]
mod tests {
    use super::*;
    use parutil::Chunk;

    fn full(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    #[test]
    fn init_stress_is_negative_p_plus_q() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_p(3, 2.0);
        d.set_q(3, 0.5);
        let n = d.num_elem();
        let mut sx = vec![0.0; n];
        let mut sy = vec![0.0; n];
        let mut sz = vec![0.0; n];
        init_stress_terms_for_elems(&d, &mut sx, &mut sy, &mut sz, full(&d));
        assert_eq!(sx[3], -2.5);
        assert_eq!(sy[3], -2.5);
        assert_eq!(sz[3], -2.5);
        assert_eq!(sx[0], 0.0);
    }

    #[test]
    fn integrate_stress_zero_stress_gives_zero_forces() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        let sx = vec![0.0; n];
        let mut determ = vec![0.0; n];
        let mut fx = vec![1.0; 8 * n];
        let mut fy = vec![1.0; 8 * n];
        let mut fz = vec![1.0; 8 * n];
        integrate_stress_for_elems(
            &d,
            &sx,
            &sx,
            &sx,
            &mut determ,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        assert!(fx.iter().all(|&f| f == 0.0));
        // Volumes must equal the initial hex volumes.
        for e in 0..n {
            assert!((determ[e] - d.volo(e)).abs() < 1e-12);
        }
        assert!(check_volume_error(&determ).is_ok());
    }

    #[test]
    fn uniform_pressure_forces_cancel_on_interior_nodes() {
        let d = Domain::build(4, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_p(e, 1.0);
        }
        let mut sx = vec![0.0; n];
        let mut sy = vec![0.0; n];
        let mut sz = vec![0.0; n];
        init_stress_terms_for_elems(&d, &mut sx, &mut sy, &mut sz, full(&d));
        let mut determ = vec![0.0; n];
        let mut fx = vec![0.0; 8 * n];
        let mut fy = vec![0.0; 8 * n];
        let mut fz = vec![0.0; 8 * n];
        integrate_stress_for_elems(
            &d,
            &sx,
            &sy,
            &sz,
            &mut determ,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        gather_forces_set(
            &d,
            &fx,
            &fy,
            &fz,
            Chunk {
                begin: 0,
                end: d.num_node(),
            },
        );
        // A strictly interior node is surrounded by 8 identical elements
        // under uniform pressure: its net force must vanish.
        let en = 5;
        let interior = 2 * en * en + 2 * en + 2;
        assert!(d.fx(interior).abs() < 1e-12);
        assert!(d.fy(interior).abs() < 1e-12);
        assert!(d.fz(interior).abs() < 1e-12);
        // A surface node feels a net inward/outward force.
        assert!(d.fx(0).abs() + d.fy(0).abs() + d.fz(0).abs() > 1e-6);
    }

    #[test]
    fn chunked_execution_matches_single_chunk() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_p(e, (e % 5) as Real * 0.1);
            d.set_q(e, (e % 3) as Real * 0.01);
        }
        // Single chunk.
        let mut sx = vec![0.0; n];
        let mut sy = vec![0.0; n];
        let mut sz = vec![0.0; n];
        init_stress_terms_for_elems(&d, &mut sx, &mut sy, &mut sz, full(&d));
        let mut determ1 = vec![0.0; n];
        let mut fx1 = vec![0.0; 8 * n];
        let mut fy1 = vec![0.0; 8 * n];
        let mut fz1 = vec![0.0; 8 * n];
        integrate_stress_for_elems(
            &d,
            &sx,
            &sy,
            &sz,
            &mut determ1,
            &mut fx1,
            &mut fy1,
            &mut fz1,
            full(&d),
        );
        // Chunked with local scratch, partition size 7.
        let mut fx2 = vec![0.0; 8 * n];
        let mut fy2 = vec![0.0; 8 * n];
        let mut fz2 = vec![0.0; 8 * n];
        let mut determ2 = vec![0.0; n];
        for range in parutil::chunks_of(n, 7) {
            let len = range.len();
            let mut lsx = vec![0.0; len];
            let mut lsy = vec![0.0; len];
            let mut lsz = vec![0.0; len];
            init_stress_terms_for_elems(&d, &mut lsx, &mut lsy, &mut lsz, range);
            integrate_stress_for_elems(
                &d,
                &lsx,
                &lsy,
                &lsz,
                &mut determ2[range.begin..range.end],
                &mut fx2[8 * range.begin..8 * range.end],
                &mut fy2[8 * range.begin..8 * range.end],
                &mut fz2[8 * range.begin..8 * range.end],
                range,
            );
        }
        assert_eq!(fx1, fx2);
        assert_eq!(fy1, fy2);
        assert_eq!(fz1, fz2);
        assert_eq!(determ1, determ2);
    }

    #[test]
    fn sum2_matches_set_then_add() {
        let d = Domain::build(2, 1, 1, 1, 0);
        let n = d.num_elem();
        let a: Vec<Real> = (0..8 * n).map(|i| (i as Real).sin()).collect();
        let b: Vec<Real> = (0..8 * n).map(|i| (i as Real).cos()).collect();
        let nodes = Chunk {
            begin: 0,
            end: d.num_node(),
        };
        gather_forces_set(&d, &a, &a, &a, nodes);
        gather_forces_add(&d, &b, &b, &b, nodes);
        let expect: Vec<Real> = (0..d.num_node()).map(|nn| d.fx(nn)).collect();
        gather_forces_sum2(&d, &a, &a, &a, &b, &b, &b, nodes);
        for (nn, &e) in expect.iter().enumerate() {
            assert_eq!(d.fx(nn), e, "node {nn}");
        }
    }

    #[test]
    fn volume_error_detection() {
        assert!(check_volume_error(&[1.0, 0.5]).is_ok());
        assert_eq!(
            check_volume_error(&[1.0, 0.0]),
            Err(LuleshError::VolumeError)
        );
        assert_eq!(check_volume_error(&[-1.0]), Err(LuleshError::VolumeError));
    }
}
