//! Equation of state (`ApplyMaterialPropertiesForElems`, `EvalEOSForElems`,
//! `CalcPressureForElems`, `CalcEnergyForElems`, `CalcSoundSpeedForElems`).
//!
//! This is the region-wise part of the algorithm: it runs once per region,
//! `rep` times (the material-cost model, see [`crate::regions`]), over the
//! region's element list. All scratch arrays are region-length and indexed
//! locally (`0..elems.len()`); `vnewc` is the only mesh-length array and is
//! indexed through `elems`.
//!
//! Each step of `CalcEnergyForElems` is exposed as its own function so the
//! OpenMP-style driver can mirror the reference's one-parallel-loop-per-step
//! structure, while the serial and task drivers call the composed
//! [`calc_energy_for_elems`] / [`eval_eos_for_elems`] on whole sublists.

use crate::domain::Domain;
use crate::params::Params;
use crate::simd::{self, LaneWidth, Lanes, SimdReal};
use crate::types::{Index, LuleshError, Real};
use parutil::{AlignedBuf, Chunk};

/// Approximate per-element working set of the fused EOS lane path (seven
/// gathered inputs, `vnewc`, four stores), used for cache blocking.
const EOS_BYTES_PER_ELEM: usize = 96;

/// Region-length scratch for one EOS evaluation. Reusable across regions
/// (`resize` keeps capacity).
#[derive(Debug, Default, Clone)]
pub struct EosScratch {
    /// Gathered old energies.
    pub e_old: AlignedBuf<Real>,
    /// Gathered volume deltas.
    pub delvc: AlignedBuf<Real>,
    /// Gathered old pressures.
    pub p_old: AlignedBuf<Real>,
    /// Gathered old viscosities.
    pub q_old: AlignedBuf<Real>,
    /// Gathered quadratic q terms.
    pub qq_old: AlignedBuf<Real>,
    /// Gathered linear q terms.
    pub ql_old: AlignedBuf<Real>,
    /// Full-step compression.
    pub compression: AlignedBuf<Real>,
    /// Half-step compression.
    pub comp_half_step: AlignedBuf<Real>,
    /// External work (always zero in LULESH).
    pub work: AlignedBuf<Real>,
    /// New pressure.
    pub p_new: AlignedBuf<Real>,
    /// New energy.
    pub e_new: AlignedBuf<Real>,
    /// New viscosity.
    pub q_new: AlignedBuf<Real>,
    /// Bulk viscosity coefficient.
    pub bvc: AlignedBuf<Real>,
    /// Pressure derivative coefficient.
    pub pbvc: AlignedBuf<Real>,
    /// Half-step pressure.
    pub p_half_step: AlignedBuf<Real>,
}

impl EosScratch {
    /// Fresh scratch sized for `len` elements.
    pub fn new(len: usize) -> Self {
        let mut s = Self::default();
        s.resize(len);
        s
    }

    /// Resize every array to `len` (existing prefix kept, growth zeroed;
    /// every consumer fully rewrites each array before reading it).
    pub fn resize(&mut self, len: usize) {
        for v in [
            &mut self.e_old,
            &mut self.delvc,
            &mut self.p_old,
            &mut self.q_old,
            &mut self.qq_old,
            &mut self.ql_old,
            &mut self.compression,
            &mut self.comp_half_step,
            &mut self.work,
            &mut self.p_new,
            &mut self.e_new,
            &mut self.q_new,
            &mut self.bvc,
            &mut self.pbvc,
            &mut self.p_half_step,
        ] {
            v.resize_zeroed(len);
        }
    }

    /// Restore the exact state of a fresh [`new(len)`](Self::new): every
    /// array `len` zeros. Lets a pooled scratch be reused across tasks
    /// with bit-identical results to per-task allocation, without
    /// releasing its capacity (no allocation once warmed up).
    pub fn reset(&mut self, len: usize) {
        for v in [
            &mut self.e_old,
            &mut self.delvc,
            &mut self.p_old,
            &mut self.q_old,
            &mut self.qq_old,
            &mut self.ql_old,
            &mut self.compression,
            &mut self.comp_half_step,
            &mut self.work,
            &mut self.p_new,
            &mut self.e_new,
            &mut self.q_new,
            &mut self.bvc,
            &mut self.pbvc,
            &mut self.p_half_step,
        ] {
            v.reset_zeroed(len);
        }
    }
}

/// Clamp the new relative volumes into `[eosvmin, eosvmax]` into the
/// mesh-length `vnewc` array (prologue of `ApplyMaterialPropertiesForElems`;
/// dense over the element chunk, output chunk-local).
pub fn fill_vnewc_clamped(
    d: &Domain,
    vnewc: &mut [Real],
    eosvmin: Real,
    eosvmax: Real,
    range: Chunk,
) {
    debug_assert_eq!(vnewc.len(), range.len());
    for i in range.iter() {
        let mut vc = d.vnew(i);
        if eosvmin != 0.0 && vc < eosvmin {
            vc = eosvmin;
        }
        if eosvmax != 0.0 && vc > eosvmax {
            vc = eosvmax;
        }
        vnewc[i - range.begin] = vc;
    }
}

/// Sanity check on the *old* volumes (abort-on-negative in the reference).
pub fn check_eos_volume_bounds(
    d: &Domain,
    eosvmin: Real,
    eosvmax: Real,
    range: Chunk,
) -> Result<(), LuleshError> {
    for i in range.iter() {
        let mut vc = d.v(i);
        if eosvmin != 0.0 && vc < eosvmin {
            vc = eosvmin;
        }
        if eosvmax != 0.0 && vc > eosvmax {
            vc = eosvmax;
        }
        if vc <= 0.0 {
            return Err(LuleshError::VolumeError);
        }
    }
    Ok(())
}

/// Gather element state into region-local arrays (one `rep` iteration's
/// prologue of `EvalEOSForElems`).
#[allow(clippy::too_many_arguments)]
pub fn eos_gather(
    d: &Domain,
    elems: &[Index],
    e_old: &mut [Real],
    delvc: &mut [Real],
    p_old: &mut [Real],
    q_old: &mut [Real],
    qq_old: &mut [Real],
    ql_old: &mut [Real],
) {
    for (i, &z) in elems.iter().enumerate() {
        e_old[i] = d.e(z);
        delvc[i] = d.delv(z);
        p_old[i] = d.p(z);
        q_old[i] = d.q(z);
        qq_old[i] = d.qq(z);
        ql_old[i] = d.ql(z);
    }
}

/// Full- and half-step compressions from the clamped new volumes.
pub fn eos_compression(
    elems: &[Index],
    vnewc: &[Real],
    delvc: &[Real],
    compression: &mut [Real],
    comp_half_step: &mut [Real],
) {
    for (i, &z) in elems.iter().enumerate() {
        compression[i] = 1.0 / vnewc[z] - 1.0;
        let vchalf = vnewc[z] - delvc[i] * 0.5;
        comp_half_step[i] = 1.0 / vchalf - 1.0;
    }
}

/// Apply the `eosvmin`/`eosvmax` special cases to the compressions.
#[allow(clippy::too_many_arguments)]
pub fn eos_clamp_compression(
    elems: &[Index],
    vnewc: &[Real],
    eosvmin: Real,
    eosvmax: Real,
    compression: &mut [Real],
    comp_half_step: &mut [Real],
    p_old: &mut [Real],
) {
    if eosvmin != 0.0 {
        for (i, &z) in elems.iter().enumerate() {
            if vnewc[z] <= eosvmin {
                // impossible due to calling func?
                comp_half_step[i] = compression[i];
            }
        }
    }
    if eosvmax != 0.0 {
        for (i, &z) in elems.iter().enumerate() {
            if vnewc[z] >= eosvmax {
                // impossible due to calling func?
                p_old[i] = 0.0;
                compression[i] = 0.0;
                comp_half_step[i] = 0.0;
            }
        }
    }
}

/// Ideal-gas pressure (`CalcPressureForElems`): two loops like the
/// reference.
#[allow(clippy::too_many_arguments)]
pub fn calc_pressure_for_elems(
    p_new: &mut [Real],
    bvc: &mut [Real],
    pbvc: &mut [Real],
    e_old: &[Real],
    compression: &[Real],
    vnewc: &[Real],
    elems: &[Index],
    pmin: Real,
    p_cut: Real,
    eosvmax: Real,
) {
    const C1S: Real = 2.0 / 3.0;
    for i in 0..elems.len() {
        bvc[i] = C1S * (compression[i] + 1.0);
        pbvc[i] = C1S;
    }
    for (i, &z) in elems.iter().enumerate() {
        p_new[i] = bvc[i] * e_old[i];

        if p_new[i].abs() < p_cut {
            p_new[i] = 0.0;
        }
        if vnewc[z] >= eosvmax {
            // impossible condition here?
            p_new[i] = 0.0;
        }
        if p_new[i] < pmin {
            p_new[i] = pmin;
        }
    }
}

const SSC_LOW: Real = 0.1111111e-36;
const SSC_FLOOR: Real = 0.3333333e-18;

/// Step 1 of `CalcEnergyForElems`: provisional half-step energy.
pub fn energy_step1(
    e_new: &mut [Real],
    e_old: &[Real],
    delvc: &[Real],
    p_old: &[Real],
    q_old: &[Real],
    work: &[Real],
    emin: Real,
) {
    for i in 0..e_new.len() {
        e_new[i] = e_old[i] - 0.5 * delvc[i] * (p_old[i] + q_old[i]) + 0.5 * work[i];
        if e_new[i] < emin {
            e_new[i] = emin;
        }
    }
}

/// Step 2: half-step viscosity and the predictor energy update.
#[allow(clippy::too_many_arguments)]
pub fn energy_step2(
    e_new: &mut [Real],
    q_new: &mut [Real],
    comp_half_step: &[Real],
    p_half_step: &[Real],
    bvc: &[Real],
    pbvc: &[Real],
    delvc: &[Real],
    p_old: &[Real],
    q_old: &[Real],
    ql_old: &[Real],
    qq_old: &[Real],
    rho0: Real,
) {
    for i in 0..e_new.len() {
        let vhalf = 1.0 / (1.0 + comp_half_step[i]);

        if delvc[i] > 0.0 {
            q_new[i] = 0.0; // = qq_old[i] = ql_old[i] ...
        } else {
            let mut ssc = (pbvc[i] * e_new[i] + vhalf * vhalf * bvc[i] * p_half_step[i]) / rho0;
            ssc = if ssc <= SSC_LOW {
                SSC_FLOOR
            } else {
                ssc.sqrt()
            };
            q_new[i] = ssc * ql_old[i] + qq_old[i];
        }

        e_new[i] +=
            0.5 * delvc[i] * (3.0 * (p_old[i] + q_old[i]) - 4.0 * (p_half_step[i] + q_new[i]));
    }
}

/// Step 3: add the external work and apply the energy cut-offs.
pub fn energy_step3(e_new: &mut [Real], work: &[Real], e_cut: Real, emin: Real) {
    for i in 0..e_new.len() {
        e_new[i] += 0.5 * work[i];
        if e_new[i].abs() < e_cut {
            e_new[i] = 0.0;
        }
        if e_new[i] < emin {
            e_new[i] = emin;
        }
    }
}

/// Step 4: corrector energy update using the full-step pressure.
#[allow(clippy::too_many_arguments)]
pub fn energy_step4(
    e_new: &mut [Real],
    delvc: &[Real],
    p_old: &[Real],
    q_old: &[Real],
    p_half_step: &[Real],
    q_new: &[Real],
    p_new: &[Real],
    bvc: &[Real],
    pbvc: &[Real],
    ql_old: &[Real],
    qq_old: &[Real],
    vnewc: &[Real],
    elems: &[Index],
    rho0: Real,
    e_cut: Real,
    emin: Real,
) {
    const SIXTH: Real = 1.0 / 6.0;
    for (i, &z) in elems.iter().enumerate() {
        let q_tilde = if delvc[i] > 0.0 {
            0.0
        } else {
            let mut ssc = (pbvc[i] * e_new[i] + vnewc[z] * vnewc[z] * bvc[i] * p_new[i]) / rho0;
            ssc = if ssc <= SSC_LOW {
                SSC_FLOOR
            } else {
                ssc.sqrt()
            };
            ssc * ql_old[i] + qq_old[i]
        };

        e_new[i] -= (7.0 * (p_old[i] + q_old[i]) - 8.0 * (p_half_step[i] + q_new[i])
            + (p_new[i] + q_tilde))
            * delvc[i]
            * SIXTH;

        if e_new[i].abs() < e_cut {
            e_new[i] = 0.0;
        }
        if e_new[i] < emin {
            e_new[i] = emin;
        }
    }
}

/// Step 5: final viscosity from the corrected state.
#[allow(clippy::too_many_arguments)]
pub fn energy_step5(
    q_new: &mut [Real],
    delvc: &[Real],
    pbvc: &[Real],
    e_new: &[Real],
    vnewc: &[Real],
    elems: &[Index],
    bvc: &[Real],
    p_new: &[Real],
    ql_old: &[Real],
    qq_old: &[Real],
    rho0: Real,
    q_cut: Real,
) {
    for (i, &z) in elems.iter().enumerate() {
        if delvc[i] <= 0.0 {
            let mut ssc = (pbvc[i] * e_new[i] + vnewc[z] * vnewc[z] * bvc[i] * p_new[i]) / rho0;
            ssc = if ssc <= SSC_LOW {
                SSC_FLOOR
            } else {
                ssc.sqrt()
            };
            q_new[i] = ssc * ql_old[i] + qq_old[i];
            if q_new[i].abs() < q_cut {
                q_new[i] = 0.0;
            }
        }
    }
}

/// The composed `CalcEnergyForElems` (steps and pressure evaluations in
/// reference order).
pub fn calc_energy_for_elems(
    s: &mut EosScratch,
    vnewc: &[Real],
    elems: &[Index],
    p: &Params,
    rho0: Real,
) {
    energy_step1(
        &mut s.e_new,
        &s.e_old,
        &s.delvc,
        &s.p_old,
        &s.q_old,
        &s.work,
        p.emin,
    );
    calc_pressure_for_elems(
        &mut s.p_half_step,
        &mut s.bvc,
        &mut s.pbvc,
        &s.e_new,
        &s.comp_half_step,
        vnewc,
        elems,
        p.pmin,
        p.p_cut,
        p.eosvmax,
    );
    energy_step2(
        &mut s.e_new,
        &mut s.q_new,
        &s.comp_half_step,
        &s.p_half_step,
        &s.bvc,
        &s.pbvc,
        &s.delvc,
        &s.p_old,
        &s.q_old,
        &s.ql_old,
        &s.qq_old,
        rho0,
    );
    energy_step3(&mut s.e_new, &s.work, p.e_cut, p.emin);
    calc_pressure_for_elems(
        &mut s.p_new,
        &mut s.bvc,
        &mut s.pbvc,
        &s.e_new,
        &s.compression,
        vnewc,
        elems,
        p.pmin,
        p.p_cut,
        p.eosvmax,
    );
    energy_step4(
        &mut s.e_new,
        &s.delvc,
        &s.p_old,
        &s.q_old,
        &s.p_half_step,
        &s.q_new,
        &s.p_new,
        &s.bvc,
        &s.pbvc,
        &s.ql_old,
        &s.qq_old,
        vnewc,
        elems,
        rho0,
        p.e_cut,
        p.emin,
    );
    calc_pressure_for_elems(
        &mut s.p_new,
        &mut s.bvc,
        &mut s.pbvc,
        &s.e_new,
        &s.compression,
        vnewc,
        elems,
        p.pmin,
        p.p_cut,
        p.eosvmax,
    );
    energy_step5(
        &mut s.q_new,
        &s.delvc,
        &s.pbvc,
        &s.e_new,
        vnewc,
        elems,
        &s.bvc,
        &s.p_new,
        &s.ql_old,
        &s.qq_old,
        rho0,
        p.q_cut,
    );
}

/// Scatter the new state back to the mesh.
pub fn eos_store(d: &Domain, elems: &[Index], p_new: &[Real], e_new: &[Real], q_new: &[Real]) {
    for (i, &z) in elems.iter().enumerate() {
        d.set_p(z, p_new[i]);
        d.set_e(z, e_new[i]);
        d.set_q(z, q_new[i]);
    }
}

/// `CalcSoundSpeedForElems`.
#[allow(clippy::too_many_arguments)]
pub fn calc_sound_speed_for_elems(
    d: &Domain,
    vnewc: &[Real],
    rho0: Real,
    enewc: &[Real],
    pnewc: &[Real],
    pbvc: &[Real],
    bvc: &[Real],
    elems: &[Index],
) {
    for (i, &z) in elems.iter().enumerate() {
        let mut ss_tmp = (pbvc[i] * enewc[i] + vnewc[z] * vnewc[z] * bvc[i] * pnewc[i]) / rho0;
        ss_tmp = if ss_tmp <= SSC_LOW {
            SSC_FLOOR
        } else {
            ss_tmp.sqrt()
        };
        d.set_ss(z, ss_tmp);
    }
}

/// The full `EvalEOSForElems` for one region sublist, including the `rep`
/// repetition loop, ending with the store and sound-speed update.
///
/// Dispatches on the process-wide SIMD width ([`simd::active`]): the lane
/// path fuses the whole per-element pipeline (gather → compression → energy
/// steps → pressure → sound speed) into registers, skipping the scratch
/// arrays entirely, and is bit-identical to the scalar reference.
pub fn eval_eos_for_elems(
    d: &Domain,
    vnewc: &[Real],
    elems: &[Index],
    rep: usize,
    p: &Params,
    s: &mut EosScratch,
) {
    // `rep == 0` performs no energy evaluation in the reference (the store
    // reads whatever the scratch holds); only the scalar path reproduces
    // that, so route the degenerate case there too.
    match simd::active() {
        LaneWidth::W2 if rep > 0 => eval_eos_for_elems_lanes::<2>(d, vnewc, elems, rep, p),
        LaneWidth::W4 if rep > 0 => eval_eos_for_elems_lanes::<4>(d, vnewc, elems, rep, p),
        LaneWidth::W8 if rep > 0 => eval_eos_for_elems_lanes::<8>(d, vnewc, elems, rep, p),
        _ => eval_eos_for_elems_scalar(d, vnewc, elems, rep, p, s),
    }
}

/// Scalar reference implementation of [`eval_eos_for_elems`].
pub fn eval_eos_for_elems_scalar(
    d: &Domain,
    vnewc: &[Real],
    elems: &[Index],
    rep: usize,
    p: &Params,
    s: &mut EosScratch,
) {
    let rho0 = p.refdens;
    s.resize(elems.len());

    // Loop to add load imbalance based on region number.
    for _ in 0..rep {
        // These temporaries will be of different size for each call
        // (due to different sized region element lists).
        eos_gather(
            d,
            elems,
            &mut s.e_old,
            &mut s.delvc,
            &mut s.p_old,
            &mut s.q_old,
            &mut s.qq_old,
            &mut s.ql_old,
        );
        eos_compression(
            elems,
            vnewc,
            &s.delvc,
            &mut s.compression,
            &mut s.comp_half_step,
        );
        eos_clamp_compression(
            elems,
            vnewc,
            p.eosvmin,
            p.eosvmax,
            &mut s.compression,
            &mut s.comp_half_step,
            &mut s.p_old,
        );
        s.work.fill(0.0);
        calc_energy_for_elems(s, vnewc, elems, p, rho0);
    }

    eos_store(d, elems, &s.p_new, &s.e_new, &s.q_new);
    calc_sound_speed_for_elems(d, vnewc, rho0, &s.e_new, &s.p_new, &s.pbvc, &s.bvc, elems);
}

/// `CalcPressureForElems` for one value: returns `(p_new, bvc)`. `pbvc` is
/// the constant `C1S` and is inlined at the call sites.
fn eos_pressure<V: SimdReal>(e: V, compression: V, vz: V, p: &Params) -> (V, V) {
    const C1S: Real = 2.0 / 3.0;
    let bvc = V::splat(C1S) * (compression + V::splat(1.0));
    let mut p_new = bvc * e;
    p_new = p_new.abs().select_lt(V::splat(p.p_cut), V::zero(), p_new);
    // Faithful to the reference: this cut is applied even when
    // eosvmax == 0.0 ("impossible condition here?").
    p_new = vz.select_ge(V::splat(p.eosvmax), V::zero(), p_new);
    p_new = p_new.select_lt(V::splat(p.pmin), V::splat(p.pmin), p_new);
    (p_new, bvc)
}

/// The shared sound-speed pattern `ssc = (pbvc·e + v²·bvc·p)/rho0` with the
/// low-value floor, `pbvc = C1S`. Used by energy steps 2/4/5 and
/// `CalcSoundSpeedForElems` — in the scalar reference these are four
/// textually identical computations.
fn eos_ssc<V: SimdReal>(e: V, v: V, bvc: V, pres: V, rho0: Real) -> V {
    const C1S: Real = 2.0 / 3.0;
    let ssc = (V::splat(C1S) * e + v * v * bvc * pres) / V::splat(rho0);
    // sqrt of a negative untaken lane yields NaN and is discarded.
    ssc.select_le(V::splat(SSC_LOW), V::splat(SSC_FLOOR), ssc.sqrt())
}

/// The fused per-element EOS pipeline: compression, the five energy steps
/// with their three pressure evaluations, and the sound speed — entirely in
/// registers, in the exact operation order of the scalar step functions.
/// Returns `(p_new, e_new, q_new, ss)`.
#[allow(clippy::too_many_arguments)]
pub fn eos_elem_kernel<V: SimdReal>(
    vz: V,
    e_old: V,
    delvc: V,
    p_old_in: V,
    q_old: V,
    qq_old: V,
    ql_old: V,
    p: &Params,
    rho0: Real,
) -> (V, V, V, V) {
    let zero = V::zero();
    let one = V::splat(1.0);
    let half = V::splat(0.5);
    let emin = V::splat(p.emin);
    let e_cut = V::splat(p.e_cut);

    // eos_compression.
    let mut compression = one / vz - one;
    let vchalf = vz - delvc * half;
    let mut comp_half_step = one / vchalf - one;

    // eos_clamp_compression (the eosvmin/eosvmax gates are uniform scalar
    // branches, exactly as in the reference).
    let mut p_old = p_old_in;
    if p.eosvmin != 0.0 {
        comp_half_step = vz.select_le(V::splat(p.eosvmin), compression, comp_half_step);
    }
    if p.eosvmax != 0.0 {
        let vmax = V::splat(p.eosvmax);
        p_old = vz.select_ge(vmax, zero, p_old);
        compression = vz.select_ge(vmax, zero, compression);
        comp_half_step = vz.select_ge(vmax, zero, comp_half_step);
    }

    // work is identically zero in LULESH; keep the `+ 0.5·work` terms so
    // the rounding (−0.0 → +0.0 normalisation) matches the scalar steps.
    let work = zero;

    // energy_step1.
    let mut e_new = e_old - half * delvc * (p_old + q_old) + half * work;
    e_new = e_new.select_lt(emin, emin, e_new);

    // First pressure evaluation (half-step compression).
    let (p_half_step, bvc_h) = eos_pressure(e_new, comp_half_step, vz, p);

    // energy_step2.
    let vhalf = one / (one + comp_half_step);
    let ssc2 = eos_ssc(e_new, vhalf, bvc_h, p_half_step, rho0);
    let mut q_new = delvc.select_gt(zero, zero, ssc2 * ql_old + qq_old);
    e_new = e_new
        + half * delvc * (V::splat(3.0) * (p_old + q_old) - V::splat(4.0) * (p_half_step + q_new));

    // energy_step3.
    e_new = e_new + half * work;
    e_new = e_new.abs().select_lt(e_cut, zero, e_new);
    e_new = e_new.select_lt(emin, emin, e_new);

    // Second pressure evaluation (full compression).
    let (p_new, _bvc_f) = eos_pressure(e_new, compression, vz, p);

    // energy_step4.
    const SIXTH: Real = 1.0 / 6.0;
    let ssc4 = eos_ssc(e_new, vz, _bvc_f, p_new, rho0);
    let q_tilde = delvc.select_gt(zero, zero, ssc4 * ql_old + qq_old);
    e_new = e_new
        - (V::splat(7.0) * (p_old + q_old) - V::splat(8.0) * (p_half_step + q_new)
            + (p_new + q_tilde))
            * delvc
            * V::splat(SIXTH);
    e_new = e_new.abs().select_lt(e_cut, zero, e_new);
    e_new = e_new.select_lt(emin, emin, e_new);

    // Third pressure evaluation (final p_new / bvc).
    let (p_new, bvc_f) = eos_pressure(e_new, compression, vz, p);

    // energy_step5 and CalcSoundSpeedForElems share the same ssc value
    // (identical inputs: the reference computes it twice, textually).
    let ss = eos_ssc(e_new, vz, bvc_f, p_new, rho0);
    let mut q5 = ss * ql_old + qq_old;
    q5 = q5.abs().select_lt(V::splat(p.q_cut), zero, q5);
    q_new = delvc.select_le(zero, q5, q_new);

    (p_new, e_new, q_new, ss)
}

/// Lane-blocked implementation of [`eval_eos_for_elems`] for `rep ≥ 1`:
/// the region list is walked in cache-sized blocks of `W`-lane groups, each
/// group running the fused [`eos_elem_kernel`]; no scratch arrays are
/// touched. The repetition loop stays outermost like the reference (the
/// recomputation is idempotent), and only the final repetition stores.
pub fn eval_eos_for_elems_lanes<const W: usize>(
    d: &Domain,
    vnewc: &[Real],
    elems: &[Index],
    rep: usize,
    p: &Params,
) {
    let rho0 = p.refdens;
    let block = simd::block_len(EOS_BYTES_PER_ELEM, W);
    for r in 0..rep {
        let store = r + 1 == rep;
        let mut lo = 0;
        while lo < elems.len() {
            let hi = (lo + block).min(elems.len());
            let mut i = lo;
            while i + W <= hi {
                eos_lane_group::<W>(d, vnewc, elems, i, p, rho0, store);
                i += W;
            }
            while i < hi {
                eos_lane_group::<1>(d, vnewc, elems, i, p, rho0, store);
                i += 1;
            }
            lo = hi;
        }
    }
}

/// One group of `W` entries of the region element list: gather the seven
/// inputs, run the fused kernel, optionally scatter the four outputs.
fn eos_lane_group<const W: usize>(
    d: &Domain,
    vnewc: &[Real],
    elems: &[Index],
    i0: usize,
    p: &Params,
    rho0: Real,
    store: bool,
) {
    let idx = |l: usize| elems[i0 + l];
    let vz = Lanes::<W>::gather(|l| vnewc[idx(l)]);
    let e_old = Lanes::<W>::gather(|l| d.e(idx(l)));
    let delvc = Lanes::<W>::gather(|l| d.delv(idx(l)));
    let p_old = Lanes::<W>::gather(|l| d.p(idx(l)));
    let q_old = Lanes::<W>::gather(|l| d.q(idx(l)));
    let qq_old = Lanes::<W>::gather(|l| d.qq(idx(l)));
    let ql_old = Lanes::<W>::gather(|l| d.ql(idx(l)));

    let (p_new, e_new, q_new, ss) =
        eos_elem_kernel(vz, e_old, delvc, p_old, q_old, qq_old, ql_old, p, rho0);

    if store {
        for l in 0..W {
            let z = idx(l);
            d.set_p(z, p_new.0[l]);
            d.set_e(z, e_new.0[l]);
            d.set_q(z, q_new.0[l]);
            d.set_ss(z, ss.0[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_params() -> Params {
        Params::default()
    }

    #[test]
    fn pressure_is_two_thirds_energy_density() {
        // Ideal gas γ = 5/3: p = (γ−1)·ρ·e = (2/3)·e/v for unit reference
        // density. With compression = 1/v − 1, bvc = (2/3)/v.
        let elems = [0usize, 1];
        let vnewc = [0.5, 1.0];
        let e = [3.0, 1.5];
        let compression = [1.0 / 0.5 - 1.0, 0.0];
        let mut p_new = [0.0; 2];
        let mut bvc = [0.0; 2];
        let mut pbvc = [0.0; 2];
        calc_pressure_for_elems(
            &mut p_new,
            &mut bvc,
            &mut pbvc,
            &e,
            &compression,
            &vnewc,
            &elems,
            0.0,
            1e-7,
            1e9,
        );
        assert!((p_new[0] - (2.0 / 3.0) * 3.0 / 0.5).abs() < 1e-12);
        assert!((p_new[1] - (2.0 / 3.0) * 1.5).abs() < 1e-12);
        assert_eq!(pbvc[0], 2.0 / 3.0);
    }

    #[test]
    fn pressure_cutoffs() {
        let elems = [0usize, 1, 2];
        let vnewc = [1.0, 2e9, 1.0];
        let e = [1e-9, 5.0, -1.0];
        let compression = [0.0; 3];
        let mut p_new = [0.0; 3];
        let mut bvc = [0.0; 3];
        let mut pbvc = [0.0; 3];
        calc_pressure_for_elems(
            &mut p_new,
            &mut bvc,
            &mut pbvc,
            &e,
            &compression,
            &vnewc,
            &elems,
            0.0,
            1e-7,
            1e9,
        );
        assert_eq!(p_new[0], 0.0, "below p_cut snaps to zero");
        assert_eq!(p_new[1], 0.0, "v >= eosvmax zeroes pressure");
        assert_eq!(p_new[2], 0.0, "pressure floor pmin = 0");
    }

    #[test]
    fn static_element_eos_is_identity() {
        // An element at rest (delv = 0, q = 0) must keep its energy and
        // acquire the ideal-gas pressure for its energy.
        let d = Domain::build(2, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_e(e, 2.0);
            d.set_vnew(e, 1.0);
            d.set_delv(e, 0.0);
        }
        let p = ideal_params();
        let vnewc: Vec<Real> = (0..n).map(|e| d.vnew(e)).collect();
        let elems: Vec<usize> = (0..n).collect();
        let mut s = EosScratch::new(n);
        eval_eos_for_elems(&d, &vnewc, &elems, 1, &p, &mut s);
        for e in 0..n {
            assert!((d.e(e) - 2.0).abs() < 1e-12, "energy must be unchanged");
            assert!((d.p(e) - 4.0 / 3.0).abs() < 1e-12, "p = (2/3)·e at v=1");
            assert_eq!(d.q(e), 0.0);
            assert!(d.ss(e) > 0.0, "sound speed must be positive");
        }
    }

    #[test]
    fn rep_does_not_change_results() {
        // The repetition loop models cost, not physics: results must be
        // identical for any rep.
        let d1 = Domain::build(2, 1, 1, 1, 0);
        let d2 = Domain::build(2, 1, 1, 1, 0);
        let n = d1.num_elem();
        for d in [&d1, &d2] {
            for e in 0..n {
                d.set_e(e, 1.0 + e as Real * 0.1);
                d.set_vnew(e, 0.9);
                d.set_delv(e, -0.1);
                d.set_ql(e, 0.01);
                d.set_qq(e, 0.02);
            }
        }
        let p = ideal_params();
        let vnewc = vec![0.9; n];
        let elems: Vec<usize> = (0..n).collect();
        let mut s = EosScratch::new(n);
        eval_eos_for_elems(&d1, &vnewc, &elems, 1, &p, &mut s);
        eval_eos_for_elems(&d2, &vnewc, &elems, 20, &p, &mut s);
        for e in 0..n {
            assert_eq!(d1.e(e), d2.e(e));
            assert_eq!(d1.p(e), d2.p(e));
            assert_eq!(d1.q(e), d2.q(e));
            assert_eq!(d1.ss(e), d2.ss(e));
        }
    }

    #[test]
    fn compression_heats_the_gas() {
        let d = Domain::build(2, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_e(e, 1.0);
            d.set_p(e, 2.0 / 3.0);
            d.set_vnew(e, 0.8);
            d.set_delv(e, -0.2);
        }
        let p = ideal_params();
        let vnewc = vec![0.8; n];
        let elems: Vec<usize> = (0..n).collect();
        let mut s = EosScratch::new(n);
        eval_eos_for_elems(&d, &vnewc, &elems, 1, &p, &mut s);
        for e in 0..n {
            assert!(
                d.e(e) > 1.0,
                "adiabatic compression must increase energy: {}",
                d.e(e)
            );
            assert!(d.p(e) > 2.0 / 3.0, "pressure must rise");
        }
    }

    #[test]
    fn expansion_cools_the_gas() {
        let d = Domain::build(1, 1, 1, 1, 0);
        d.set_e(0, 1.0);
        d.set_p(0, 2.0 / 3.0);
        d.set_vnew(0, 1.2);
        d.set_delv(0, 0.2);
        let p = ideal_params();
        let vnewc = vec![1.2];
        let elems = vec![0usize];
        let mut s = EosScratch::new(1);
        eval_eos_for_elems(&d, &vnewc, &elems, 1, &p, &mut s);
        assert!(d.e(0) < 1.0, "expansion must decrease energy: {}", d.e(0));
        assert_eq!(d.q(0), 0.0, "expanding element has no viscosity update");
    }

    #[test]
    fn emin_floor_is_respected() {
        let d = Domain::build(1, 1, 1, 1, 0);
        d.set_e(0, -2.0e15);
        d.set_vnew(0, 1.5);
        d.set_delv(0, 0.5);
        let p = ideal_params();
        let vnewc = vec![1.5];
        let elems = vec![0usize];
        let mut s = EosScratch::new(1);
        eval_eos_for_elems(&d, &vnewc, &elems, 1, &p, &mut s);
        assert!(d.e(0) >= p.emin, "energy {} below emin {}", d.e(0), p.emin);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Ideal-gas pressure is non-negative for non-negative energy
            /// (pmin = 0 floors it) and exactly proportional to e at fixed v.
            #[test]
            fn pressure_nonnegative_and_linear_in_energy(
                e in 0.0f64..1e6,
                v in 0.2f64..2.0,
            ) {
                let elems = [0usize];
                let vnewc = [v];
                let compression = [1.0 / v - 1.0];
                let mut p1 = [0.0];
                let mut p2 = [0.0];
                let mut bvc = [0.0];
                let mut pbvc = [0.0];
                calc_pressure_for_elems(
                    &mut p1, &mut bvc, &mut pbvc, &[e], &compression, &vnewc, &elems,
                    0.0, 1e-7, 1e9,
                );
                calc_pressure_for_elems(
                    &mut p2, &mut bvc, &mut pbvc, &[2.0 * e], &compression, &vnewc, &elems,
                    0.0, 1e-7, 1e9,
                );
                prop_assert!(p1[0] >= 0.0);
                prop_assert!(p2[0] >= 2.0 * p1[0] - 1e-9, "{} vs {}", p2[0], p1[0]);
            }

            /// Stronger adiabatic compression never yields less heating.
            #[test]
            fn compression_monotonically_heats(
                e0 in 0.5f64..100.0,
                dv in 0.01f64..0.3,
            ) {
                let p = Params::default();
                let run = |delv: f64| -> Real {
                    let d = Domain::build(1, 1, 1, 1, 0);
                    d.set_e(0, e0);
                    d.set_p(0, 2.0 / 3.0 * e0);
                    d.set_vnew(0, 1.0 - delv);
                    d.set_delv(0, -delv);
                    let vnewc = [1.0 - delv];
                    let mut s = EosScratch::new(1);
                    eval_eos_for_elems(&d, &vnewc, &[0], 1, &p, &mut s);
                    d.e(0)
                };
                let weaker = run(dv * 0.5);
                let stronger = run(dv);
                prop_assert!(stronger >= weaker - 1e-9, "{stronger} < {weaker}");
                prop_assert!(weaker >= e0 - 1e-9, "compression must not cool");
            }

            /// The EOS is deterministic and independent of the `rep`
            /// cost-model repetition for any state.
            #[test]
            fn rep_invariance_random_states(
                e in -10.0f64..1e4,
                v in 0.3f64..1.8,
                delv in -0.3f64..0.3,
                ql in 0.0f64..10.0,
                qq in 0.0f64..10.0,
                rep in 1usize..21,
            ) {
                let p = Params::default();
                let run = |rep: usize| {
                    let d = Domain::build(1, 1, 1, 1, 0);
                    d.set_e(0, e);
                    d.set_vnew(0, v);
                    d.set_delv(0, delv);
                    d.set_ql(0, ql);
                    d.set_qq(0, qq);
                    let vnewc = [v];
                    let mut s = EosScratch::new(1);
                    eval_eos_for_elems(&d, &vnewc, &[0], rep, &p, &mut s);
                    (d.e(0), d.p(0), d.q(0), d.ss(0))
                };
                prop_assert_eq!(run(1), run(rep));
            }

            /// Outputs respect the floors and cut-offs for arbitrary states.
            #[test]
            fn floors_hold_for_random_states(
                e in -1e16f64..1e6,
                v in 0.1f64..3.0,
                delv in -0.5f64..0.5,
            ) {
                let p = Params::default();
                let d = Domain::build(1, 1, 1, 1, 0);
                d.set_e(0, e);
                d.set_vnew(0, v);
                d.set_delv(0, delv);
                let vnewc = [v];
                let mut s = EosScratch::new(1);
                eval_eos_for_elems(&d, &vnewc, &[0], 1, &p, &mut s);
                prop_assert!(d.e(0) >= p.emin);
                prop_assert!(d.p(0) >= p.pmin);
                prop_assert!(d.ss(0) > 0.0);
                prop_assert!(d.e(0).is_finite() && d.p(0).is_finite() && d.q(0).is_finite());
            }
        }
    }

    #[test]
    fn vnewc_clamping_and_bounds_check() {
        let d = Domain::build(2, 1, 1, 1, 0);
        let n = d.num_elem();
        d.set_vnew(0, 1e-12);
        d.set_vnew(1, 1e12);
        d.set_vnew(2, 0.5);
        let mut vnewc = vec![0.0; n];
        let range = Chunk { begin: 0, end: n };
        fill_vnewc_clamped(&d, &mut vnewc, 1e-9, 1e9, range);
        assert_eq!(vnewc[0], 1e-9);
        assert_eq!(vnewc[1], 1e9);
        assert_eq!(vnewc[2], 0.5);
        assert!(check_eos_volume_bounds(&d, 1e-9, 1e9, range).is_ok());
        d.set_v(3, -1.0);
        // eosvmin clamp saves a tiny positive-but-small volume, but a
        // negative volume with eosvmin = 0 must fail.
        assert_eq!(
            check_eos_volume_bounds(&d, 0.0, 1e9, range),
            Err(LuleshError::VolumeError)
        );
    }
}
