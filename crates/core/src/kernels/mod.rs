//! The LULESH physics kernels, one module per pipeline stage.
//!
//! Every kernel operates on an index [`parutil::Chunk`] (dense element/node
//! loops) or an explicit region element sublist, so the same code is driven
//! by the serial reference, the OpenMP-style fork-join port, and the
//! paper's many-task port.

pub mod constraints;
pub mod eos;
pub mod hourglass;
pub mod kinematics;
pub mod monoq;
pub mod nodal;
pub mod shape;
pub mod stress;
pub mod volume;
