//! Element geometry: volumes, face areas, characteristic lengths, and
//! volume derivatives — straight ports of `CalcElemVolume`, `AreaFace`,
//! `CalcElemCharacteristicLength`, `VoluDer` and `CalcElemVolumeDerivative`
//! from the LULESH 2.0 reference.

// Signatures and branch structure mirror `CalcElemVolume`/`VoluDer`/`AreaFace` one-to-one.
#![allow(clippy::too_many_arguments, clippy::if_same_then_else)]
use crate::types::Real;

#[inline]
fn triple_product(
    x1: Real,
    y1: Real,
    z1: Real,
    x2: Real,
    y2: Real,
    z2: Real,
    x3: Real,
    y3: Real,
    z3: Real,
) -> Real {
    x1 * (y2 * z3 - z2 * y3) + x2 * (z1 * y3 - y1 * z3) + x3 * (y1 * z2 - z1 * y2)
}

/// Volume of a hexahedron given its 8 node coordinates in LULESH corner
/// order. Positive for a right-handed, non-degenerate element.
pub fn calc_elem_volume(x: &[Real; 8], y: &[Real; 8], z: &[Real; 8]) -> Real {
    let twelveth: Real = 1.0 / 12.0;

    let dx61 = x[6] - x[1];
    let dy61 = y[6] - y[1];
    let dz61 = z[6] - z[1];

    let dx70 = x[7] - x[0];
    let dy70 = y[7] - y[0];
    let dz70 = z[7] - z[0];

    let dx63 = x[6] - x[3];
    let dy63 = y[6] - y[3];
    let dz63 = z[6] - z[3];

    let dx20 = x[2] - x[0];
    let dy20 = y[2] - y[0];
    let dz20 = z[2] - z[0];

    let dx50 = x[5] - x[0];
    let dy50 = y[5] - y[0];
    let dz50 = z[5] - z[0];

    let dx64 = x[6] - x[4];
    let dy64 = y[6] - y[4];
    let dz64 = z[6] - z[4];

    let dx31 = x[3] - x[1];
    let dy31 = y[3] - y[1];
    let dz31 = z[3] - z[1];

    let dx72 = x[7] - x[2];
    let dy72 = y[7] - y[2];
    let dz72 = z[7] - z[2];

    let dx43 = x[4] - x[3];
    let dy43 = y[4] - y[3];
    let dz43 = z[4] - z[3];

    let dx57 = x[5] - x[7];
    let dy57 = y[5] - y[7];
    let dz57 = z[5] - z[7];

    let dx14 = x[1] - x[4];
    let dy14 = y[1] - y[4];
    let dz14 = z[1] - z[4];

    let dx25 = x[2] - x[5];
    let dy25 = y[2] - y[5];
    let dz25 = z[2] - z[5];

    let volume = triple_product(
        dx31 + dx72,
        dx63,
        dx20,
        dy31 + dy72,
        dy63,
        dy20,
        dz31 + dz72,
        dz63,
        dz20,
    ) + triple_product(
        dx43 + dx57,
        dx64,
        dx70,
        dy43 + dy57,
        dy64,
        dy70,
        dz43 + dz57,
        dz64,
        dz70,
    ) + triple_product(
        dx14 + dx25,
        dx61,
        dx50,
        dy14 + dy25,
        dy61,
        dy50,
        dz14 + dz25,
        dz61,
        dz50,
    );

    volume * twelveth
}

/// The squared-area metric of a quadrilateral face used by the
/// characteristic-length computation (`AreaFace` in the reference).
#[inline]
pub fn area_face(
    x0: Real,
    x1: Real,
    x2: Real,
    x3: Real,
    y0: Real,
    y1: Real,
    y2: Real,
    y3: Real,
    z0: Real,
    z1: Real,
    z2: Real,
    z3: Real,
) -> Real {
    let fx = (x2 - x0) - (x3 - x1);
    let fy = (y2 - y0) - (y3 - y1);
    let fz = (z2 - z0) - (z3 - z1);
    let gx = (x2 - x0) + (x3 - x1);
    let gy = (y2 - y0) + (y3 - y1);
    let gz = (z2 - z0) + (z3 - z1);
    (fx * fx + fy * fy + fz * fz) * (gx * gx + gy * gy + gz * gz)
        - (fx * gx + fy * gy + fz * gz) * (fx * gx + fy * gy + fz * gz)
}

/// Characteristic length of an element: `4·V / √(max face area metric)`.
pub fn calc_elem_characteristic_length(
    x: &[Real; 8],
    y: &[Real; 8],
    z: &[Real; 8],
    volume: Real,
) -> Real {
    let mut char_length: Real = 0.0;

    let mut a = area_face(
        x[0], x[1], x[2], x[3], y[0], y[1], y[2], y[3], z[0], z[1], z[2], z[3],
    );
    char_length = char_length.max(a);

    a = area_face(
        x[4], x[5], x[6], x[7], y[4], y[5], y[6], y[7], z[4], z[5], z[6], z[7],
    );
    char_length = char_length.max(a);

    a = area_face(
        x[0], x[1], x[5], x[4], y[0], y[1], y[5], y[4], z[0], z[1], z[5], z[4],
    );
    char_length = char_length.max(a);

    a = area_face(
        x[1], x[2], x[6], x[5], y[1], y[2], y[6], y[5], z[1], z[2], z[6], z[5],
    );
    char_length = char_length.max(a);

    a = area_face(
        x[2], x[3], x[7], x[6], y[2], y[3], y[7], y[6], z[2], z[3], z[7], z[6],
    );
    char_length = char_length.max(a);

    a = area_face(
        x[3], x[0], x[4], x[7], y[3], y[0], y[4], y[7], z[3], z[0], z[4], z[7],
    );
    char_length = char_length.max(a);

    4.0 * volume / char_length.sqrt()
}

/// Partial derivative of element volume w.r.t. one corner's coordinates
/// (`VoluDer`). The six node arguments are the corner's neighbours in the
/// stencil order the reference uses.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn volu_der(
    x0: Real,
    x1: Real,
    x2: Real,
    x3: Real,
    x4: Real,
    x5: Real,
    y0: Real,
    y1: Real,
    y2: Real,
    y3: Real,
    y4: Real,
    y5: Real,
    z0: Real,
    z1: Real,
    z2: Real,
    z3: Real,
    z4: Real,
    z5: Real,
) -> (Real, Real, Real) {
    let twelfth: Real = 1.0 / 12.0;

    let dvdx = (y1 + y2) * (z0 + z1) - (y0 + y1) * (z1 + z2) + (y0 + y4) * (z3 + z4)
        - (y3 + y4) * (z0 + z4)
        - (y2 + y5) * (z3 + z5)
        + (y3 + y5) * (z2 + z5);
    let dvdy = -((x1 + x2) * (z0 + z1)) + (x0 + x1) * (z1 + z2) - (x0 + x4) * (z3 + z4)
        + (x3 + x4) * (z0 + z4)
        + (x2 + x5) * (z3 + z5)
        - (x3 + x5) * (z2 + z5);
    let dvdz = -((y1 + y2) * (x0 + x1)) + (y0 + y1) * (x1 + x2) - (y0 + y4) * (x3 + x4)
        + (y3 + y4) * (x0 + x4)
        + (y2 + y5) * (x3 + x5)
        - (y3 + y5) * (x2 + x5);

    (dvdx * twelfth, dvdy * twelfth, dvdz * twelfth)
}

/// Volume derivatives at all 8 corners (`CalcElemVolumeDerivative`).
pub fn calc_elem_volume_derivative(
    x: &[Real; 8],
    y: &[Real; 8],
    z: &[Real; 8],
) -> ([Real; 8], [Real; 8], [Real; 8]) {
    let mut dvdx = [0.0; 8];
    let mut dvdy = [0.0; 8];
    let mut dvdz = [0.0; 8];

    // Stencils per corner, copied from the reference call sequence:
    // (corner index, [six neighbour node indices]).
    const STENCIL: [(usize, [usize; 6]); 8] = [
        (0, [1, 2, 3, 4, 5, 7]),
        (3, [0, 1, 2, 7, 4, 6]),
        (2, [3, 0, 1, 6, 7, 5]),
        (1, [2, 3, 0, 5, 6, 4]),
        (4, [7, 6, 5, 0, 3, 1]),
        (5, [4, 7, 6, 1, 0, 2]),
        (6, [5, 4, 7, 2, 1, 3]),
        (7, [6, 5, 4, 3, 2, 0]),
    ];

    for &(c, n) in &STENCIL {
        let (dx, dy, dz) = volu_der(
            x[n[0]], x[n[1]], x[n[2]], x[n[3]], x[n[4]], x[n[5]], y[n[0]], y[n[1]], y[n[2]],
            y[n[3]], y[n[4]], y[n[5]], z[n[0]], z[n[1]], z[n[2]], z[n[3]], z[n[4]], z[n[5]],
        );
        dvdx[c] = dx;
        dvdy[c] = dy;
        dvdz[c] = dz;
    }

    (dvdx, dvdy, dvdz)
}

/// Node coordinates of the unit cube in LULESH corner order.
pub fn unit_cube() -> ([Real; 8], [Real; 8], [Real; 8]) {
    // Corner order: bottom face 0-1-2-3 counter-clockwise, top face 4-5-6-7.
    let x = [0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
    let y = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0];
    let z = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scaled_cube(sx: Real, sy: Real, sz: Real) -> ([Real; 8], [Real; 8], [Real; 8]) {
        let (mut x, mut y, mut z) = unit_cube();
        for i in 0..8 {
            x[i] *= sx;
            y[i] *= sy;
            z[i] *= sz;
        }
        (x, y, z)
    }

    #[test]
    fn unit_cube_volume_is_one() {
        let (x, y, z) = unit_cube();
        assert!((calc_elem_volume(&x, &y, &z) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn box_volume_is_product_of_sides() {
        let (x, y, z) = scaled_cube(2.0, 3.0, 0.5);
        assert!((calc_elem_volume(&x, &y, &z) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unit_cube_characteristic_length() {
        // AreaFace of a unit square evaluates to 16 (it is a scaled area
        // metric, not the area itself), so h = 4·V/√16 = 1 for a unit cube —
        // the edge length, as intended by the reference.
        let (x, y, z) = unit_cube();
        let v = calc_elem_volume(&x, &y, &z);
        let h = calc_elem_characteristic_length(&x, &y, &z, v);
        assert!((h - 1.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn volume_derivative_matches_finite_difference() {
        let (x, y, z) = scaled_cube(1.3, 0.9, 1.1);
        let (dvdx, dvdy, dvdz) = calc_elem_volume_derivative(&x, &y, &z);
        let eps = 1e-6;
        for c in 0..8 {
            let mut xp = x;
            xp[c] += eps;
            let fd = (calc_elem_volume(&xp, &y, &z) - calc_elem_volume(&x, &y, &z)) / eps;
            assert!(
                (dvdx[c] - fd).abs() < 1e-5,
                "corner {c}: {} vs {fd}",
                dvdx[c]
            );

            let mut yp = y;
            yp[c] += eps;
            let fd = (calc_elem_volume(&x, &yp, &z) - calc_elem_volume(&x, &y, &z)) / eps;
            assert!((dvdy[c] - fd).abs() < 1e-5);

            let mut zp = z;
            zp[c] += eps;
            let fd = (calc_elem_volume(&x, &y, &zp) - calc_elem_volume(&x, &y, &z)) / eps;
            assert!((dvdz[c] - fd).abs() < 1e-5);
        }
    }

    proptest! {
        /// Volume is translation invariant.
        #[test]
        fn volume_translation_invariant(
            tx in -10.0f64..10.0, ty in -10.0f64..10.0, tz in -10.0f64..10.0,
            sx in 0.1f64..5.0, sy in 0.1f64..5.0, sz in 0.1f64..5.0,
        ) {
            let (x, y, z) = scaled_cube(sx, sy, sz);
            let v0 = calc_elem_volume(&x, &y, &z);
            let mut xt = x; let mut yt = y; let mut zt = z;
            for i in 0..8 { xt[i] += tx; yt[i] += ty; zt[i] += tz; }
            let v1 = calc_elem_volume(&xt, &yt, &zt);
            prop_assert!((v0 - v1).abs() < 1e-9 * v0.abs().max(1.0));
        }

        /// Volume scales with the cube of a uniform scale factor.
        #[test]
        fn volume_scales_cubically(s in 0.1f64..4.0) {
            let (x, y, z) = unit_cube();
            let mut xs = x; let mut ys = y; let mut zs = z;
            for i in 0..8 { xs[i] *= s; ys[i] *= s; zs[i] *= s; }
            let v = calc_elem_volume(&xs, &ys, &zs);
            prop_assert!((v - s*s*s).abs() < 1e-9 * s*s*s);
        }

        /// Randomly perturbed (but still convex-ish) cubes keep positive
        /// volume and positive characteristic length.
        #[test]
        fn perturbed_cube_positive(seed in proptest::array::uniform24(-0.2f64..0.2)) {
            let (mut x, mut y, mut z) = unit_cube();
            for i in 0..8 {
                x[i] += seed[i];
                y[i] += seed[8 + i];
                z[i] += seed[16 + i];
            }
            let v = calc_elem_volume(&x, &y, &z);
            prop_assert!(v > 0.0);
            let h = calc_elem_characteristic_length(&x, &y, &z, v);
            prop_assert!(h > 0.0);
        }

        /// Sum of volume derivatives over all corners in each direction is
        /// zero for any hexahedron (uniform translation changes no volume).
        #[test]
        fn volume_derivatives_sum_to_zero(seed in proptest::array::uniform24(-0.3f64..0.3)) {
            let (mut x, mut y, mut z) = unit_cube();
            for i in 0..8 {
                x[i] += seed[i];
                y[i] += seed[8 + i];
                z[i] += seed[16 + i];
            }
            let (dvdx, dvdy, dvdz) = calc_elem_volume_derivative(&x, &y, &z);
            prop_assert!(dvdx.iter().sum::<f64>().abs() < 1e-10);
            prop_assert!(dvdy.iter().sum::<f64>().abs() < 1e-10);
            prop_assert!(dvdz.iter().sum::<f64>().abs() < 1e-10);
        }
    }
}
