//! Flanagan-Belytschko hourglass control: `CalcHourglassControlForElems`,
//! `CalcFBHourglassForceForElems` and `CalcElemFBHourglassForce`.
//!
//! Like the stress kernels, these operate on a chunk of the element index
//! space with chunk-local scratch (`dvdx`, `x8n`, `determ`, `f*_elem`), so
//! the task driver can keep all hourglass temporaries task-local (paper
//! trick T6) while the serial driver passes whole-mesh arrays.

// Indexed Γ-matrix loops and wide signatures mirror the reference kernels one-to-one.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![cfg_attr(test, allow(clippy::type_complexity))]
use crate::domain::Domain;
use crate::kernels::shape::{gather_elem_coords, gather_elem_velocities};
use crate::kernels::volume::calc_elem_volume_derivative;
use crate::types::{LuleshError, Real};
use parutil::Chunk;

/// The four hourglass base vectors Γ (`gamma` in the reference).
pub const GAMMA: [[Real; 8]; 4] = [
    [1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0],
    [1.0, -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0],
    [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0],
];

/// First phase of hourglass control: per element, the volume derivatives at
/// the 8 corners, the corner coordinates (for reuse in phase two) and the
/// current absolute volume `determ = volo·v`. Reports a volume error when
/// any relative volume is non-positive.
#[allow(clippy::too_many_arguments)]
pub fn calc_hourglass_control_for_elems(
    d: &Domain,
    dvdx: &mut [Real],
    dvdy: &mut [Real],
    dvdz: &mut [Real],
    x8n: &mut [Real],
    y8n: &mut [Real],
    z8n: &mut [Real],
    determ: &mut [Real],
    range: Chunk,
) -> Result<(), LuleshError> {
    debug_assert_eq!(dvdx.len(), 8 * range.len());
    debug_assert_eq!(determ.len(), range.len());

    let mut x1 = [0.0; 8];
    let mut y1 = [0.0; 8];
    let mut z1 = [0.0; 8];
    let mut failed = false;

    for i in range.iter() {
        let k = i - range.begin;
        gather_elem_coords(d, i, &mut x1, &mut y1, &mut z1);
        let (pfx, pfy, pfz) = calc_elem_volume_derivative(&x1, &y1, &z1);

        let i3 = 8 * k;
        dvdx[i3..i3 + 8].copy_from_slice(&pfx);
        dvdy[i3..i3 + 8].copy_from_slice(&pfy);
        dvdz[i3..i3 + 8].copy_from_slice(&pfz);
        x8n[i3..i3 + 8].copy_from_slice(&x1);
        y8n[i3..i3 + 8].copy_from_slice(&y1);
        z8n[i3..i3 + 8].copy_from_slice(&z1);

        determ[k] = d.volo(i) * d.v(i);
        failed |= d.v(i) <= 0.0;
    }

    if failed {
        Err(LuleshError::VolumeError)
    } else {
        Ok(())
    }
}

/// `CalcElemFBHourglassForce`: project velocities onto the hourglass modes
/// and distribute the restoring force to the corners.
fn calc_elem_fb_hourglass_force(
    xd: &[Real; 8],
    yd: &[Real; 8],
    zd: &[Real; 8],
    hourgam: &[[Real; 4]; 8],
    coefficient: Real,
    hgfx: &mut [Real; 8],
    hgfy: &mut [Real; 8],
    hgfz: &mut [Real; 8],
) {
    let mut hxx = [0.0; 4];
    let mut hyy = [0.0; 4];
    let mut hzz = [0.0; 4];
    for i in 0..4 {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sz = 0.0;
        for j in 0..8 {
            sx += hourgam[j][i] * xd[j];
            sy += hourgam[j][i] * yd[j];
            sz += hourgam[j][i] * zd[j];
        }
        hxx[i] = sx;
        hyy[i] = sy;
        hzz[i] = sz;
    }
    for i in 0..8 {
        hgfx[i] = coefficient
            * (hourgam[i][0] * hxx[0]
                + hourgam[i][1] * hxx[1]
                + hourgam[i][2] * hxx[2]
                + hourgam[i][3] * hxx[3]);
        hgfy[i] = coefficient
            * (hourgam[i][0] * hyy[0]
                + hourgam[i][1] * hyy[1]
                + hourgam[i][2] * hyy[2]
                + hourgam[i][3] * hyy[3]);
        hgfz[i] = coefficient
            * (hourgam[i][0] * hzz[0]
                + hourgam[i][1] * hzz[1]
                + hourgam[i][2] * hzz[2]
                + hourgam[i][3] * hzz[3]);
    }
}

/// Second phase: compute the FB hourglass restoring forces per corner into
/// chunk-local `f*_elem` arrays. `hourg` is the `hgcoef` parameter.
#[allow(clippy::too_many_arguments)]
pub fn calc_fb_hourglass_force_for_elems(
    d: &Domain,
    determ: &[Real],
    x8n: &[Real],
    y8n: &[Real],
    z8n: &[Real],
    dvdx: &[Real],
    dvdy: &[Real],
    dvdz: &[Real],
    hourg: Real,
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(fx_elem.len(), 8 * range.len());

    let mut hourgam = [[0.0; 4]; 8];
    let mut xd1 = [0.0; 8];
    let mut yd1 = [0.0; 8];
    let mut zd1 = [0.0; 8];
    let mut hgfx = [0.0; 8];
    let mut hgfy = [0.0; 8];
    let mut hgfz = [0.0; 8];

    for i2 in range.iter() {
        let k = i2 - range.begin;
        let i3 = 8 * k;
        let volinv = 1.0 / determ[k];

        for i1 in 0..4 {
            let mut hourmodx = 0.0;
            let mut hourmody = 0.0;
            let mut hourmodz = 0.0;
            for j in 0..8 {
                hourmodx += x8n[i3 + j] * GAMMA[i1][j];
                hourmody += y8n[i3 + j] * GAMMA[i1][j];
                hourmodz += z8n[i3 + j] * GAMMA[i1][j];
            }
            for j in 0..8 {
                hourgam[j][i1] = GAMMA[i1][j]
                    - volinv
                        * (dvdx[i3 + j] * hourmodx
                            + dvdy[i3 + j] * hourmody
                            + dvdz[i3 + j] * hourmodz);
            }
        }

        // Compute forces: store forces into h arrays (force arrays).
        let ss1 = d.ss(i2);
        let mass1 = d.elem_mass(i2);
        let volume13 = determ[k].cbrt();
        gather_elem_velocities(d, i2, &mut xd1, &mut yd1, &mut zd1);

        let coefficient = -hourg * 0.01 * ss1 * mass1 / volume13;

        calc_elem_fb_hourglass_force(
            &xd1,
            &yd1,
            &zd1,
            &hourgam,
            coefficient,
            &mut hgfx,
            &mut hgfy,
            &mut hgfz,
        );

        fx_elem[i3..i3 + 8].copy_from_slice(&hgfx);
        fy_elem[i3..i3 + 8].copy_from_slice(&hgfy);
        fz_elem[i3..i3 + 8].copy_from_slice(&hgfz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parutil::Chunk;

    fn full(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    fn scratch(
        n: usize,
    ) -> (
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
    ) {
        (
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; n],
        )
    }

    #[test]
    fn gamma_vectors_are_orthogonal_to_rigid_modes() {
        // Each Γ is orthogonal to the constant vector (translation mode)...
        for g in &GAMMA {
            assert_eq!(g.iter().sum::<Real>(), 0.0);
        }
        // ... and mutually orthogonal.
        for i in 0..4 {
            for j in i + 1..4 {
                let dot: Real = (0..8).map(|k| GAMMA[i][k] * GAMMA[j][k]).sum();
                assert_eq!(dot, 0.0, "Γ{i}·Γ{j}");
            }
        }
    }

    #[test]
    fn control_phase_records_geometry_and_volume() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        for e in 0..n {
            assert!((determ[e] - d.volo(e)).abs() < 1e-15);
        }
        // x8n holds the corner coordinates.
        assert_eq!(x8n[0], d.x(d.nodelist(0)[0]));
        assert_eq!(y8n[3], d.y(d.nodelist(0)[3]));
    }

    #[test]
    fn control_phase_detects_negative_volume() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_v(3, -0.1);
        let n = d.num_elem();
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        let r = calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        );
        assert_eq!(r, Err(LuleshError::VolumeError));
    }

    #[test]
    fn zero_velocity_gives_zero_hourglass_force() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 1.0);
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![1.0; 8 * n];
        let mut fy = vec![1.0; 8 * n];
        let mut fz = vec![1.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        assert!(fx.iter().all(|&f| f == 0.0));
        assert!(fy.iter().all(|&f| f == 0.0));
        assert!(fz.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn rigid_translation_gives_zero_hourglass_force() {
        // Hourglass control must not resist rigid-body motion.
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 2.0);
        }
        for nn in 0..d.num_node() {
            d.set_xd(nn, 1.0);
            d.set_yd(nn, -0.5);
            d.set_zd(nn, 0.25);
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![0.0; 8 * n];
        let mut fy = vec![0.0; 8 * n];
        let mut fz = vec![0.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        for f in fx.iter().chain(&fy).chain(&fz) {
            assert!(f.abs() < 1e-12, "rigid translation produced force {f}");
        }
    }

    #[test]
    fn hourglass_mode_velocity_is_damped() {
        // A velocity field proportional to Γ0 on one element must produce a
        // nonzero restoring force opposing it.
        let d = Domain::build(1, 1, 1, 1, 0);
        d.set_ss(0, 1.0);
        let nl: Vec<_> = d.nodelist(0).to_vec();
        for (c, &nn) in nl.iter().enumerate() {
            d.set_xd(nn, GAMMA[0][c]);
        }
        let n = 1;
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![0.0; 8];
        let mut fy = vec![0.0; 8];
        let mut fz = vec![0.0; 8];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        // The force must oppose the hourglass velocity: f·v < 0.
        let dot: Real = (0..8).map(|c| fx[c] * GAMMA[0][c]).sum();
        assert!(
            dot < 0.0,
            "restoring force should oppose the mode, f·v = {dot}"
        );
    }

    #[test]
    fn chunked_matches_whole_mesh() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 0.5 + (e % 7) as Real * 0.1);
        }
        for nn in 0..d.num_node() {
            d.set_xd(nn, (nn as Real).sin());
            d.set_yd(nn, (nn as Real).cos());
            d.set_zd(nn, (nn as Real * 0.3).sin());
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx1 = vec![0.0; 8 * n];
        let mut fy1 = vec![0.0; 8 * n];
        let mut fz1 = vec![0.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx1,
            &mut fy1,
            &mut fz1,
            full(&d),
        );

        let mut fx2 = vec![0.0; 8 * n];
        let mut fy2 = vec![0.0; 8 * n];
        let mut fz2 = vec![0.0; 8 * n];
        for range in parutil::chunks_of(n, 5) {
            let len = range.len();
            let mut l = (
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; len],
            );
            calc_hourglass_control_for_elems(
                &d, &mut l.0, &mut l.1, &mut l.2, &mut l.3, &mut l.4, &mut l.5, &mut l.6, range,
            )
            .unwrap();
            calc_fb_hourglass_force_for_elems(
                &d,
                &l.6,
                &l.3,
                &l.4,
                &l.5,
                &l.0,
                &l.1,
                &l.2,
                3.0,
                &mut fx2[8 * range.begin..8 * range.end],
                &mut fy2[8 * range.begin..8 * range.end],
                &mut fz2[8 * range.begin..8 * range.end],
                range,
            );
        }
        assert_eq!(fx1, fx2);
        assert_eq!(fy1, fy2);
        assert_eq!(fz1, fz2);
    }
}
