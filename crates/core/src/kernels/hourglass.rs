//! Flanagan-Belytschko hourglass control: `CalcHourglassControlForElems`,
//! `CalcFBHourglassForceForElems` and `CalcElemFBHourglassForce`.
//!
//! Like the stress kernels, these operate on a chunk of the element index
//! space with chunk-local scratch (`dvdx`, `x8n`, `determ`, `f*_elem`), so
//! the task driver can keep all hourglass temporaries task-local (paper
//! trick T6) while the serial driver passes whole-mesh arrays.

// Indexed Γ-matrix loops and wide signatures mirror the reference kernels one-to-one.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![cfg_attr(test, allow(clippy::type_complexity))]
use crate::domain::Domain;
use crate::kernels::shape::{
    gather_elem_coords, gather_elem_velocities, gather_elem_velocities_lanes,
};
use crate::kernels::volume::calc_elem_volume_derivative;
use crate::simd::{self, LaneWidth, Lanes, SimdReal};
use crate::types::{Index, LuleshError, Real};
use parutil::Chunk;

/// Approximate per-element working set of the FB hourglass force phase
/// (six 8-wide scratch streams, determinant, velocities and corner forces),
/// used to size the cache blocks of the lane-blocked variant.
const HOURGLASS_BYTES_PER_ELEM: usize = 776;

/// The four hourglass base vectors Γ (`gamma` in the reference).
pub const GAMMA: [[Real; 8]; 4] = [
    [1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0],
    [1.0, -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0],
    [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0],
];

/// First phase of hourglass control: per element, the volume derivatives at
/// the 8 corners, the corner coordinates (for reuse in phase two) and the
/// current absolute volume `determ = volo·v`. Reports a volume error when
/// any relative volume is non-positive.
#[allow(clippy::too_many_arguments)]
pub fn calc_hourglass_control_for_elems(
    d: &Domain,
    dvdx: &mut [Real],
    dvdy: &mut [Real],
    dvdz: &mut [Real],
    x8n: &mut [Real],
    y8n: &mut [Real],
    z8n: &mut [Real],
    determ: &mut [Real],
    range: Chunk,
) -> Result<(), LuleshError> {
    debug_assert_eq!(dvdx.len(), 8 * range.len());
    debug_assert_eq!(determ.len(), range.len());

    let mut x1 = [0.0; 8];
    let mut y1 = [0.0; 8];
    let mut z1 = [0.0; 8];
    let mut failed = false;

    for i in range.iter() {
        let k = i - range.begin;
        gather_elem_coords(d, i, &mut x1, &mut y1, &mut z1);
        let (pfx, pfy, pfz) = calc_elem_volume_derivative(&x1, &y1, &z1);

        let i3 = 8 * k;
        dvdx[i3..i3 + 8].copy_from_slice(&pfx);
        dvdy[i3..i3 + 8].copy_from_slice(&pfy);
        dvdz[i3..i3 + 8].copy_from_slice(&pfz);
        x8n[i3..i3 + 8].copy_from_slice(&x1);
        y8n[i3..i3 + 8].copy_from_slice(&y1);
        z8n[i3..i3 + 8].copy_from_slice(&z1);

        determ[k] = d.volo(i) * d.v(i);
        failed |= d.v(i) <= 0.0;
    }

    if failed {
        Err(LuleshError::VolumeError)
    } else {
        Ok(())
    }
}

/// `CalcElemFBHourglassForce`: project velocities onto the hourglass modes
/// and distribute the restoring force to the corners. Generic over the lane
/// type; the `V = f64` instantiation is the scalar reference.
fn calc_elem_fb_hourglass_force<V: SimdReal>(
    xd: &[V; 8],
    yd: &[V; 8],
    zd: &[V; 8],
    hourgam: &[[V; 4]; 8],
    coefficient: V,
    hgfx: &mut [V; 8],
    hgfy: &mut [V; 8],
    hgfz: &mut [V; 8],
) {
    let mut hxx = [V::zero(); 4];
    let mut hyy = [V::zero(); 4];
    let mut hzz = [V::zero(); 4];
    for i in 0..4 {
        let mut sx = V::zero();
        let mut sy = V::zero();
        let mut sz = V::zero();
        for j in 0..8 {
            sx = sx + hourgam[j][i] * xd[j];
            sy = sy + hourgam[j][i] * yd[j];
            sz = sz + hourgam[j][i] * zd[j];
        }
        hxx[i] = sx;
        hyy[i] = sy;
        hzz[i] = sz;
    }
    for i in 0..8 {
        hgfx[i] = coefficient
            * (hourgam[i][0] * hxx[0]
                + hourgam[i][1] * hxx[1]
                + hourgam[i][2] * hxx[2]
                + hourgam[i][3] * hxx[3]);
        hgfy[i] = coefficient
            * (hourgam[i][0] * hyy[0]
                + hourgam[i][1] * hyy[1]
                + hourgam[i][2] * hyy[2]
                + hourgam[i][3] * hyy[3]);
        hgfz[i] = coefficient
            * (hourgam[i][0] * hzz[0]
                + hourgam[i][1] * hzz[1]
                + hourgam[i][2] * hzz[2]
                + hourgam[i][3] * hzz[3]);
    }
}

/// Second phase: compute the FB hourglass restoring forces per corner into
/// chunk-local `f*_elem` arrays. `hourg` is the `hgcoef` parameter.
///
/// Dispatches on the process-wide SIMD width ([`simd::active`]); all widths
/// are bit-identical to the scalar reference.
#[allow(clippy::too_many_arguments)]
pub fn calc_fb_hourglass_force_for_elems(
    d: &Domain,
    determ: &[Real],
    x8n: &[Real],
    y8n: &[Real],
    z8n: &[Real],
    dvdx: &[Real],
    dvdy: &[Real],
    dvdz: &[Real],
    hourg: Real,
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    match simd::active() {
        LaneWidth::W1 => calc_fb_hourglass_force_for_elems_scalar(
            d, determ, x8n, y8n, z8n, dvdx, dvdy, dvdz, hourg, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W2 => calc_fb_hourglass_force_for_elems_lanes::<2>(
            d, determ, x8n, y8n, z8n, dvdx, dvdy, dvdz, hourg, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W4 => calc_fb_hourglass_force_for_elems_lanes::<4>(
            d, determ, x8n, y8n, z8n, dvdx, dvdy, dvdz, hourg, fx_elem, fy_elem, fz_elem, range,
        ),
        LaneWidth::W8 => calc_fb_hourglass_force_for_elems_lanes::<8>(
            d, determ, x8n, y8n, z8n, dvdx, dvdy, dvdz, hourg, fx_elem, fy_elem, fz_elem, range,
        ),
    }
}

/// Scalar reference implementation of [`calc_fb_hourglass_force_for_elems`].
#[allow(clippy::too_many_arguments)]
pub fn calc_fb_hourglass_force_for_elems_scalar(
    d: &Domain,
    determ: &[Real],
    x8n: &[Real],
    y8n: &[Real],
    z8n: &[Real],
    dvdx: &[Real],
    dvdy: &[Real],
    dvdz: &[Real],
    hourg: Real,
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(fx_elem.len(), 8 * range.len());

    let mut hourgam = [[0.0; 4]; 8];
    let mut xd1 = [0.0; 8];
    let mut yd1 = [0.0; 8];
    let mut zd1 = [0.0; 8];
    let mut hgfx = [0.0; 8];
    let mut hgfy = [0.0; 8];
    let mut hgfz = [0.0; 8];

    for i2 in range.iter() {
        let k = i2 - range.begin;
        let i3 = 8 * k;
        let volinv = 1.0 / determ[k];

        for i1 in 0..4 {
            let mut hourmodx = 0.0;
            let mut hourmody = 0.0;
            let mut hourmodz = 0.0;
            for j in 0..8 {
                hourmodx += x8n[i3 + j] * GAMMA[i1][j];
                hourmody += y8n[i3 + j] * GAMMA[i1][j];
                hourmodz += z8n[i3 + j] * GAMMA[i1][j];
            }
            for j in 0..8 {
                hourgam[j][i1] = GAMMA[i1][j]
                    - volinv
                        * (dvdx[i3 + j] * hourmodx
                            + dvdy[i3 + j] * hourmody
                            + dvdz[i3 + j] * hourmodz);
            }
        }

        // Compute forces: store forces into h arrays (force arrays).
        let ss1 = d.ss(i2);
        let mass1 = d.elem_mass(i2);
        let volume13 = determ[k].cbrt();
        gather_elem_velocities(d, i2, &mut xd1, &mut yd1, &mut zd1);

        let coefficient = -hourg * 0.01 * ss1 * mass1 / volume13;

        calc_elem_fb_hourglass_force(
            &xd1,
            &yd1,
            &zd1,
            &hourgam,
            coefficient,
            &mut hgfx,
            &mut hgfy,
            &mut hgfz,
        );

        fx_elem[i3..i3 + 8].copy_from_slice(&hgfx);
        fy_elem[i3..i3 + 8].copy_from_slice(&hgfy);
        fz_elem[i3..i3 + 8].copy_from_slice(&hgfz);
    }
}

/// Lane-blocked implementation of [`calc_fb_hourglass_force_for_elems`]:
/// cache-sized blocks, `W`-element lane groups, and a ragged tail handled by
/// the same generic body at `W = 1`.
#[allow(clippy::too_many_arguments)]
pub fn calc_fb_hourglass_force_for_elems_lanes<const W: usize>(
    d: &Domain,
    determ: &[Real],
    x8n: &[Real],
    y8n: &[Real],
    z8n: &[Real],
    dvdx: &[Real],
    dvdy: &[Real],
    dvdz: &[Real],
    hourg: Real,
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
    range: Chunk,
) {
    debug_assert_eq!(fx_elem.len(), 8 * range.len());

    // Hoisted scalar prefix of the force coefficient; matches the scalar
    // path's `-hourg * 0.01 * ss1 * ...` association exactly.
    let c0 = -hourg * 0.01;
    let block = simd::block_len(HOURGLASS_BYTES_PER_ELEM, W);
    let mut lo = range.begin;
    while lo < range.end {
        let hi = (lo + block).min(range.end);
        let mut e = lo;
        while e + W <= hi {
            hourglass_lane_group::<W>(
                d,
                range.begin,
                e,
                determ,
                x8n,
                y8n,
                z8n,
                dvdx,
                dvdy,
                dvdz,
                c0,
                fx_elem,
                fy_elem,
                fz_elem,
            );
            e += W;
        }
        while e < hi {
            hourglass_lane_group::<1>(
                d,
                range.begin,
                e,
                determ,
                x8n,
                y8n,
                z8n,
                dvdx,
                dvdy,
                dvdz,
                c0,
                fx_elem,
                fy_elem,
                fz_elem,
            );
            e += 1;
        }
        lo = hi;
    }
}

/// One group of `W` consecutive elements starting at `e0`: strided lane
/// loads of the per-corner scratch streams, the Γ-projection and force
/// distribution in lane registers, then a per-lane scatter.
#[allow(clippy::too_many_arguments)]
fn hourglass_lane_group<const W: usize>(
    d: &Domain,
    begin: Index,
    e0: Index,
    determ: &[Real],
    x8n: &[Real],
    y8n: &[Real],
    z8n: &[Real],
    dvdx: &[Real],
    dvdy: &[Real],
    dvdz: &[Real],
    c0: Real,
    fx_elem: &mut [Real],
    fy_elem: &mut [Real],
    fz_elem: &mut [Real],
) {
    let k0 = e0 - begin;
    let zero = Lanes::<W>::splat(0.0);

    // Transpose the 8-per-element scratch streams into per-corner lanes:
    // corner j of lane l lives at 8·(k0 + l) + j.
    let mut x8l = [zero; 8];
    let mut y8l = [zero; 8];
    let mut z8l = [zero; 8];
    let mut dvxl = [zero; 8];
    let mut dvyl = [zero; 8];
    let mut dvzl = [zero; 8];
    for j in 0..8 {
        x8l[j] = Lanes::gather(|l| x8n[8 * (k0 + l) + j]);
        y8l[j] = Lanes::gather(|l| y8n[8 * (k0 + l) + j]);
        z8l[j] = Lanes::gather(|l| z8n[8 * (k0 + l) + j]);
        dvxl[j] = Lanes::gather(|l| dvdx[8 * (k0 + l) + j]);
        dvyl[j] = Lanes::gather(|l| dvdy[8 * (k0 + l) + j]);
        dvzl[j] = Lanes::gather(|l| dvdz[8 * (k0 + l) + j]);
    }

    let det = Lanes::<W>::load(determ, k0);
    let volinv = Lanes::<W>::splat(1.0) / det;
    let mut hourgam = [[zero; 4]; 8];
    for i1 in 0..4 {
        let mut hourmodx = zero;
        let mut hourmody = zero;
        let mut hourmodz = zero;
        for j in 0..8 {
            let g = Lanes::<W>::splat(GAMMA[i1][j]);
            hourmodx = hourmodx + x8l[j] * g;
            hourmody = hourmody + y8l[j] * g;
            hourmodz = hourmodz + z8l[j] * g;
        }
        for j in 0..8 {
            hourgam[j][i1] = Lanes::<W>::splat(GAMMA[i1][j])
                - volinv * (dvxl[j] * hourmodx + dvyl[j] * hourmody + dvzl[j] * hourmodz);
        }
    }

    let ss1 = Lanes::<W>::gather(|l| d.ss(e0 + l));
    let mass1 = Lanes::<W>::gather(|l| d.elem_mass(e0 + l));
    let volume13 = det.cbrt();
    let mut xd1 = [zero; 8];
    let mut yd1 = [zero; 8];
    let mut zd1 = [zero; 8];
    gather_elem_velocities_lanes(d, e0, &mut xd1, &mut yd1, &mut zd1);

    let coefficient = Lanes::<W>::splat(c0) * ss1 * mass1 / volume13;

    let mut hgfx = [zero; 8];
    let mut hgfy = [zero; 8];
    let mut hgfz = [zero; 8];
    calc_elem_fb_hourglass_force(
        &xd1,
        &yd1,
        &zd1,
        &hourgam,
        coefficient,
        &mut hgfx,
        &mut hgfy,
        &mut hgfz,
    );

    for l in 0..W {
        for c in 0..8 {
            fx_elem[8 * (k0 + l) + c] = hgfx[c].0[l];
            fy_elem[8 * (k0 + l) + c] = hgfy[c].0[l];
            fz_elem[8 * (k0 + l) + c] = hgfz[c].0[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parutil::Chunk;

    fn full(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    fn scratch(
        n: usize,
    ) -> (
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
        Vec<Real>,
    ) {
        (
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; 8 * n],
            vec![0.0; n],
        )
    }

    #[test]
    fn gamma_vectors_are_orthogonal_to_rigid_modes() {
        // Each Γ is orthogonal to the constant vector (translation mode)...
        for g in &GAMMA {
            assert_eq!(g.iter().sum::<Real>(), 0.0);
        }
        // ... and mutually orthogonal.
        for i in 0..4 {
            for j in i + 1..4 {
                let dot: Real = (0..8).map(|k| GAMMA[i][k] * GAMMA[j][k]).sum();
                assert_eq!(dot, 0.0, "Γ{i}·Γ{j}");
            }
        }
    }

    #[test]
    fn control_phase_records_geometry_and_volume() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        for e in 0..n {
            assert!((determ[e] - d.volo(e)).abs() < 1e-15);
        }
        // x8n holds the corner coordinates.
        assert_eq!(x8n[0], d.x(d.nodelist(0)[0]));
        assert_eq!(y8n[3], d.y(d.nodelist(0)[3]));
    }

    #[test]
    fn control_phase_detects_negative_volume() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_v(3, -0.1);
        let n = d.num_elem();
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        let r = calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        );
        assert_eq!(r, Err(LuleshError::VolumeError));
    }

    #[test]
    fn zero_velocity_gives_zero_hourglass_force() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 1.0);
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![1.0; 8 * n];
        let mut fy = vec![1.0; 8 * n];
        let mut fz = vec![1.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        assert!(fx.iter().all(|&f| f == 0.0));
        assert!(fy.iter().all(|&f| f == 0.0));
        assert!(fz.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn rigid_translation_gives_zero_hourglass_force() {
        // Hourglass control must not resist rigid-body motion.
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 2.0);
        }
        for nn in 0..d.num_node() {
            d.set_xd(nn, 1.0);
            d.set_yd(nn, -0.5);
            d.set_zd(nn, 0.25);
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![0.0; 8 * n];
        let mut fy = vec![0.0; 8 * n];
        let mut fz = vec![0.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        for f in fx.iter().chain(&fy).chain(&fz) {
            assert!(f.abs() < 1e-12, "rigid translation produced force {f}");
        }
    }

    #[test]
    fn hourglass_mode_velocity_is_damped() {
        // A velocity field proportional to Γ0 on one element must produce a
        // nonzero restoring force opposing it.
        let d = Domain::build(1, 1, 1, 1, 0);
        d.set_ss(0, 1.0);
        let nl: Vec<_> = d.nodelist(0).to_vec();
        for (c, &nn) in nl.iter().enumerate() {
            d.set_xd(nn, GAMMA[0][c]);
        }
        let n = 1;
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx = vec![0.0; 8];
        let mut fy = vec![0.0; 8];
        let mut fz = vec![0.0; 8];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx,
            &mut fy,
            &mut fz,
            full(&d),
        );
        // The force must oppose the hourglass velocity: f·v < 0.
        let dot: Real = (0..8).map(|c| fx[c] * GAMMA[0][c]).sum();
        assert!(
            dot < 0.0,
            "restoring force should oppose the mode, f·v = {dot}"
        );
    }

    #[test]
    fn chunked_matches_whole_mesh() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let n = d.num_elem();
        for e in 0..n {
            d.set_ss(e, 0.5 + (e % 7) as Real * 0.1);
        }
        for nn in 0..d.num_node() {
            d.set_xd(nn, (nn as Real).sin());
            d.set_yd(nn, (nn as Real).cos());
            d.set_zd(nn, (nn as Real * 0.3).sin());
        }
        let (mut dvdx, mut dvdy, mut dvdz, mut x8n, mut y8n, mut z8n, mut determ) = scratch(n);
        calc_hourglass_control_for_elems(
            &d,
            &mut dvdx,
            &mut dvdy,
            &mut dvdz,
            &mut x8n,
            &mut y8n,
            &mut z8n,
            &mut determ,
            full(&d),
        )
        .unwrap();
        let mut fx1 = vec![0.0; 8 * n];
        let mut fy1 = vec![0.0; 8 * n];
        let mut fz1 = vec![0.0; 8 * n];
        calc_fb_hourglass_force_for_elems(
            &d,
            &determ,
            &x8n,
            &y8n,
            &z8n,
            &dvdx,
            &dvdy,
            &dvdz,
            3.0,
            &mut fx1,
            &mut fy1,
            &mut fz1,
            full(&d),
        );

        let mut fx2 = vec![0.0; 8 * n];
        let mut fy2 = vec![0.0; 8 * n];
        let mut fz2 = vec![0.0; 8 * n];
        for range in parutil::chunks_of(n, 5) {
            let len = range.len();
            let mut l = (
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; 8 * len],
                vec![0.0; len],
            );
            calc_hourglass_control_for_elems(
                &d, &mut l.0, &mut l.1, &mut l.2, &mut l.3, &mut l.4, &mut l.5, &mut l.6, range,
            )
            .unwrap();
            calc_fb_hourglass_force_for_elems(
                &d,
                &l.6,
                &l.3,
                &l.4,
                &l.5,
                &l.0,
                &l.1,
                &l.2,
                3.0,
                &mut fx2[8 * range.begin..8 * range.end],
                &mut fy2[8 * range.begin..8 * range.end],
                &mut fz2[8 * range.begin..8 * range.end],
                range,
            );
        }
        assert_eq!(fx1, fx2);
        assert_eq!(fy1, fy2);
        assert_eq!(fz1, fz2);
    }
}
