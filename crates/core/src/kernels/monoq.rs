//! Artificial viscosity (`CalcQForElems`): monotonic q velocity/position
//! gradients and the region-wise limiter evaluation.
//!
//! `CalcMonotonicQGradientsForElems` is element-local (reads only the
//! element's own nodes), so the task driver chains it after kinematics.
//! `CalcMonotonicQRegionForElems` reads *neighbour* elements' gradients via
//! `lxim`/`lxip`/…, which is exactly why the paper needs a global barrier
//! between the two (one of the 7 per iteration).

use crate::domain::Domain;
use crate::params::Params;
use crate::types::{bc, LuleshError, Real};
use parutil::Chunk;

const PTINY: Real = 1.0e-36;

/// Velocity and position gradients in the three logical directions
/// (`delv_xi/eta/zeta`, `delx_xi/eta/zeta`).
pub fn calc_monotonic_q_gradients_for_elems(d: &Domain, range: Chunk) {
    for i in range.iter() {
        let nl = d.nodelist(i);
        let n0 = nl[0];
        let n1 = nl[1];
        let n2 = nl[2];
        let n3 = nl[3];
        let n4 = nl[4];
        let n5 = nl[5];
        let n6 = nl[6];
        let n7 = nl[7];

        let x0 = d.x(n0);
        let x1 = d.x(n1);
        let x2 = d.x(n2);
        let x3 = d.x(n3);
        let x4 = d.x(n4);
        let x5 = d.x(n5);
        let x6 = d.x(n6);
        let x7 = d.x(n7);

        let y0 = d.y(n0);
        let y1 = d.y(n1);
        let y2 = d.y(n2);
        let y3 = d.y(n3);
        let y4 = d.y(n4);
        let y5 = d.y(n5);
        let y6 = d.y(n6);
        let y7 = d.y(n7);

        let z0 = d.z(n0);
        let z1 = d.z(n1);
        let z2 = d.z(n2);
        let z3 = d.z(n3);
        let z4 = d.z(n4);
        let z5 = d.z(n5);
        let z6 = d.z(n6);
        let z7 = d.z(n7);

        let xv0 = d.xd(n0);
        let xv1 = d.xd(n1);
        let xv2 = d.xd(n2);
        let xv3 = d.xd(n3);
        let xv4 = d.xd(n4);
        let xv5 = d.xd(n5);
        let xv6 = d.xd(n6);
        let xv7 = d.xd(n7);

        let yv0 = d.yd(n0);
        let yv1 = d.yd(n1);
        let yv2 = d.yd(n2);
        let yv3 = d.yd(n3);
        let yv4 = d.yd(n4);
        let yv5 = d.yd(n5);
        let yv6 = d.yd(n6);
        let yv7 = d.yd(n7);

        let zv0 = d.zd(n0);
        let zv1 = d.zd(n1);
        let zv2 = d.zd(n2);
        let zv3 = d.zd(n3);
        let zv4 = d.zd(n4);
        let zv5 = d.zd(n5);
        let zv6 = d.zd(n6);
        let zv7 = d.zd(n7);

        let vol = d.volo(i) * d.vnew(i);
        let norm = 1.0 / (vol + PTINY);

        let dxj = -0.25 * ((x0 + x1 + x5 + x4) - (x3 + x2 + x6 + x7));
        let dyj = -0.25 * ((y0 + y1 + y5 + y4) - (y3 + y2 + y6 + y7));
        let dzj = -0.25 * ((z0 + z1 + z5 + z4) - (z3 + z2 + z6 + z7));

        let dxi = 0.25 * ((x1 + x2 + x6 + x5) - (x0 + x3 + x7 + x4));
        let dyi = 0.25 * ((y1 + y2 + y6 + y5) - (y0 + y3 + y7 + y4));
        let dzi = 0.25 * ((z1 + z2 + z6 + z5) - (z0 + z3 + z7 + z4));

        let dxk = 0.25 * ((x4 + x5 + x6 + x7) - (x0 + x1 + x2 + x3));
        let dyk = 0.25 * ((y4 + y5 + y6 + y7) - (y0 + y1 + y2 + y3));
        let dzk = 0.25 * ((z4 + z5 + z6 + z7) - (z0 + z1 + z2 + z3));

        // find delvk and delxk ( i cross j ).
        let mut ax = dyi * dzj - dzi * dyj;
        let mut ay = dzi * dxj - dxi * dzj;
        let mut az = dxi * dyj - dyi * dxj;

        d.set_delx_zeta(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        let mut dxv = 0.25 * ((xv4 + xv5 + xv6 + xv7) - (xv0 + xv1 + xv2 + xv3));
        let mut dyv = 0.25 * ((yv4 + yv5 + yv6 + yv7) - (yv0 + yv1 + yv2 + yv3));
        let mut dzv = 0.25 * ((zv4 + zv5 + zv6 + zv7) - (zv0 + zv1 + zv2 + zv3));

        d.set_delv_zeta(i, ax * dxv + ay * dyv + az * dzv);

        // find delxi and delvi ( j cross k ).
        ax = dyj * dzk - dzj * dyk;
        ay = dzj * dxk - dxj * dzk;
        az = dxj * dyk - dyj * dxk;

        d.set_delx_xi(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        dxv = 0.25 * ((xv1 + xv2 + xv6 + xv5) - (xv0 + xv3 + xv7 + xv4));
        dyv = 0.25 * ((yv1 + yv2 + yv6 + yv5) - (yv0 + yv3 + yv7 + yv4));
        dzv = 0.25 * ((zv1 + zv2 + zv6 + zv5) - (zv0 + zv3 + zv7 + zv4));

        d.set_delv_xi(i, ax * dxv + ay * dyv + az * dzv);

        // find delxj and delvj ( k cross i ).
        ax = dyk * dzi - dzk * dyi;
        ay = dzk * dxi - dxk * dzi;
        az = dxk * dyi - dyk * dxi;

        d.set_delx_eta(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        dxv = -0.25 * ((xv0 + xv1 + xv5 + xv4) - (xv3 + xv2 + xv6 + xv7));
        dyv = -0.25 * ((yv0 + yv1 + yv5 + yv4) - (yv3 + yv2 + yv6 + yv7));
        dzv = -0.25 * ((zv0 + zv1 + zv5 + zv4) - (zv3 + zv2 + zv6 + zv7));

        d.set_delv_eta(i, ax * dxv + ay * dyv + az * dzv);
    }
}

/// The monotonic-q limiter for a slice of one region's element list:
/// computes `qq` (quadratic term) and `ql` (linear term) per element.
pub fn calc_monotonic_q_region_for_elems(d: &Domain, elems: &[usize], p: &Params) {
    let monoq_limiter_mult = p.monoq_limiter_mult;
    let monoq_max_slope = p.monoq_max_slope;
    let qlc_monoq = p.qlc_monoq;
    let qqc_monoq = p.qqc_monoq;

    for &i in elems {
        let bc_mask = d.m_elem_bc[i];

        // Phi ξ.
        let norm = 1.0 / (d.delv_xi(i) + PTINY);

        let mut delvm = match bc_mask & bc::XI_M {
            0 | bc::XI_M_COMM => d.delv_xi(d.m_lxim[i]),
            bc::XI_M_SYMM => d.delv_xi(i),
            bc::XI_M_FREE => 0.0,
            other => unreachable!("bad ξ− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::XI_P {
            0 | bc::XI_P_COMM => d.delv_xi(d.m_lxip[i]),
            bc::XI_P_SYMM => d.delv_xi(i),
            bc::XI_P_FREE => 0.0,
            other => unreachable!("bad ξ+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phixi = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phixi {
            phixi = delvm;
        }
        if delvp < phixi {
            phixi = delvp;
        }
        if phixi < 0.0 {
            phixi = 0.0;
        }
        if phixi > monoq_max_slope {
            phixi = monoq_max_slope;
        }

        // Phi η.
        let norm = 1.0 / (d.delv_eta(i) + PTINY);

        let mut delvm = match bc_mask & bc::ETA_M {
            0 | bc::ETA_M_COMM => d.delv_eta(d.m_letam[i]),
            bc::ETA_M_SYMM => d.delv_eta(i),
            bc::ETA_M_FREE => 0.0,
            other => unreachable!("bad η− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::ETA_P {
            0 | bc::ETA_P_COMM => d.delv_eta(d.m_letap[i]),
            bc::ETA_P_SYMM => d.delv_eta(i),
            bc::ETA_P_FREE => 0.0,
            other => unreachable!("bad η+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phieta = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phieta {
            phieta = delvm;
        }
        if delvp < phieta {
            phieta = delvp;
        }
        if phieta < 0.0 {
            phieta = 0.0;
        }
        if phieta > monoq_max_slope {
            phieta = monoq_max_slope;
        }

        // Phi ζ.
        let norm = 1.0 / (d.delv_zeta(i) + PTINY);

        let mut delvm = match bc_mask & bc::ZETA_M {
            0 | bc::ZETA_M_COMM => d.delv_zeta(d.m_lzetam[i]),
            bc::ZETA_M_SYMM => d.delv_zeta(i),
            bc::ZETA_M_FREE => 0.0,
            other => unreachable!("bad ζ− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::ZETA_P {
            0 | bc::ZETA_P_COMM => d.delv_zeta(d.m_lzetap[i]),
            bc::ZETA_P_SYMM => d.delv_zeta(i),
            bc::ZETA_P_FREE => 0.0,
            other => unreachable!("bad ζ+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phizeta = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phizeta {
            phizeta = delvm;
        }
        if delvp < phizeta {
            phizeta = delvp;
        }
        if phizeta < 0.0 {
            phizeta = 0.0;
        }
        if phizeta > monoq_max_slope {
            phizeta = monoq_max_slope;
        }

        // Remove length scale.
        let (qlin, qquad) = if d.vdov(i) > 0.0 {
            (0.0, 0.0)
        } else {
            let mut delvxxi = d.delv_xi(i) * d.delx_xi(i);
            let mut delvxeta = d.delv_eta(i) * d.delx_eta(i);
            let mut delvxzeta = d.delv_zeta(i) * d.delx_zeta(i);

            if delvxxi > 0.0 {
                delvxxi = 0.0;
            }
            if delvxeta > 0.0 {
                delvxeta = 0.0;
            }
            if delvxzeta > 0.0 {
                delvxzeta = 0.0;
            }

            let rho = d.elem_mass(i) / (d.volo(i) * d.vnew(i));

            let qlin = -qlc_monoq
                * rho
                * (delvxxi * (1.0 - phixi)
                    + delvxeta * (1.0 - phieta)
                    + delvxzeta * (1.0 - phizeta));

            let qquad = qqc_monoq
                * rho
                * (delvxxi * delvxxi * (1.0 - phixi * phixi)
                    + delvxeta * delvxeta * (1.0 - phieta * phieta)
                    + delvxzeta * delvxzeta * (1.0 - phizeta * phizeta));

            (qlin, qquad)
        };

        d.set_qq(i, qquad);
        d.set_ql(i, qlin);
    }
}

/// `CalcQForElems` epilogue: abort if the artificial viscosity exceeded
/// `qstop` anywhere.
pub fn check_q_stop(d: &Domain, qstop: Real, range: Chunk) -> Result<(), LuleshError> {
    for i in range.iter() {
        if d.q(i) > qstop {
            return Err(LuleshError::QStopError);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::kinematics::calc_kinematics_for_elems;

    fn elems(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    fn prep(d: &Domain) {
        calc_kinematics_for_elems(d, 0.0, elems(d));
        crate::kernels::kinematics::calc_lagrange_elements_finish(d, elems(d)).unwrap();
    }

    #[test]
    fn static_mesh_has_zero_velocity_gradients() {
        let d = Domain::build(3, 1, 1, 1, 0);
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        for i in 0..d.num_elem() {
            assert!(d.delv_xi(i).abs() < 1e-14);
            assert!(d.delv_eta(i).abs() < 1e-14);
            assert!(d.delv_zeta(i).abs() < 1e-14);
            // delx is the element extent in each direction: mesh spacing.
            let h = crate::params::MESH_EXTENT / 3.0;
            assert!(
                (d.delx_xi(i) - h).abs() < 1e-9,
                "delx_xi = {}",
                d.delx_xi(i)
            );
            assert!((d.delx_eta(i) - h).abs() < 1e-9);
            assert!((d.delx_zeta(i) - h).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_compression_gives_negative_delv() {
        let d = Domain::build(3, 1, 1, 1, 0);
        // Velocity field pointing inward: v = -c·x.
        for n in 0..d.num_node() {
            d.set_xd(n, -0.1 * d.x(n));
            d.set_yd(n, -0.1 * d.y(n));
            d.set_zd(n, -0.1 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        for i in 0..d.num_elem() {
            assert!(d.delv_xi(i) < 0.0, "compression must give negative delv_xi");
            assert!(d.delv_eta(i) < 0.0);
            assert!(d.delv_zeta(i) < 0.0);
        }
    }

    #[test]
    fn q_region_zero_for_static_mesh() {
        let d = Domain::build(3, 2, 1, 1, 0);
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        for r in 0..d.num_reg() {
            calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[r], &p);
        }
        for i in 0..d.num_elem() {
            assert_eq!(d.qq(i), 0.0);
            assert_eq!(d.ql(i), 0.0);
        }
    }

    #[test]
    fn q_region_positive_under_uniform_compression() {
        let d = Domain::build(4, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xd(n, -0.5 * d.x(n));
            d.set_yd(n, -0.5 * d.y(n));
            d.set_zd(n, -0.5 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[0], &p);
        // Compression (vdov < 0) must produce non-negative q terms, and
        // strictly positive ones somewhere.
        let mut any = false;
        for i in 0..d.num_elem() {
            assert!(d.qq(i) >= 0.0);
            assert!(d.ql(i) >= 0.0);
            any |= d.ql(i) > 0.0;
        }
        assert!(any, "expected nonzero viscosity under compression");
    }

    #[test]
    fn expansion_gives_zero_q() {
        let d = Domain::build(3, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xd(n, 0.3 * d.x(n));
            d.set_yd(n, 0.3 * d.y(n));
            d.set_zd(n, 0.3 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[0], &p);
        for i in 0..d.num_elem() {
            assert_eq!(d.qq(i), 0.0, "vdov > 0 must zero the q terms");
            assert_eq!(d.ql(i), 0.0);
        }
    }

    #[test]
    fn qstop_check() {
        let d = Domain::build(2, 1, 1, 1, 0);
        assert!(check_q_stop(&d, 1e12, elems(&d)).is_ok());
        d.set_q(5, 2e12);
        assert_eq!(
            check_q_stop(&d, 1e12, elems(&d)),
            Err(LuleshError::QStopError)
        );
    }
}
