//! Artificial viscosity (`CalcQForElems`): monotonic q velocity/position
//! gradients and the region-wise limiter evaluation.
//!
//! `CalcMonotonicQGradientsForElems` is element-local (reads only the
//! element's own nodes), so the task driver chains it after kinematics.
//! `CalcMonotonicQRegionForElems` reads *neighbour* elements' gradients via
//! `lxim`/`lxip`/…, which is exactly why the paper needs a global barrier
//! between the two (one of the 7 per iteration).

use crate::domain::Domain;
use crate::kernels::shape::{gather_elem_coords_lanes, gather_elem_velocities_lanes};
use crate::params::Params;
use crate::simd::{self, LaneWidth, Lanes, SimdReal};
use crate::types::{bc, Index, LuleshError, Real};
use parutil::Chunk;

const PTINY: Real = 1.0e-36;

/// Approximate per-element working set of the gradient kernel (coordinates,
/// velocities, volumes, six gradient stores).
const MONOQ_GRAD_BYTES_PER_ELEM: usize = 448;

/// Approximate per-element working set of the region limiter (own and
/// neighbour gradients, element state, two stores).
const MONOQ_REGION_BYTES_PER_ELEM: usize = 128;

/// Velocity and position gradients in the three logical directions
/// (`delv_xi/eta/zeta`, `delx_xi/eta/zeta`).
///
/// Dispatches on the process-wide SIMD width ([`simd::active`]); all widths
/// are bit-identical to the scalar reference.
pub fn calc_monotonic_q_gradients_for_elems(d: &Domain, range: Chunk) {
    match simd::active() {
        LaneWidth::W1 => calc_monotonic_q_gradients_for_elems_scalar(d, range),
        LaneWidth::W2 => calc_monotonic_q_gradients_for_elems_lanes::<2>(d, range),
        LaneWidth::W4 => calc_monotonic_q_gradients_for_elems_lanes::<4>(d, range),
        LaneWidth::W8 => calc_monotonic_q_gradients_for_elems_lanes::<8>(d, range),
    }
}

/// Scalar reference implementation of
/// [`calc_monotonic_q_gradients_for_elems`].
pub fn calc_monotonic_q_gradients_for_elems_scalar(d: &Domain, range: Chunk) {
    for i in range.iter() {
        let nl = d.nodelist(i);
        let n0 = nl[0];
        let n1 = nl[1];
        let n2 = nl[2];
        let n3 = nl[3];
        let n4 = nl[4];
        let n5 = nl[5];
        let n6 = nl[6];
        let n7 = nl[7];

        let x0 = d.x(n0);
        let x1 = d.x(n1);
        let x2 = d.x(n2);
        let x3 = d.x(n3);
        let x4 = d.x(n4);
        let x5 = d.x(n5);
        let x6 = d.x(n6);
        let x7 = d.x(n7);

        let y0 = d.y(n0);
        let y1 = d.y(n1);
        let y2 = d.y(n2);
        let y3 = d.y(n3);
        let y4 = d.y(n4);
        let y5 = d.y(n5);
        let y6 = d.y(n6);
        let y7 = d.y(n7);

        let z0 = d.z(n0);
        let z1 = d.z(n1);
        let z2 = d.z(n2);
        let z3 = d.z(n3);
        let z4 = d.z(n4);
        let z5 = d.z(n5);
        let z6 = d.z(n6);
        let z7 = d.z(n7);

        let xv0 = d.xd(n0);
        let xv1 = d.xd(n1);
        let xv2 = d.xd(n2);
        let xv3 = d.xd(n3);
        let xv4 = d.xd(n4);
        let xv5 = d.xd(n5);
        let xv6 = d.xd(n6);
        let xv7 = d.xd(n7);

        let yv0 = d.yd(n0);
        let yv1 = d.yd(n1);
        let yv2 = d.yd(n2);
        let yv3 = d.yd(n3);
        let yv4 = d.yd(n4);
        let yv5 = d.yd(n5);
        let yv6 = d.yd(n6);
        let yv7 = d.yd(n7);

        let zv0 = d.zd(n0);
        let zv1 = d.zd(n1);
        let zv2 = d.zd(n2);
        let zv3 = d.zd(n3);
        let zv4 = d.zd(n4);
        let zv5 = d.zd(n5);
        let zv6 = d.zd(n6);
        let zv7 = d.zd(n7);

        let vol = d.volo(i) * d.vnew(i);
        let norm = 1.0 / (vol + PTINY);

        let dxj = -0.25 * ((x0 + x1 + x5 + x4) - (x3 + x2 + x6 + x7));
        let dyj = -0.25 * ((y0 + y1 + y5 + y4) - (y3 + y2 + y6 + y7));
        let dzj = -0.25 * ((z0 + z1 + z5 + z4) - (z3 + z2 + z6 + z7));

        let dxi = 0.25 * ((x1 + x2 + x6 + x5) - (x0 + x3 + x7 + x4));
        let dyi = 0.25 * ((y1 + y2 + y6 + y5) - (y0 + y3 + y7 + y4));
        let dzi = 0.25 * ((z1 + z2 + z6 + z5) - (z0 + z3 + z7 + z4));

        let dxk = 0.25 * ((x4 + x5 + x6 + x7) - (x0 + x1 + x2 + x3));
        let dyk = 0.25 * ((y4 + y5 + y6 + y7) - (y0 + y1 + y2 + y3));
        let dzk = 0.25 * ((z4 + z5 + z6 + z7) - (z0 + z1 + z2 + z3));

        // find delvk and delxk ( i cross j ).
        let mut ax = dyi * dzj - dzi * dyj;
        let mut ay = dzi * dxj - dxi * dzj;
        let mut az = dxi * dyj - dyi * dxj;

        d.set_delx_zeta(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        let mut dxv = 0.25 * ((xv4 + xv5 + xv6 + xv7) - (xv0 + xv1 + xv2 + xv3));
        let mut dyv = 0.25 * ((yv4 + yv5 + yv6 + yv7) - (yv0 + yv1 + yv2 + yv3));
        let mut dzv = 0.25 * ((zv4 + zv5 + zv6 + zv7) - (zv0 + zv1 + zv2 + zv3));

        d.set_delv_zeta(i, ax * dxv + ay * dyv + az * dzv);

        // find delxi and delvi ( j cross k ).
        ax = dyj * dzk - dzj * dyk;
        ay = dzj * dxk - dxj * dzk;
        az = dxj * dyk - dyj * dxk;

        d.set_delx_xi(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        dxv = 0.25 * ((xv1 + xv2 + xv6 + xv5) - (xv0 + xv3 + xv7 + xv4));
        dyv = 0.25 * ((yv1 + yv2 + yv6 + yv5) - (yv0 + yv3 + yv7 + yv4));
        dzv = 0.25 * ((zv1 + zv2 + zv6 + zv5) - (zv0 + zv3 + zv7 + zv4));

        d.set_delv_xi(i, ax * dxv + ay * dyv + az * dzv);

        // find delxj and delvj ( k cross i ).
        ax = dyk * dzi - dzk * dyi;
        ay = dzk * dxi - dxk * dzi;
        az = dxk * dyi - dyk * dxi;

        d.set_delx_eta(i, vol / (ax * ax + ay * ay + az * az + PTINY).sqrt());

        ax *= norm;
        ay *= norm;
        az *= norm;

        dxv = -0.25 * ((xv0 + xv1 + xv5 + xv4) - (xv3 + xv2 + xv6 + xv7));
        dyv = -0.25 * ((yv0 + yv1 + yv5 + yv4) - (yv3 + yv2 + yv6 + yv7));
        dzv = -0.25 * ((zv0 + zv1 + zv5 + zv4) - (zv3 + zv2 + zv6 + zv7));

        d.set_delv_eta(i, ax * dxv + ay * dyv + az * dzv);
    }
}

/// Lane-blocked implementation of [`calc_monotonic_q_gradients_for_elems`]:
/// cache-sized blocks, `W`-element lane groups, ragged tail at `W = 1`.
pub fn calc_monotonic_q_gradients_for_elems_lanes<const W: usize>(d: &Domain, range: Chunk) {
    let block = simd::block_len(MONOQ_GRAD_BYTES_PER_ELEM, W);
    let mut lo = range.begin;
    while lo < range.end {
        let hi = (lo + block).min(range.end);
        let mut e = lo;
        while e + W <= hi {
            monoq_gradients_lane_group::<W>(d, e);
            e += W;
        }
        while e < hi {
            monoq_gradients_lane_group::<1>(d, e);
            e += 1;
        }
        lo = hi;
    }
}

/// One group of `W` consecutive elements of the gradient kernel, computed
/// in lane registers with per-lane stores of the six gradients.
fn monoq_gradients_lane_group<const W: usize>(d: &Domain, e0: Index) {
    let quart = Lanes::<W>::splat(0.25);
    let nquart = Lanes::<W>::splat(-0.25);
    let ptiny = Lanes::<W>::splat(PTINY);
    let one = Lanes::<W>::splat(1.0);

    let mut x = [Lanes::<W>::splat(0.0); 8];
    let mut y = [Lanes::<W>::splat(0.0); 8];
    let mut z = [Lanes::<W>::splat(0.0); 8];
    gather_elem_coords_lanes(d, e0, &mut x, &mut y, &mut z);
    let mut xv = [Lanes::<W>::splat(0.0); 8];
    let mut yv = [Lanes::<W>::splat(0.0); 8];
    let mut zv = [Lanes::<W>::splat(0.0); 8];
    gather_elem_velocities_lanes(d, e0, &mut xv, &mut yv, &mut zv);

    let vol = Lanes::<W>::gather(|l| d.volo(e0 + l)) * Lanes::<W>::gather(|l| d.vnew(e0 + l));
    let norm = one / (vol + ptiny);

    let dxj = nquart * ((x[0] + x[1] + x[5] + x[4]) - (x[3] + x[2] + x[6] + x[7]));
    let dyj = nquart * ((y[0] + y[1] + y[5] + y[4]) - (y[3] + y[2] + y[6] + y[7]));
    let dzj = nquart * ((z[0] + z[1] + z[5] + z[4]) - (z[3] + z[2] + z[6] + z[7]));

    let dxi = quart * ((x[1] + x[2] + x[6] + x[5]) - (x[0] + x[3] + x[7] + x[4]));
    let dyi = quart * ((y[1] + y[2] + y[6] + y[5]) - (y[0] + y[3] + y[7] + y[4]));
    let dzi = quart * ((z[1] + z[2] + z[6] + z[5]) - (z[0] + z[3] + z[7] + z[4]));

    let dxk = quart * ((x[4] + x[5] + x[6] + x[7]) - (x[0] + x[1] + x[2] + x[3]));
    let dyk = quart * ((y[4] + y[5] + y[6] + y[7]) - (y[0] + y[1] + y[2] + y[3]));
    let dzk = quart * ((z[4] + z[5] + z[6] + z[7]) - (z[0] + z[1] + z[2] + z[3]));

    // find delvk and delxk ( i cross j ).
    let mut ax = dyi * dzj - dzi * dyj;
    let mut ay = dzi * dxj - dxi * dzj;
    let mut az = dxi * dyj - dyi * dxj;

    let delx_zeta = vol / (ax * ax + ay * ay + az * az + ptiny).sqrt();

    ax = ax * norm;
    ay = ay * norm;
    az = az * norm;

    let mut dxv = quart * ((xv[4] + xv[5] + xv[6] + xv[7]) - (xv[0] + xv[1] + xv[2] + xv[3]));
    let mut dyv = quart * ((yv[4] + yv[5] + yv[6] + yv[7]) - (yv[0] + yv[1] + yv[2] + yv[3]));
    let mut dzv = quart * ((zv[4] + zv[5] + zv[6] + zv[7]) - (zv[0] + zv[1] + zv[2] + zv[3]));

    let delv_zeta = ax * dxv + ay * dyv + az * dzv;

    // find delxi and delvi ( j cross k ).
    ax = dyj * dzk - dzj * dyk;
    ay = dzj * dxk - dxj * dzk;
    az = dxj * dyk - dyj * dxk;

    let delx_xi = vol / (ax * ax + ay * ay + az * az + ptiny).sqrt();

    ax = ax * norm;
    ay = ay * norm;
    az = az * norm;

    dxv = quart * ((xv[1] + xv[2] + xv[6] + xv[5]) - (xv[0] + xv[3] + xv[7] + xv[4]));
    dyv = quart * ((yv[1] + yv[2] + yv[6] + yv[5]) - (yv[0] + yv[3] + yv[7] + yv[4]));
    dzv = quart * ((zv[1] + zv[2] + zv[6] + zv[5]) - (zv[0] + zv[3] + zv[7] + zv[4]));

    let delv_xi = ax * dxv + ay * dyv + az * dzv;

    // find delxj and delvj ( k cross i ).
    ax = dyk * dzi - dzk * dyi;
    ay = dzk * dxi - dxk * dzi;
    az = dxk * dyi - dyk * dxi;

    let delx_eta = vol / (ax * ax + ay * ay + az * az + ptiny).sqrt();

    ax = ax * norm;
    ay = ay * norm;
    az = az * norm;

    dxv = nquart * ((xv[0] + xv[1] + xv[5] + xv[4]) - (xv[3] + xv[2] + xv[6] + xv[7]));
    dyv = nquart * ((yv[0] + yv[1] + yv[5] + yv[4]) - (yv[3] + yv[2] + yv[6] + yv[7]));
    dzv = nquart * ((zv[0] + zv[1] + zv[5] + zv[4]) - (zv[3] + zv[2] + zv[6] + zv[7]));

    let delv_eta = ax * dxv + ay * dyv + az * dzv;

    for l in 0..W {
        let i = e0 + l;
        d.set_delx_zeta(i, delx_zeta.0[l]);
        d.set_delv_zeta(i, delv_zeta.0[l]);
        d.set_delx_xi(i, delx_xi.0[l]);
        d.set_delv_xi(i, delv_xi.0[l]);
        d.set_delx_eta(i, delx_eta.0[l]);
        d.set_delv_eta(i, delv_eta.0[l]);
    }
}

/// The monotonic-q limiter for a slice of one region's element list:
/// computes `qq` (quadratic term) and `ql` (linear term) per element.
///
/// Dispatches on the process-wide SIMD width ([`simd::active`]); all widths
/// are bit-identical to the scalar reference.
pub fn calc_monotonic_q_region_for_elems(d: &Domain, elems: &[usize], p: &Params) {
    match simd::active() {
        LaneWidth::W1 => calc_monotonic_q_region_for_elems_scalar(d, elems, p),
        LaneWidth::W2 => calc_monotonic_q_region_for_elems_lanes::<2>(d, elems, p),
        LaneWidth::W4 => calc_monotonic_q_region_for_elems_lanes::<4>(d, elems, p),
        LaneWidth::W8 => calc_monotonic_q_region_for_elems_lanes::<8>(d, elems, p),
    }
}

/// Scalar reference implementation of [`calc_monotonic_q_region_for_elems`].
pub fn calc_monotonic_q_region_for_elems_scalar(d: &Domain, elems: &[usize], p: &Params) {
    let monoq_limiter_mult = p.monoq_limiter_mult;
    let monoq_max_slope = p.monoq_max_slope;
    let qlc_monoq = p.qlc_monoq;
    let qqc_monoq = p.qqc_monoq;

    for &i in elems {
        let bc_mask = d.m_elem_bc[i];

        // Phi ξ.
        let norm = 1.0 / (d.delv_xi(i) + PTINY);

        let mut delvm = match bc_mask & bc::XI_M {
            0 | bc::XI_M_COMM => d.delv_xi(d.m_lxim[i]),
            bc::XI_M_SYMM => d.delv_xi(i),
            bc::XI_M_FREE => 0.0,
            other => unreachable!("bad ξ− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::XI_P {
            0 | bc::XI_P_COMM => d.delv_xi(d.m_lxip[i]),
            bc::XI_P_SYMM => d.delv_xi(i),
            bc::XI_P_FREE => 0.0,
            other => unreachable!("bad ξ+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phixi = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phixi {
            phixi = delvm;
        }
        if delvp < phixi {
            phixi = delvp;
        }
        if phixi < 0.0 {
            phixi = 0.0;
        }
        if phixi > monoq_max_slope {
            phixi = monoq_max_slope;
        }

        // Phi η.
        let norm = 1.0 / (d.delv_eta(i) + PTINY);

        let mut delvm = match bc_mask & bc::ETA_M {
            0 | bc::ETA_M_COMM => d.delv_eta(d.m_letam[i]),
            bc::ETA_M_SYMM => d.delv_eta(i),
            bc::ETA_M_FREE => 0.0,
            other => unreachable!("bad η− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::ETA_P {
            0 | bc::ETA_P_COMM => d.delv_eta(d.m_letap[i]),
            bc::ETA_P_SYMM => d.delv_eta(i),
            bc::ETA_P_FREE => 0.0,
            other => unreachable!("bad η+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phieta = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phieta {
            phieta = delvm;
        }
        if delvp < phieta {
            phieta = delvp;
        }
        if phieta < 0.0 {
            phieta = 0.0;
        }
        if phieta > monoq_max_slope {
            phieta = monoq_max_slope;
        }

        // Phi ζ.
        let norm = 1.0 / (d.delv_zeta(i) + PTINY);

        let mut delvm = match bc_mask & bc::ZETA_M {
            0 | bc::ZETA_M_COMM => d.delv_zeta(d.m_lzetam[i]),
            bc::ZETA_M_SYMM => d.delv_zeta(i),
            bc::ZETA_M_FREE => 0.0,
            other => unreachable!("bad ζ− boundary flags {other:#x}"),
        };
        let mut delvp = match bc_mask & bc::ZETA_P {
            0 | bc::ZETA_P_COMM => d.delv_zeta(d.m_lzetap[i]),
            bc::ZETA_P_SYMM => d.delv_zeta(i),
            bc::ZETA_P_FREE => 0.0,
            other => unreachable!("bad ζ+ boundary flags {other:#x}"),
        };

        delvm *= norm;
        delvp *= norm;

        let mut phizeta = 0.5 * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if delvm < phizeta {
            phizeta = delvm;
        }
        if delvp < phizeta {
            phizeta = delvp;
        }
        if phizeta < 0.0 {
            phizeta = 0.0;
        }
        if phizeta > monoq_max_slope {
            phizeta = monoq_max_slope;
        }

        // Remove length scale.
        let (qlin, qquad) = if d.vdov(i) > 0.0 {
            (0.0, 0.0)
        } else {
            let mut delvxxi = d.delv_xi(i) * d.delx_xi(i);
            let mut delvxeta = d.delv_eta(i) * d.delx_eta(i);
            let mut delvxzeta = d.delv_zeta(i) * d.delx_zeta(i);

            if delvxxi > 0.0 {
                delvxxi = 0.0;
            }
            if delvxeta > 0.0 {
                delvxeta = 0.0;
            }
            if delvxzeta > 0.0 {
                delvxzeta = 0.0;
            }

            let rho = d.elem_mass(i) / (d.volo(i) * d.vnew(i));

            let qlin = -qlc_monoq
                * rho
                * (delvxxi * (1.0 - phixi)
                    + delvxeta * (1.0 - phieta)
                    + delvxzeta * (1.0 - phizeta));

            let qquad = qqc_monoq
                * rho
                * (delvxxi * delvxxi * (1.0 - phixi * phixi)
                    + delvxeta * delvxeta * (1.0 - phieta * phieta)
                    + delvxzeta * delvxzeta * (1.0 - phizeta * phizeta));

            (qlin, qquad)
        };

        d.set_qq(i, qquad);
        d.set_ql(i, qlin);
    }
}

/// One direction's limiter: normalize the neighbour gradients, average,
/// then clamp by the limited neighbours, zero and the max slope. The select
/// chain performs, per lane, exactly the scalar `if` cascade.
fn monoq_phi<V: SimdReal>(delvm0: V, delvp0: V, norm: V, limiter_mult: Real, max_slope: Real) -> V {
    let delvm = delvm0 * norm;
    let delvp = delvp0 * norm;
    let mut phi = V::splat(0.5) * (delvm + delvp);
    let delvm = delvm * V::splat(limiter_mult);
    let delvp = delvp * V::splat(limiter_mult);
    phi = delvm.select_lt(phi, delvm, phi);
    phi = delvp.select_lt(phi, delvp, phi);
    phi = phi.select_lt(V::zero(), V::zero(), phi);
    phi = phi.select_gt(V::splat(max_slope), V::splat(max_slope), phi);
    phi
}

/// Lane-blocked implementation of [`calc_monotonic_q_region_for_elems`]:
/// the region's element list is walked in cache-sized blocks of `W`-lane
/// groups; the boundary-condition neighbour fetches stay per-lane scalar
/// (they are irregular), everything after is lane arithmetic.
pub fn calc_monotonic_q_region_for_elems_lanes<const W: usize>(
    d: &Domain,
    elems: &[usize],
    p: &Params,
) {
    let block = simd::block_len(MONOQ_REGION_BYTES_PER_ELEM, W);
    let mut lo = 0;
    while lo < elems.len() {
        let hi = (lo + block).min(elems.len());
        let mut i = lo;
        while i + W <= hi {
            monoq_region_lane_group::<W>(d, elems, i, p);
            i += W;
        }
        while i < hi {
            monoq_region_lane_group::<1>(d, elems, i, p);
            i += 1;
        }
        lo = hi;
    }
}

/// One group of `W` entries of the region element list.
fn monoq_region_lane_group<const W: usize>(d: &Domain, elems: &[usize], i0: usize, p: &Params) {
    let idx = |l: usize| elems[i0 + l];
    let ptiny = Lanes::<W>::splat(PTINY);
    let one = Lanes::<W>::splat(1.0);
    let zero = Lanes::<W>::splat(0.0);

    // Phi ξ.
    let delv_xi = Lanes::<W>::gather(|l| d.delv_xi(idx(l)));
    let norm = one / (delv_xi + ptiny);
    let delvm = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::XI_M {
            0 | bc::XI_M_COMM => d.delv_xi(d.m_lxim[i]),
            bc::XI_M_SYMM => d.delv_xi(i),
            bc::XI_M_FREE => 0.0,
            other => unreachable!("bad ξ− boundary flags {other:#x}"),
        }
    });
    let delvp = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::XI_P {
            0 | bc::XI_P_COMM => d.delv_xi(d.m_lxip[i]),
            bc::XI_P_SYMM => d.delv_xi(i),
            bc::XI_P_FREE => 0.0,
            other => unreachable!("bad ξ+ boundary flags {other:#x}"),
        }
    });
    let phixi = monoq_phi(delvm, delvp, norm, p.monoq_limiter_mult, p.monoq_max_slope);

    // Phi η.
    let delv_eta = Lanes::<W>::gather(|l| d.delv_eta(idx(l)));
    let norm = one / (delv_eta + ptiny);
    let delvm = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::ETA_M {
            0 | bc::ETA_M_COMM => d.delv_eta(d.m_letam[i]),
            bc::ETA_M_SYMM => d.delv_eta(i),
            bc::ETA_M_FREE => 0.0,
            other => unreachable!("bad η− boundary flags {other:#x}"),
        }
    });
    let delvp = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::ETA_P {
            0 | bc::ETA_P_COMM => d.delv_eta(d.m_letap[i]),
            bc::ETA_P_SYMM => d.delv_eta(i),
            bc::ETA_P_FREE => 0.0,
            other => unreachable!("bad η+ boundary flags {other:#x}"),
        }
    });
    let phieta = monoq_phi(delvm, delvp, norm, p.monoq_limiter_mult, p.monoq_max_slope);

    // Phi ζ.
    let delv_zeta = Lanes::<W>::gather(|l| d.delv_zeta(idx(l)));
    let norm = one / (delv_zeta + ptiny);
    let delvm = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::ZETA_M {
            0 | bc::ZETA_M_COMM => d.delv_zeta(d.m_lzetam[i]),
            bc::ZETA_M_SYMM => d.delv_zeta(i),
            bc::ZETA_M_FREE => 0.0,
            other => unreachable!("bad ζ− boundary flags {other:#x}"),
        }
    });
    let delvp = Lanes::<W>::gather(|l| {
        let i = idx(l);
        match d.m_elem_bc[i] & bc::ZETA_P {
            0 | bc::ZETA_P_COMM => d.delv_zeta(d.m_lzetap[i]),
            bc::ZETA_P_SYMM => d.delv_zeta(i),
            bc::ZETA_P_FREE => 0.0,
            other => unreachable!("bad ζ+ boundary flags {other:#x}"),
        }
    });
    let phizeta = monoq_phi(delvm, delvp, norm, p.monoq_limiter_mult, p.monoq_max_slope);

    // Remove length scale. Both sides of the `vdov > 0` branch are
    // computed; the select discards the untaken lane's value.
    let mut delvxxi = delv_xi * Lanes::<W>::gather(|l| d.delx_xi(idx(l)));
    let mut delvxeta = delv_eta * Lanes::<W>::gather(|l| d.delx_eta(idx(l)));
    let mut delvxzeta = delv_zeta * Lanes::<W>::gather(|l| d.delx_zeta(idx(l)));

    delvxxi = delvxxi.select_gt(zero, zero, delvxxi);
    delvxeta = delvxeta.select_gt(zero, zero, delvxeta);
    delvxzeta = delvxzeta.select_gt(zero, zero, delvxzeta);

    let rho = Lanes::<W>::gather(|l| d.elem_mass(idx(l)))
        / (Lanes::<W>::gather(|l| d.volo(idx(l))) * Lanes::<W>::gather(|l| d.vnew(idx(l))));

    let qlin = Lanes::<W>::splat(-p.qlc_monoq)
        * rho
        * (delvxxi * (one - phixi) + delvxeta * (one - phieta) + delvxzeta * (one - phizeta));

    let qquad = Lanes::<W>::splat(p.qqc_monoq)
        * rho
        * (delvxxi * delvxxi * (one - phixi * phixi)
            + delvxeta * delvxeta * (one - phieta * phieta)
            + delvxzeta * delvxzeta * (one - phizeta * phizeta));

    let vdov = Lanes::<W>::gather(|l| d.vdov(idx(l)));
    let qlin = vdov.select_gt(zero, zero, qlin);
    let qquad = vdov.select_gt(zero, zero, qquad);

    for l in 0..W {
        let i = idx(l);
        d.set_qq(i, qquad.0[l]);
        d.set_ql(i, qlin.0[l]);
    }
}

/// `CalcQForElems` epilogue: abort if the artificial viscosity exceeded
/// `qstop` anywhere.
pub fn check_q_stop(d: &Domain, qstop: Real, range: Chunk) -> Result<(), LuleshError> {
    for i in range.iter() {
        if d.q(i) > qstop {
            return Err(LuleshError::QStopError);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::kinematics::calc_kinematics_for_elems;

    fn elems(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_elem(),
        }
    }

    fn prep(d: &Domain) {
        calc_kinematics_for_elems(d, 0.0, elems(d));
        crate::kernels::kinematics::calc_lagrange_elements_finish(d, elems(d)).unwrap();
    }

    #[test]
    fn static_mesh_has_zero_velocity_gradients() {
        let d = Domain::build(3, 1, 1, 1, 0);
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        for i in 0..d.num_elem() {
            assert!(d.delv_xi(i).abs() < 1e-14);
            assert!(d.delv_eta(i).abs() < 1e-14);
            assert!(d.delv_zeta(i).abs() < 1e-14);
            // delx is the element extent in each direction: mesh spacing.
            let h = crate::params::MESH_EXTENT / 3.0;
            assert!(
                (d.delx_xi(i) - h).abs() < 1e-9,
                "delx_xi = {}",
                d.delx_xi(i)
            );
            assert!((d.delx_eta(i) - h).abs() < 1e-9);
            assert!((d.delx_zeta(i) - h).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_compression_gives_negative_delv() {
        let d = Domain::build(3, 1, 1, 1, 0);
        // Velocity field pointing inward: v = -c·x.
        for n in 0..d.num_node() {
            d.set_xd(n, -0.1 * d.x(n));
            d.set_yd(n, -0.1 * d.y(n));
            d.set_zd(n, -0.1 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        for i in 0..d.num_elem() {
            assert!(d.delv_xi(i) < 0.0, "compression must give negative delv_xi");
            assert!(d.delv_eta(i) < 0.0);
            assert!(d.delv_zeta(i) < 0.0);
        }
    }

    #[test]
    fn q_region_zero_for_static_mesh() {
        let d = Domain::build(3, 2, 1, 1, 0);
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        for r in 0..d.num_reg() {
            calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[r], &p);
        }
        for i in 0..d.num_elem() {
            assert_eq!(d.qq(i), 0.0);
            assert_eq!(d.ql(i), 0.0);
        }
    }

    #[test]
    fn q_region_positive_under_uniform_compression() {
        let d = Domain::build(4, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xd(n, -0.5 * d.x(n));
            d.set_yd(n, -0.5 * d.y(n));
            d.set_zd(n, -0.5 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[0], &p);
        // Compression (vdov < 0) must produce non-negative q terms, and
        // strictly positive ones somewhere.
        let mut any = false;
        for i in 0..d.num_elem() {
            assert!(d.qq(i) >= 0.0);
            assert!(d.ql(i) >= 0.0);
            any |= d.ql(i) > 0.0;
        }
        assert!(any, "expected nonzero viscosity under compression");
    }

    #[test]
    fn expansion_gives_zero_q() {
        let d = Domain::build(3, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xd(n, 0.3 * d.x(n));
            d.set_yd(n, 0.3 * d.y(n));
            d.set_zd(n, 0.3 * d.z(n));
        }
        prep(&d);
        calc_monotonic_q_gradients_for_elems(&d, elems(&d));
        let p = Params::default();
        calc_monotonic_q_region_for_elems(&d, &d.regions.reg_elem_list[0], &p);
        for i in 0..d.num_elem() {
            assert_eq!(d.qq(i), 0.0, "vdov > 0 must zero the q terms");
            assert_eq!(d.ql(i), 0.0);
        }
    }

    #[test]
    fn qstop_check() {
        let d = Domain::build(2, 1, 1, 1, 0);
        assert!(check_q_stop(&d, 1e12, elems(&d)).is_ok());
        d.set_q(5, 2e12);
        assert_eq!(
            check_q_stop(&d, 1e12, elems(&d)),
            Err(LuleshError::QStopError)
        );
    }
}
