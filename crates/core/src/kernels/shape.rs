//! Shape-function machinery: Jacobian-based shape function derivatives,
//! element node normals, stress-to-nodal-force accumulation, the element
//! velocity gradient, and the 8-node corner gathers shared by every
//! element-loop kernel. Ports of `CalcElemShapeFunctionDerivatives`,
//! `SumElemFaceNormal`/`CalcElemNodeNormals`,
//! `SumElemStressesToNodeForces`, and `CalcElemVelocityGradient`.

use crate::domain::Domain;
use crate::simd::{Lanes, SimdReal};
use crate::types::{Index, Real};

/// Gather the 8 corner coordinates of element `e` into local arrays — the
/// single shared gather used by the stress and hourglass pipelines (and the
/// lane-blocked kernel variants, which call it once per lane).
#[inline]
pub fn gather_elem_coords(
    d: &Domain,
    e: Index,
    xl: &mut [Real; 8],
    yl: &mut [Real; 8],
    zl: &mut [Real; 8],
) {
    let nl = d.nodelist(e);
    for c in 0..8 {
        xl[c] = d.x(nl[c]);
        yl[c] = d.y(nl[c]);
        zl[c] = d.z(nl[c]);
    }
}

/// Gather the 8 corner velocities of element `e` into local arrays
/// (hourglass force and kinematics both need this shape of gather).
#[inline]
pub fn gather_elem_velocities(
    d: &Domain,
    e: Index,
    xdl: &mut [Real; 8],
    ydl: &mut [Real; 8],
    zdl: &mut [Real; 8],
) {
    let nl = d.nodelist(e);
    for c in 0..8 {
        xdl[c] = d.xd(nl[c]);
        ydl[c] = d.yd(nl[c]);
        zdl[c] = d.zd(nl[c]);
    }
}

/// Transposed coordinate gather for a lane group: corner `c` of elements
/// `e0 .. e0 + W` lands in `xl[c]`'s `W` lanes. Each lane performs exactly
/// the loads of [`gather_elem_coords`] for its element.
#[inline]
pub fn gather_elem_coords_lanes<const W: usize>(
    d: &Domain,
    e0: Index,
    xl: &mut [Lanes<W>; 8],
    yl: &mut [Lanes<W>; 8],
    zl: &mut [Lanes<W>; 8],
) {
    for l in 0..W {
        let nl = d.nodelist(e0 + l);
        for c in 0..8 {
            xl[c].0[l] = d.x(nl[c]);
            yl[c].0[l] = d.y(nl[c]);
            zl[c].0[l] = d.z(nl[c]);
        }
    }
}

/// Transposed velocity gather for a lane group (see
/// [`gather_elem_coords_lanes`]).
#[inline]
pub fn gather_elem_velocities_lanes<const W: usize>(
    d: &Domain,
    e0: Index,
    xdl: &mut [Lanes<W>; 8],
    ydl: &mut [Lanes<W>; 8],
    zdl: &mut [Lanes<W>; 8],
) {
    for l in 0..W {
        let nl = d.nodelist(e0 + l);
        for c in 0..8 {
            xdl[c].0[l] = d.xd(nl[c]);
            ydl[c].0[l] = d.yd(nl[c]);
            zdl[c].0[l] = d.zd(nl[c]);
        }
    }
}

/// Shape-function derivatives `b[dim][corner]` and the Jacobian-based
/// element volume. Generic over [`SimdReal`]: the `f64` instantiation is
/// the scalar reference; `Lanes<W>` processes `W` elements at once with a
/// bit-identical per-element operation sequence.
pub fn calc_elem_shape_function_derivatives<V: SimdReal>(
    x: &[V; 8],
    y: &[V; 8],
    z: &[V; 8],
    b: &mut [[V; 8]; 3],
) -> V {
    let c8 = V::splat(0.125);
    let fjxxi = c8 * ((x[6] - x[0]) + (x[5] - x[3]) - (x[7] - x[1]) - (x[4] - x[2]));
    let fjxet = c8 * ((x[6] - x[0]) - (x[5] - x[3]) + (x[7] - x[1]) - (x[4] - x[2]));
    let fjxze = c8 * ((x[6] - x[0]) + (x[5] - x[3]) + (x[7] - x[1]) + (x[4] - x[2]));

    let fjyxi = c8 * ((y[6] - y[0]) + (y[5] - y[3]) - (y[7] - y[1]) - (y[4] - y[2]));
    let fjyet = c8 * ((y[6] - y[0]) - (y[5] - y[3]) + (y[7] - y[1]) - (y[4] - y[2]));
    let fjyze = c8 * ((y[6] - y[0]) + (y[5] - y[3]) + (y[7] - y[1]) + (y[4] - y[2]));

    let fjzxi = c8 * ((z[6] - z[0]) + (z[5] - z[3]) - (z[7] - z[1]) - (z[4] - z[2]));
    let fjzet = c8 * ((z[6] - z[0]) - (z[5] - z[3]) + (z[7] - z[1]) - (z[4] - z[2]));
    let fjzze = c8 * ((z[6] - z[0]) + (z[5] - z[3]) + (z[7] - z[1]) + (z[4] - z[2]));

    // Cofactors of the Jacobian.
    let cjxxi = fjyet * fjzze - fjzet * fjyze;
    let cjxet = -fjyxi * fjzze + fjzxi * fjyze;
    let cjxze = fjyxi * fjzet - fjzxi * fjyet;

    let cjyxi = -fjxet * fjzze + fjzet * fjxze;
    let cjyet = fjxxi * fjzze - fjzxi * fjxze;
    let cjyze = -fjxxi * fjzet + fjzxi * fjxet;

    let cjzxi = fjxet * fjyze - fjyet * fjxze;
    let cjzet = -fjxxi * fjyze + fjyxi * fjxze;
    let cjzze = fjxxi * fjyet - fjyxi * fjxet;

    // Calculate partials: this form assumes a cofactor center evaluation.
    b[0][0] = -cjxxi - cjxet - cjxze;
    b[0][1] = cjxxi - cjxet - cjxze;
    b[0][2] = cjxxi + cjxet - cjxze;
    b[0][3] = -cjxxi + cjxet - cjxze;
    b[0][4] = -b[0][2];
    b[0][5] = -b[0][3];
    b[0][6] = -b[0][0];
    b[0][7] = -b[0][1];

    b[1][0] = -cjyxi - cjyet - cjyze;
    b[1][1] = cjyxi - cjyet - cjyze;
    b[1][2] = cjyxi + cjyet - cjyze;
    b[1][3] = -cjyxi + cjyet - cjyze;
    b[1][4] = -b[1][2];
    b[1][5] = -b[1][3];
    b[1][6] = -b[1][0];
    b[1][7] = -b[1][1];

    b[2][0] = -cjzxi - cjzet - cjzze;
    b[2][1] = cjzxi - cjzet - cjzze;
    b[2][2] = cjzxi + cjzet - cjzze;
    b[2][3] = -cjzxi + cjzet - cjzze;
    b[2][4] = -b[2][2];
    b[2][5] = -b[2][3];
    b[2][6] = -b[2][0];
    b[2][7] = -b[2][1];

    // Jacobian determinant → volume.
    V::splat(8.0) * (fjxet * cjxet + fjyet * cjyet + fjzet * cjzet)
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn sum_elem_face_normal<V: SimdReal>(
    normal_x: &mut [V; 8],
    normal_y: &mut [V; 8],
    normal_z: &mut [V; 8],
    (i0, i1, i2, i3): (usize, usize, usize, usize),
    x: &[V; 8],
    y: &[V; 8],
    z: &[V; 8],
) {
    let half = V::splat(0.5);
    let quarter = V::splat(0.25);
    let bisect_x0 = half * (x[i3] + x[i2] - x[i1] - x[i0]);
    let bisect_y0 = half * (y[i3] + y[i2] - y[i1] - y[i0]);
    let bisect_z0 = half * (z[i3] + z[i2] - z[i1] - z[i0]);
    let bisect_x1 = half * (x[i2] + x[i1] - x[i3] - x[i0]);
    let bisect_y1 = half * (y[i2] + y[i1] - y[i3] - y[i0]);
    let bisect_z1 = half * (z[i2] + z[i1] - z[i3] - z[i0]);
    let area_x = quarter * (bisect_y0 * bisect_z1 - bisect_z0 * bisect_y1);
    let area_y = quarter * (bisect_z0 * bisect_x1 - bisect_x0 * bisect_z1);
    let area_z = quarter * (bisect_x0 * bisect_y1 - bisect_y0 * bisect_x1);

    for i in [i0, i1, i2, i3] {
        normal_x[i] = normal_x[i] + area_x;
        normal_y[i] = normal_y[i] + area_y;
        normal_z[i] = normal_z[i] + area_z;
    }
}

/// Outward-ish node normals of an element: the sum over the element's six
/// faces of each face's area vector, distributed to the face's four corners.
pub fn calc_elem_node_normals<V: SimdReal>(
    pfx: &mut [V; 8],
    pfy: &mut [V; 8],
    pfz: &mut [V; 8],
    x: &[V; 8],
    y: &[V; 8],
    z: &[V; 8],
) {
    pfx.fill(V::zero());
    pfy.fill(V::zero());
    pfz.fill(V::zero());
    // Face corner tuples, reference order.
    sum_elem_face_normal(pfx, pfy, pfz, (0, 1, 2, 3), x, y, z);
    sum_elem_face_normal(pfx, pfy, pfz, (0, 4, 5, 1), x, y, z);
    sum_elem_face_normal(pfx, pfy, pfz, (1, 5, 6, 2), x, y, z);
    sum_elem_face_normal(pfx, pfy, pfz, (2, 6, 7, 3), x, y, z);
    sum_elem_face_normal(pfx, pfy, pfz, (3, 7, 4, 0), x, y, z);
    sum_elem_face_normal(pfx, pfy, pfz, (4, 7, 6, 5), x, y, z);
}

/// Per-corner forces from the (diagonal, isotropic) element stress:
/// `f = −σ · normal`.
pub fn sum_elem_stresses_to_node_forces<V: SimdReal>(
    b: &[[V; 8]; 3],
    stress_xx: V,
    stress_yy: V,
    stress_zz: V,
    fx: &mut [V; 8],
    fy: &mut [V; 8],
    fz: &mut [V; 8],
) {
    for i in 0..8 {
        fx[i] = -stress_xx * b[0][i];
        fy[i] = -stress_yy * b[1][i];
        fz[i] = -stress_zz * b[2][i];
    }
}

/// Principal components of the element velocity gradient
/// (`CalcElemVelocityGradient`; only `d[0..3]` are consumed downstream but
/// we compute all six like the reference).
pub fn calc_elem_velocity_gradient(
    xvel: &[Real; 8],
    yvel: &[Real; 8],
    zvel: &[Real; 8],
    b: &[[Real; 8]; 3],
    detj: Real,
) -> [Real; 6] {
    let inv_detj = 1.0 / detj;
    let pfx = &b[0];
    let pfy = &b[1];
    let pfz = &b[2];

    let mut d = [0.0; 6];
    d[0] = inv_detj
        * (pfx[0] * (xvel[0] - xvel[6])
            + pfx[1] * (xvel[1] - xvel[7])
            + pfx[2] * (xvel[2] - xvel[4])
            + pfx[3] * (xvel[3] - xvel[5]));
    d[1] = inv_detj
        * (pfy[0] * (yvel[0] - yvel[6])
            + pfy[1] * (yvel[1] - yvel[7])
            + pfy[2] * (yvel[2] - yvel[4])
            + pfy[3] * (yvel[3] - yvel[5]));
    d[2] = inv_detj
        * (pfz[0] * (zvel[0] - zvel[6])
            + pfz[1] * (zvel[1] - zvel[7])
            + pfz[2] * (zvel[2] - zvel[4])
            + pfz[3] * (zvel[3] - zvel[5]));

    let dyddx = inv_detj
        * (pfx[0] * (yvel[0] - yvel[6])
            + pfx[1] * (yvel[1] - yvel[7])
            + pfx[2] * (yvel[2] - yvel[4])
            + pfx[3] * (yvel[3] - yvel[5]));
    let dxddy = inv_detj
        * (pfy[0] * (xvel[0] - xvel[6])
            + pfy[1] * (xvel[1] - xvel[7])
            + pfy[2] * (xvel[2] - xvel[4])
            + pfy[3] * (xvel[3] - xvel[5]));
    let dzddx = inv_detj
        * (pfx[0] * (zvel[0] - zvel[6])
            + pfx[1] * (zvel[1] - zvel[7])
            + pfx[2] * (zvel[2] - zvel[4])
            + pfx[3] * (zvel[3] - zvel[5]));
    let dxddz = inv_detj
        * (pfz[0] * (xvel[0] - xvel[6])
            + pfz[1] * (xvel[1] - xvel[7])
            + pfz[2] * (xvel[2] - xvel[4])
            + pfz[3] * (xvel[3] - xvel[5]));
    let dzddy = inv_detj
        * (pfy[0] * (zvel[0] - zvel[6])
            + pfy[1] * (zvel[1] - zvel[7])
            + pfy[2] * (zvel[2] - zvel[4])
            + pfy[3] * (zvel[3] - zvel[5]));
    let dyddz = inv_detj
        * (pfz[0] * (yvel[0] - yvel[6])
            + pfz[1] * (yvel[1] - yvel[7])
            + pfz[2] * (yvel[2] - yvel[4])
            + pfz[3] * (yvel[3] - yvel[5]));

    d[5] = 0.5 * (dxddy + dyddx);
    d[4] = 0.5 * (dxddz + dzddx);
    d[3] = 0.5 * (dzddy + dyddz);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::volume::{calc_elem_volume, unit_cube};
    use proptest::prelude::*;

    #[test]
    fn gather_helpers_match_domain_accessors() {
        let d = Domain::build(3, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xd(n, (n as Real).sin());
            d.set_yd(n, (n as Real).cos());
            d.set_zd(n, n as Real * 0.25);
        }
        let mut x = [0.0; 8];
        let mut y = [0.0; 8];
        let mut z = [0.0; 8];
        let mut xd = [0.0; 8];
        let mut yd = [0.0; 8];
        let mut zd = [0.0; 8];
        for e in [0, 7, d.num_elem() - 1] {
            gather_elem_coords(&d, e, &mut x, &mut y, &mut z);
            gather_elem_velocities(&d, e, &mut xd, &mut yd, &mut zd);
            for (c, &n) in d.nodelist(e).iter().enumerate() {
                assert_eq!(x[c], d.x(n));
                assert_eq!(y[c], d.y(n));
                assert_eq!(z[c], d.z(n));
                assert_eq!(xd[c], d.xd(n));
                assert_eq!(yd[c], d.yd(n));
                assert_eq!(zd[c], d.zd(n));
            }
        }
    }

    #[test]
    fn shape_derivative_volume_matches_triple_product_for_cube() {
        let (x, y, z) = unit_cube();
        let mut b = [[0.0; 8]; 3];
        let v = calc_elem_shape_function_derivatives(&x, &y, &z, &mut b);
        assert!((v - calc_elem_volume(&x, &y, &z)).abs() < 1e-14);
    }

    #[test]
    fn node_normals_sum_to_zero_for_closed_element() {
        // The surface of a closed polyhedron has zero net area vector.
        let (mut x, mut y, mut z) = unit_cube();
        // Perturb to a general hexahedron.
        x[6] += 0.13;
        y[2] -= 0.07;
        z[5] += 0.11;
        let mut pfx = [1.0; 8]; // nonzero to verify the fill(0.0)
        let mut pfy = [1.0; 8];
        let mut pfz = [1.0; 8];
        calc_elem_node_normals(&mut pfx, &mut pfy, &mut pfz, &x, &y, &z);
        assert!(pfx.iter().sum::<Real>().abs() < 1e-12);
        assert!(pfy.iter().sum::<Real>().abs() < 1e-12);
        assert!(pfz.iter().sum::<Real>().abs() < 1e-12);
    }

    #[test]
    fn unit_cube_node_normals() {
        // For the unit cube, each corner accumulates ±1/4 area from each of
        // its three faces; corner 0 touches faces at x=0, y=0, z=0 whose
        // outward... the reference convention gives symmetric ±0.25 values.
        let (x, y, z) = unit_cube();
        let mut pfx = [0.0; 8];
        let mut pfy = [0.0; 8];
        let mut pfz = [0.0; 8];
        calc_elem_node_normals(&mut pfx, &mut pfy, &mut pfz, &x, &y, &z);
        for i in 0..8 {
            assert!((pfx[i].abs() - 0.25).abs() < 1e-12, "pfx[{i}] = {}", pfx[i]);
            assert!((pfy[i].abs() - 0.25).abs() < 1e-12);
            assert!((pfz[i].abs() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn stresses_to_forces_scaling() {
        let b = [[1.0; 8], [2.0; 8], [3.0; 8]];
        let mut fx = [0.0; 8];
        let mut fy = [0.0; 8];
        let mut fz = [0.0; 8];
        sum_elem_stresses_to_node_forces(&b, 2.0, -1.0, 0.5, &mut fx, &mut fy, &mut fz);
        assert!(fx.iter().all(|&f| (f + 2.0).abs() < 1e-15));
        assert!(fy.iter().all(|&f| (f - 2.0).abs() < 1e-15));
        assert!(fz.iter().all(|&f| (f + 1.5).abs() < 1e-15));
    }

    #[test]
    fn velocity_gradient_of_uniform_expansion() {
        // v = (x, y, z) gives D = I (divergence 3, no shear).
        let (x, y, z) = unit_cube();
        let mut b = [[0.0; 8]; 3];
        let detj = calc_elem_shape_function_derivatives(&x, &y, &z, &mut b);
        let d = calc_elem_velocity_gradient(&x, &y, &z, &b, detj);
        assert!((d[0] - 1.0).abs() < 1e-12, "dxx = {}", d[0]);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert!(d[3].abs() < 1e-12 && d[4].abs() < 1e-12 && d[5].abs() < 1e-12);
    }

    #[test]
    fn velocity_gradient_of_rigid_translation_is_zero() {
        let (x, y, z) = unit_cube();
        let mut b = [[0.0; 8]; 3];
        let detj = calc_elem_shape_function_derivatives(&x, &y, &z, &mut b);
        let vel = [3.7; 8];
        let d = calc_elem_velocity_gradient(&vel, &vel, &vel, &b, detj);
        for v in d {
            assert!(v.abs() < 1e-12);
        }
    }

    proptest! {
        /// The Jacobian volume matches the exact triple-product volume for
        /// parallelepipeds (affine images of the cube), where the trilinear
        /// map is exactly linear.
        #[test]
        fn jacobian_volume_exact_for_affine_images(
            a in 0.5f64..2.0, bscale in 0.5f64..2.0, c in 0.5f64..2.0,
            shear in -0.5f64..0.5,
        ) {
            let (x0, y0, z0) = unit_cube();
            let mut x = [0.0; 8];
            let mut y = [0.0; 8];
            let mut z = [0.0; 8];
            for i in 0..8 {
                x[i] = a * x0[i] + shear * y0[i];
                y[i] = bscale * y0[i];
                z[i] = c * z0[i] + shear * x0[i];
            }
            let mut b = [[0.0; 8]; 3];
            let vj = calc_elem_shape_function_derivatives(&x, &y, &z, &mut b);
            let vt = calc_elem_volume(&x, &y, &z);
            prop_assert!((vj - vt).abs() < 1e-10 * vt.abs().max(1.0));
        }

        /// Node normals always sum to (0,0,0) over a closed element.
        #[test]
        fn normals_closed_surface(seed in proptest::array::uniform24(-0.25f64..0.25)) {
            let (mut x, mut y, mut z) = unit_cube();
            for i in 0..8 {
                x[i] += seed[i];
                y[i] += seed[8 + i];
                z[i] += seed[16 + i];
            }
            let mut pfx = [0.0; 8];
            let mut pfy = [0.0; 8];
            let mut pfz = [0.0; 8];
            calc_elem_node_normals(&mut pfx, &mut pfy, &mut pfz, &x, &y, &z);
            prop_assert!(pfx.iter().sum::<Real>().abs() < 1e-10);
            prop_assert!(pfy.iter().sum::<Real>().abs() < 1e-10);
            prop_assert!(pfz.iter().sum::<Real>().abs() < 1e-10);
        }
    }
}
