//! Timestep constraints (`CalcCourantConstraintForElems`,
//! `CalcHydroConstraintForElems`) — region-wise minimum reductions.

use crate::domain::Domain;
use crate::types::{Index, Real};

/// Courant (sound-crossing) constraint over a region sublist. Returns the
/// minimum candidate dt, or `None` when no element in the slice is moving
/// (`vdov == 0`), matching the reference's "only update if an element was
/// found" behaviour.
pub fn calc_courant_constraint_for_elems(d: &Domain, elems: &[Index], qqc: Real) -> Option<Real> {
    let qqc2 = 64.0 * qqc * qqc;
    let mut dtcourant: Real = 1.0e20;
    let mut found = false;

    for &indx in elems {
        let mut dtf = d.ss(indx) * d.ss(indx);
        let vdov = d.vdov(indx);
        if vdov < 0.0 {
            dtf += qqc2 * d.arealg(indx) * d.arealg(indx) * vdov * vdov;
        }
        dtf = dtf.sqrt();
        dtf = d.arealg(indx) / dtf;

        if vdov != 0.0 && dtf < dtcourant {
            dtcourant = dtf;
            found = true;
        }
    }
    found.then_some(dtcourant)
}

/// Hydro (volume-change) constraint over a region sublist.
pub fn calc_hydro_constraint_for_elems(d: &Domain, elems: &[Index], dvovmax: Real) -> Option<Real> {
    let mut dthydro: Real = 1.0e20;
    let mut found = false;

    for &indx in elems {
        let vdov = d.vdov(indx);
        if vdov != 0.0 {
            let dtdvov = dvovmax / (vdov.abs() + 1.0e-20);
            if dthydro > dtdvov {
                dthydro = dtdvov;
                found = true;
            }
        }
    }
    found.then_some(dthydro)
}

/// `CalcTimeConstraintsForElems`: reduce both constraints over all regions.
/// Returns `(dtcourant, dthydro)` starting from `1e20` sentinels.
pub fn calc_time_constraints(d: &Domain, qqc: Real, dvovmax: Real) -> (Real, Real) {
    let mut dtcourant: Real = 1.0e20;
    let mut dthydro: Real = 1.0e20;
    for r in 0..d.num_reg() {
        let elems = &d.regions.reg_elem_list[r];
        if let Some(c) = calc_courant_constraint_for_elems(d, elems, qqc) {
            dtcourant = dtcourant.min(c);
        }
        if let Some(h) = calc_hydro_constraint_for_elems(d, elems, dvovmax) {
            dthydro = dthydro.min(h);
        }
    }
    (dtcourant, dthydro)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_mesh_yields_no_constraints() {
        let d = Domain::build(3, 2, 1, 1, 0);
        // vdov = 0 everywhere → neither constraint applies.
        let (c, h) = calc_time_constraints(&d, 2.0, 0.1);
        assert_eq!(c, 1.0e20);
        assert_eq!(h, 1.0e20);
    }

    #[test]
    fn courant_scales_with_length_over_sound_speed() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_ss(3, 2.0);
        d.set_arealg(3, 0.5);
        d.set_vdov(3, 1.0); // moving, expanding: no q augmentation
        let elems: Vec<usize> = (0..d.num_elem()).collect();
        let c = calc_courant_constraint_for_elems(&d, &elems, 2.0).unwrap();
        assert!((c - 0.25).abs() < 1e-15, "dt = h/ss = 0.25, got {c}");
    }

    #[test]
    fn compression_tightens_courant() {
        let d = Domain::build(2, 1, 1, 1, 0);
        for e in 0..d.num_elem() {
            d.set_ss(e, 1.0);
            d.set_arealg(e, 1.0);
        }
        let elems: Vec<usize> = (0..d.num_elem()).collect();
        d.set_vdov(0, 1.0);
        let expanding = calc_courant_constraint_for_elems(&d, &elems, 2.0).unwrap();
        d.set_vdov(0, -1.0);
        let compressing = calc_courant_constraint_for_elems(&d, &elems, 2.0).unwrap();
        assert!(
            compressing < expanding,
            "compression adds the q term: {compressing} !< {expanding}"
        );
    }

    #[test]
    fn hydro_is_dvovmax_over_vdov() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_vdov(7, -0.5);
        let elems: Vec<usize> = (0..d.num_elem()).collect();
        let h = calc_hydro_constraint_for_elems(&d, &elems, 0.1).unwrap();
        assert!((h - 0.1 / (0.5 + 1.0e-20)).abs() < 1e-15);
    }

    #[test]
    fn reduction_over_regions_takes_global_min() {
        let d = Domain::build(3, 3, 1, 1, 0);
        for e in 0..d.num_elem() {
            d.set_ss(e, 1.0);
            d.set_arealg(e, 1.0);
            d.set_vdov(e, 0.1);
        }
        // Make one element (in whatever region it is) the binding one.
        d.set_arealg(13, 0.01);
        let (c, h) = calc_time_constraints(&d, 2.0, 0.1);
        assert!((c - 0.01).abs() < 1e-12);
        assert!((h - 0.1 / (0.1 + 1.0e-20)).abs() < 1e-12);
    }
}
