//! Node-centered update kernels of `LagrangeNodal`:
//! `CalcAccelerationForNodes`, `ApplyAccelerationBoundaryConditionsForNodes`,
//! `CalcVelocityForNodes` and `CalcPositionForNodes`.
//!
//! The paper's chain trick (T2) applies here: velocity and position updates
//! for a node partition depend only on that partition's earlier values, so
//! the task driver chains them without barriers.

use crate::domain::Domain;
use crate::types::Real;
use parutil::Chunk;

/// `a = F / m` per node.
pub fn calc_acceleration_for_nodes(d: &Domain, range: Chunk) {
    for n in range.iter() {
        let m = d.nodal_mass(n);
        d.set_xdd(n, d.fx(n) / m);
        d.set_ydd(n, d.fy(n) / m);
        d.set_zdd(n, d.fz(n) / m);
    }
}

/// Zero the acceleration component normal to each symmetry plane. The
/// range indexes into the symmetry node lists; for rectangular subdomains
/// the three lists have different lengths (and the ζ list may be empty),
/// so each is guarded individually. Drivers pass a range over
/// [`symm_list_len`].
pub fn apply_acceleration_boundary_conditions(d: &Domain, range: Chunk) {
    for i in range.iter() {
        if i < d.m_symm_x.len() {
            d.set_xdd(d.m_symm_x[i], 0.0);
        }
        if i < d.m_symm_y.len() {
            d.set_ydd(d.m_symm_y[i], 0.0);
        }
        if i < d.m_symm_z.len() {
            d.set_zdd(d.m_symm_z[i], 0.0);
        }
    }
}

/// Loop bound for [`apply_acceleration_boundary_conditions`]: the longest
/// symmetry list.
pub fn symm_list_len(d: &Domain) -> usize {
    d.m_symm_x.len().max(d.m_symm_y.len()).max(d.m_symm_z.len())
}

/// Symmetry-plane acceleration BC applied over a *node-index* range via
/// index arithmetic (node `n` lies on the x=0 plane iff `n % (s+1) == 0`,
/// etc.). Produces exactly the same stores as
/// [`apply_acceleration_boundary_conditions`] but is node-partitionable, so
/// the task driver can fuse it into its per-partition node chains (paper
/// trick T3). Each axis is gated on its symmetry list being non-empty: on
/// a 3-D rank grid a sub-brick's local min plane may be a communication
/// interface rather than a global symmetry plane, and zeroing accelerations
/// there would corrupt the halo-summed forces.
pub fn apply_acceleration_bc_by_node_range(d: &Domain, range: Chunk) {
    let shape = d.shape();
    let rn = shape.nx + 1;
    let pn = shape.nodes_per_plane();
    let has_symm_x = !d.m_symm_x.is_empty();
    let has_symm_y = !d.m_symm_y.is_empty();
    let has_symm_z = !d.m_symm_z.is_empty();
    for n in range.iter() {
        if has_symm_x && n % rn == 0 {
            d.set_xdd(n, 0.0);
        }
        if has_symm_y && (n / rn).is_multiple_of(shape.ny + 1) {
            d.set_ydd(n, 0.0);
        }
        if has_symm_z && n / pn == 0 {
            d.set_zdd(n, 0.0);
        }
    }
}

/// `v += a·dt` per node, with tiny velocities snapped to zero (`u_cut`).
pub fn calc_velocity_for_nodes(d: &Domain, dt: Real, u_cut: Real, range: Chunk) {
    for n in range.iter() {
        let mut xdtmp = d.xd(n) + d.xdd(n) * dt;
        if xdtmp.abs() < u_cut {
            xdtmp = 0.0;
        }
        d.set_xd(n, xdtmp);

        let mut ydtmp = d.yd(n) + d.ydd(n) * dt;
        if ydtmp.abs() < u_cut {
            ydtmp = 0.0;
        }
        d.set_yd(n, ydtmp);

        let mut zdtmp = d.zd(n) + d.zdd(n) * dt;
        if zdtmp.abs() < u_cut {
            zdtmp = 0.0;
        }
        d.set_zd(n, zdtmp);
    }
}

/// `x += v·dt` per node.
pub fn calc_position_for_nodes(d: &Domain, dt: Real, range: Chunk) {
    for n in range.iter() {
        d.set_x(n, d.x(n) + d.xd(n) * dt);
        d.set_y(n, d.y(n) + d.yd(n) * dt);
        d.set_z(n, d.z(n) + d.zd(n) * dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(d: &Domain) -> Chunk {
        Chunk {
            begin: 0,
            end: d.num_node(),
        }
    }

    #[test]
    fn acceleration_is_force_over_mass() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_fx(5, 3.0);
        d.set_fy(5, -1.0);
        calc_acceleration_for_nodes(&d, nodes(&d));
        let m = d.nodal_mass(5);
        assert!((d.xdd(5) - 3.0 / m).abs() < 1e-15);
        assert!((d.ydd(5) + 1.0 / m).abs() < 1e-15);
        assert_eq!(d.zdd(5), 0.0);
    }

    #[test]
    fn symmetry_bc_zeroes_normal_acceleration() {
        let d = Domain::build(3, 1, 1, 1, 0);
        for n in 0..d.num_node() {
            d.set_xdd(n, 1.0);
            d.set_ydd(n, 1.0);
            d.set_zdd(n, 1.0);
        }
        apply_acceleration_boundary_conditions(
            &d,
            Chunk {
                begin: 0,
                end: d.m_symm_x.len(),
            },
        );
        for &n in &d.m_symm_x {
            assert_eq!(d.xdd(n), 0.0);
        }
        for &n in &d.m_symm_y {
            assert_eq!(d.ydd(n), 0.0);
        }
        for &n in &d.m_symm_z {
            assert_eq!(d.zdd(n), 0.0);
        }
        // The far corner node (on no symmetry plane) keeps its acceleration.
        let far = d.num_node() - 1;
        assert_eq!(d.xdd(far), 1.0);
    }

    #[test]
    fn bc_by_index_matches_bc_by_list() {
        let d1 = Domain::build(4, 1, 1, 1, 0);
        let d2 = Domain::build(4, 1, 1, 1, 0);
        for n in 0..d1.num_node() {
            for d in [&d1, &d2] {
                d.set_xdd(n, 1.0 + n as Real);
                d.set_ydd(n, 2.0 + n as Real);
                d.set_zdd(n, 3.0 + n as Real);
            }
        }
        apply_acceleration_boundary_conditions(
            &d1,
            Chunk {
                begin: 0,
                end: d1.m_symm_x.len(),
            },
        );
        for range in parutil::chunks_of(d2.num_node(), 9) {
            apply_acceleration_bc_by_node_range(&d2, range);
        }
        for n in 0..d1.num_node() {
            assert_eq!(d1.xdd(n), d2.xdd(n), "node {n}");
            assert_eq!(d1.ydd(n), d2.ydd(n));
            assert_eq!(d1.zdd(n), d2.zdd(n));
        }
    }

    #[test]
    fn bc_by_index_matches_bc_by_list_on_offset_subbricks() {
        // Sub-bricks of a 3-D rank grid: a brick whose local x=0 (or y=0,
        // z=0) plane is a communication interface has an empty symmetry
        // list for that axis, and the index-arithmetic variant must not
        // zero accelerations there. One brick per grid octant of a 2x2x2
        // split of a size-4 cube.
        use crate::mesh::MeshShape;
        for &(ox, oy, oz) in &[
            (0, 0, 0),
            (2, 0, 0),
            (0, 2, 0),
            (0, 0, 2),
            (2, 2, 0),
            (2, 2, 2),
        ] {
            let shape = MeshShape::brick((2, 2, 2), (4, 4, 4), (ox, oy, oz));
            let d1 = Domain::build_subdomain(shape, 1, 1, 1, 0);
            let d2 = Domain::build_subdomain(shape, 1, 1, 1, 0);
            for n in 0..d1.num_node() {
                for d in [&d1, &d2] {
                    d.set_xdd(n, 1.0 + n as Real);
                    d.set_ydd(n, 2.0 + n as Real);
                    d.set_zdd(n, 3.0 + n as Real);
                }
            }
            apply_acceleration_boundary_conditions(
                &d1,
                Chunk {
                    begin: 0,
                    end: symm_list_len(&d1),
                },
            );
            for range in parutil::chunks_of(d2.num_node(), 7) {
                apply_acceleration_bc_by_node_range(&d2, range);
            }
            for n in 0..d1.num_node() {
                assert_eq!(d1.xdd(n), d2.xdd(n), "offset {:?} node {n}", (ox, oy, oz));
                assert_eq!(d1.ydd(n), d2.ydd(n), "offset {:?} node {n}", (ox, oy, oz));
                assert_eq!(d1.zdd(n), d2.zdd(n), "offset {:?} node {n}", (ox, oy, oz));
            }
        }
    }

    #[test]
    fn velocity_integration_and_ucut() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_xd(0, 1.0);
        d.set_xdd(0, 2.0);
        d.set_yd(0, 1e-8);
        d.set_ydd(0, 0.0);
        calc_velocity_for_nodes(&d, 0.5, 1e-7, nodes(&d));
        assert!((d.xd(0) - 2.0).abs() < 1e-15);
        assert_eq!(d.yd(0), 0.0, "below u_cut must snap to zero");
    }

    #[test]
    fn position_integration() {
        let d = Domain::build(2, 1, 1, 1, 0);
        let x0 = d.x(7);
        d.set_xd(7, 2.0);
        calc_position_for_nodes(&d, 0.25, nodes(&d));
        assert!((d.x(7) - (x0 + 0.5)).abs() < 1e-15);
    }

    #[test]
    fn chunked_matches_full_range() {
        let d1 = Domain::build(3, 1, 1, 1, 0);
        let d2 = Domain::build(3, 1, 1, 1, 0);
        for n in 0..d1.num_node() {
            for d in [&d1, &d2] {
                d.set_fx(n, (n as Real).sin());
                d.set_fy(n, (n as Real).cos());
                d.set_fz(n, 0.1 * n as Real);
            }
        }
        calc_acceleration_for_nodes(&d1, nodes(&d1));
        calc_velocity_for_nodes(&d1, 1e-3, 1e-7, nodes(&d1));
        calc_position_for_nodes(&d1, 1e-3, nodes(&d1));
        for range in parutil::chunks_of(d2.num_node(), 11) {
            calc_acceleration_for_nodes(&d2, range);
        }
        for range in parutil::chunks_of(d2.num_node(), 13) {
            calc_velocity_for_nodes(&d2, 1e-3, 1e-7, range);
        }
        for range in parutil::chunks_of(d2.num_node(), 17) {
            calc_position_for_nodes(&d2, 1e-3, range);
        }
        for n in 0..d1.num_node() {
            assert_eq!(d1.x(n), d2.x(n));
            assert_eq!(d1.xd(n), d2.xd(n));
            assert_eq!(d1.xdd(n), d2.xdd(n));
        }
    }
}
