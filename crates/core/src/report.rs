//! Run reporting in the artifact's CSV format
//! (`size,regions,iterations,threads,runtime,result`) plus the verbose
//! final-output block the reference prints.

use crate::domain::Domain;
use crate::params::SimState;
use crate::validate::{final_origin_energy, symmetry_check};
use std::time::Duration;

/// Everything a finished run reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Problem size (edge elements).
    pub size: usize,
    /// Region count.
    pub regions: usize,
    /// Iterations executed.
    pub iterations: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock runtime.
    pub elapsed: Duration,
    /// Final origin energy.
    pub final_energy: f64,
    /// Max |Δe| over transposed ζ=0-plane elements.
    pub max_abs_diff: f64,
    /// Total |Δe|.
    pub total_abs_diff: f64,
    /// Max relative Δe.
    pub max_rel_diff: f64,
    /// Final simulation time.
    pub final_time: f64,
    /// Final dt.
    pub final_dt: f64,
}

impl RunReport {
    /// Assemble the report from a finished domain/state pair.
    pub fn collect(d: &Domain, state: &SimState, threads: usize, elapsed: Duration) -> Self {
        let sym = symmetry_check(d);
        Self {
            size: d.size(),
            regions: d.num_reg(),
            iterations: state.cycle,
            threads,
            elapsed,
            final_energy: final_origin_energy(d),
            max_abs_diff: sym.max_abs_diff,
            total_abs_diff: sym.total_abs_diff,
            max_rel_diff: sym.max_rel_diff,
            final_time: state.time,
            final_dt: state.deltatime,
        }
    }

    /// The CSV header expected by the artifact's analysis scripts.
    pub const CSV_HEADER: &'static str = "size,regions,iterations,threads,runtime,result";

    /// One CSV row (`runtime` in seconds, `result` = final origin energy).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.6},{:.6e}",
            self.size,
            self.regions,
            self.iterations,
            self.threads,
            self.elapsed.as_secs_f64(),
            self.final_energy,
        )
    }

    /// The verbose block the reference prints after a run.
    pub fn verbose(&self) -> String {
        format!(
            "Run completed:\n\
             \x20  Problem size        =  {}\n\
             \x20  MPI tasks           =  1\n\
             \x20  Iteration count     =  {}\n\
             \x20  Final Origin Energy =  {:.6e}\n\
             \x20  Testing Plane 0 of Energy Array on rank 0:\n\
             \x20       MaxAbsDiff   = {:.6e}\n\
             \x20       TotalAbsDiff = {:.6e}\n\
             \x20       MaxRelDiff   = {:.6e}\n\
             Elapsed time         = {:>10.2} (s)",
            self.size,
            self.iterations,
            self.final_energy,
            self.max_abs_diff,
            self.total_abs_diff,
            self.max_rel_diff,
            self.elapsed.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::params::SimState;

    #[test]
    fn csv_row_shape() {
        let d = Domain::build(4, 2, 1, 1, 0);
        let mut state = SimState::new(d.initial_dt());
        state.cycle = 7;
        let r = RunReport::collect(&d, &state, 3, Duration::from_millis(1500));
        let row = r.csv_row();
        let fields: Vec<_> = row.split(',').collect();
        assert_eq!(fields.len(), 6);
        assert_eq!(fields[0], "4");
        assert_eq!(fields[1], "2");
        assert_eq!(fields[2], "7");
        assert_eq!(fields[3], "3");
        assert!((fields[4].parse::<f64>().unwrap() - 1.5).abs() < 1e-9);
        assert!(fields[5].parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn verbose_mentions_key_numbers() {
        let d = Domain::build(4, 2, 1, 1, 0);
        let state = SimState::new(d.initial_dt());
        let r = RunReport::collect(&d, &state, 1, Duration::from_secs(2));
        let v = r.verbose();
        assert!(v.contains("Final Origin Energy"));
        assert!(v.contains("Problem size        =  4"));
    }
}
