//! Simulation parameters and cut-offs.
//!
//! Values are the LULESH 2.0 defaults (constructor of `Domain` in the C++
//! reference). `dtfixed < 0` selects the variable-timestep path, which all
//! of the paper's experiments use.

use crate::types::Real;

/// All scalar control parameters of a LULESH run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Fixed time increment; negative means "compute dt from constraints".
    pub dtfixed: Real,
    /// Simulation end time.
    pub stoptime: Real,
    /// Lower bound on the dt growth ratio per step.
    pub deltatimemultlb: Real,
    /// Upper bound on the dt growth ratio per step.
    pub deltatimemultub: Real,
    /// Hard maximum time increment.
    pub dtmax: Real,

    /// Energy tolerance: |e| below this snaps to zero.
    pub e_cut: Real,
    /// Pressure tolerance.
    pub p_cut: Real,
    /// Artificial-viscosity tolerance.
    pub q_cut: Real,
    /// Velocity tolerance.
    pub u_cut: Real,
    /// Relative-volume tolerance: |v − 1| below this snaps to 1.
    pub v_cut: Real,

    /// Hourglass control coefficient.
    pub hgcoef: Real,
    /// 4/3, used in sound-speed bookkeeping.
    pub ss4o3: Real,
    /// Excessive-q abort threshold.
    pub qstop: Real,
    /// Monotonic-q maximum slope.
    pub monoq_max_slope: Real,
    /// Monotonic-q limiter multiplier.
    pub monoq_limiter_mult: Real,
    /// Linear coefficient for monotonic q.
    pub qlc_monoq: Real,
    /// Quadratic coefficient for monotonic q.
    pub qqc_monoq: Real,
    /// Quadratic q coefficient for the Courant constraint.
    pub qqc: Real,

    /// EOS maximum relative volume clamp.
    pub eosvmax: Real,
    /// EOS minimum relative volume clamp.
    pub eosvmin: Real,
    /// Pressure floor.
    pub pmin: Real,
    /// Energy floor.
    pub emin: Real,
    /// Maximum allowable volume change per step (hydro constraint).
    pub dvovmax: Real,
    /// Reference density.
    pub refdens: Real,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            dtfixed: -1.0e-6,
            stoptime: 1.0e-2,
            deltatimemultlb: 1.1,
            deltatimemultub: 1.2,
            dtmax: 1.0e-2,
            e_cut: 1.0e-7,
            p_cut: 1.0e-7,
            q_cut: 1.0e-7,
            u_cut: 1.0e-7,
            v_cut: 1.0e-10,
            hgcoef: 3.0,
            ss4o3: 4.0 / 3.0,
            qstop: 1.0e12,
            monoq_max_slope: 1.0,
            monoq_limiter_mult: 2.0,
            qlc_monoq: 0.5,
            qqc_monoq: 2.0 / 3.0,
            qqc: 2.0,
            eosvmax: 1.0e9,
            eosvmin: 1.0e-9,
            pmin: 0.0,
            emin: -1.0e15,
            dvovmax: 0.1,
            refdens: 1.0,
        }
    }
}

/// Base energy deposited in the origin element for the 45³ reference problem;
/// scaled by `(s/45)³` for other sizes so the blast is size-invariant.
pub const EBASE: Real = 3.948746e7;

/// Mesh extent per dimension (the reference meshes `[0, 1.125]³` for a
/// single-node run).
pub const MESH_EXTENT: Real = 1.125;

/// Mutable per-run simulation state (time integration bookkeeping). The C++
/// reference keeps these inside `Domain`; we separate them so that `Domain`
/// can be shared immutably-by-contract among tasks while the driver owns the
/// scalar state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimState {
    /// Current simulation time.
    pub time: Real,
    /// Current time increment.
    pub deltatime: Real,
    /// Completed cycles (iterations).
    pub cycle: u64,
    /// Courant constraint from the previous step.
    pub dtcourant: Real,
    /// Hydro constraint from the previous step.
    pub dthydro: Real,
}

impl SimState {
    /// Initial state given the analytic-CFL starting dt.
    pub fn new(initial_dt: Real) -> Self {
        Self {
            time: 0.0,
            deltatime: initial_dt,
            cycle: 0,
            dtcourant: 1.0e20,
            dthydro: 1.0e20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_reference() {
        let p = Params::default();
        assert_eq!(p.hgcoef, 3.0);
        assert_eq!(p.stoptime, 1.0e-2);
        assert!(p.dtfixed < 0.0, "variable dt path must be the default");
        assert_eq!(p.qqc_monoq, 2.0 / 3.0);
        assert_eq!(p.emin, -1.0e15);
    }

    #[test]
    fn sim_state_initialization() {
        let s = SimState::new(1.0e-7);
        assert_eq!(s.cycle, 0);
        assert_eq!(s.time, 0.0);
        assert_eq!(s.deltatime, 1.0e-7);
        assert!(s.dtcourant > 1e19 && s.dthydro > 1e19);
    }
}
