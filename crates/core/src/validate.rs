//! Result verification, mirroring the reference's `VerifyAndWriteFinalOutput`:
//! final origin energy plus the symmetry differences of transposed elements
//! on the ζ=0 plane, and some extra whole-mesh invariants used by the test
//! suite.

use crate::domain::Domain;
use crate::types::Real;

/// The reference's symmetry check over the ζ=0 element plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetryCheck {
    /// Maximum |e(j,k) − e(k,j)|.
    pub max_abs_diff: Real,
    /// Sum of |e(j,k) − e(k,j)|.
    pub total_abs_diff: Real,
    /// Maximum relative difference.
    pub max_rel_diff: Real,
}

/// Compute the three symmetry metrics the reference prints at exit.
pub fn symmetry_check(d: &Domain) -> SymmetryCheck {
    let nx = d.size();
    let mut max_abs_diff: Real = 0.0;
    let mut total_abs_diff: Real = 0.0;
    let mut max_rel_diff: Real = 0.0;

    for j in 0..nx {
        for k in j + 1..nx {
            let a = d.e(j * nx + k);
            let b = d.e(k * nx + j);
            let abs_diff = (a - b).abs();
            total_abs_diff += abs_diff;
            if max_abs_diff < abs_diff {
                max_abs_diff = abs_diff;
            }
            if b != 0.0 {
                let rel_diff = abs_diff / b;
                if max_rel_diff < rel_diff {
                    max_rel_diff = rel_diff;
                }
            }
        }
    }
    SymmetryCheck {
        max_abs_diff,
        total_abs_diff,
        max_rel_diff,
    }
}

/// Final origin energy — the headline number of a LULESH run.
pub fn final_origin_energy(d: &Domain) -> Real {
    d.e(0)
}

/// Maximum absolute field difference between two domains, over energy,
/// pressure, viscosity, relative volume and node positions. Used by the
/// cross-driver equivalence tests.
pub fn max_field_difference(a: &Domain, b: &Domain) -> Real {
    assert_eq!(a.num_elem(), b.num_elem());
    assert_eq!(a.num_node(), b.num_node());
    let mut max: Real = 0.0;
    for e in 0..a.num_elem() {
        max = max.max((a.e(e) - b.e(e)).abs());
        max = max.max((a.p(e) - b.p(e)).abs());
        max = max.max((a.q(e) - b.q(e)).abs());
        max = max.max((a.v(e) - b.v(e)).abs());
        max = max.max((a.ss(e) - b.ss(e)).abs());
    }
    for n in 0..a.num_node() {
        max = max.max((a.x(n) - b.x(n)).abs());
        max = max.max((a.y(n) - b.y(n)).abs());
        max = max.max((a.z(n) - b.z(n)).abs());
        max = max.max((a.xd(n) - b.xd(n)).abs());
        max = max.max((a.yd(n) - b.yd(n)).abs());
        max = max.max((a.zd(n) - b.zd(n)).abs());
    }
    max
}

/// Whole-mesh physical invariants that must hold at any point of a valid
/// run. Returns a description of the first violation.
pub fn check_invariants(d: &Domain) -> Result<(), String> {
    for e in 0..d.num_elem() {
        if d.v(e) <= 0.0 {
            return Err(format!(
                "element {e} has non-positive relative volume {}",
                d.v(e)
            ));
        }
        if !d.e(e).is_finite() || !d.p(e).is_finite() || !d.q(e).is_finite() {
            return Err(format!("element {e} has non-finite state"));
        }
        if d.q(e) < 0.0 {
            return Err(format!("element {e} has negative viscosity {}", d.q(e)));
        }
    }
    for n in 0..d.num_node() {
        if !d.x(n).is_finite() || !d.xd(n).is_finite() {
            return Err(format!("node {n} has non-finite state"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn fresh_domain_is_symmetric_and_valid() {
        let d = Domain::build(6, 2, 1, 1, 0);
        let s = symmetry_check(&d);
        assert_eq!(s.max_abs_diff, 0.0);
        assert_eq!(s.total_abs_diff, 0.0);
        assert_eq!(s.max_rel_diff, 0.0);
        assert!(check_invariants(&d).is_ok());
        assert!(final_origin_energy(&d) > 0.0);
    }

    #[test]
    fn symmetry_check_detects_asymmetry() {
        let d = Domain::build(4, 1, 1, 1, 0);
        // Break symmetry: e at (j=0,k=1) vs (j=1,k=0).
        d.set_e(1, 5.0);
        d.set_e(4, 3.0);
        let s = symmetry_check(&d);
        assert!((s.max_abs_diff - 2.0).abs() < 1e-15);
        assert!(s.total_abs_diff >= 2.0);
        assert!((s.max_rel_diff - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn field_difference_is_zero_for_identical_domains() {
        let a = Domain::build(3, 2, 1, 1, 0);
        let b = Domain::build(3, 2, 1, 1, 0);
        assert_eq!(max_field_difference(&a, &b), 0.0);
        b.set_e(5, 1.0);
        assert!((max_field_difference(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn invariant_checker_catches_bad_state() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_v(3, -0.5);
        assert!(check_invariants(&d).is_err());
        d.set_v(3, 1.0);
        d.set_q(2, -1.0);
        assert!(check_invariants(&d).is_err());
        d.set_q(2, 0.0);
        d.set_e(1, Real::NAN);
        assert!(check_invariants(&d).is_err());
    }
}
