//! Regular hexahedral mesh construction: node coordinates, element→node
//! connectivity, element face neighbours, boundary-condition flags,
//! symmetry-plane node lists, and the node→element corner lists used for
//! race-free force gathering.
//!
//! Faithful port of `Domain::BuildMesh`, `SetupElementConnectivities`,
//! `SetupBoundaryConditions`, `SetupSymmetryPlanes` and
//! `AllocateNodeElemIndexes` from LULESH 2.0, generalized to rectangular
//! `nx × ny × nz` sub-bricks at an arbitrary position inside the global
//! cube so the multi-domain extension (the paper's future work, implemented
//! in the `multidom` crate) can decompose over a 3-D rank grid. A single
//! cubic domain is the offset-0, local-extent-equals-global special case
//! and is bit-identical to the original builder.

// Indexed loops intentionally mirror the reference's `SetupElementConnectivities` flat-index arithmetic.
#![allow(clippy::needless_range_loop)]
use crate::params::MESH_EXTENT;
use crate::types::{bc, Index, Real};

/// What sits on one face of a (sub)domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceBoundary {
    /// A global symmetry plane (the min face of the whole problem).
    Symm,
    /// A global free surface (the max face of the whole problem).
    Free,
    /// An internal boundary to a neighbouring subdomain (halo exchange).
    Comm,
}

/// Backwards-compatible alias from the ζ-slab era: the same three kinds
/// now apply to every face.
pub type ZetaBoundary = FaceBoundary;

/// The six faces of a sub-brick, in the fixed order used for ghost-plane
/// layout: ξ−, ξ+, η−, η+, ζ−, ζ+.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Face {
    /// ξ− (x = min).
    Xm = 0,
    /// ξ+ (x = max).
    Xp = 1,
    /// η− (y = min).
    Ym = 2,
    /// η+ (y = max).
    Yp = 3,
    /// ζ− (z = min).
    Zm = 4,
    /// ζ+ (z = max).
    Zp = 5,
}

impl Face {
    /// All faces in ghost-layout order.
    pub const ALL: [Face; 6] = [Face::Xm, Face::Xp, Face::Ym, Face::Yp, Face::Zm, Face::Zp];

    /// Axis of the face normal: 0 = ξ, 1 = η, 2 = ζ.
    #[inline]
    pub fn axis(self) -> usize {
        (self as usize) / 2
    }

    /// `true` for the max (+) face of its axis.
    #[inline]
    pub fn is_plus(self) -> bool {
        (self as usize) % 2 == 1
    }

    /// The face on the opposite side of the same axis.
    #[inline]
    pub fn opposite(self) -> Face {
        Face::ALL[(self as usize) ^ 1]
    }
}

/// Shape of one (sub)domain: local element extents, the global extents,
/// and the position of this sub-brick within the global mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshShape {
    /// Elements along ξ (x), local to this subdomain.
    pub nx: Index,
    /// Elements along η (y), local to this subdomain.
    pub ny: Index,
    /// Elements along ζ (z), local to this subdomain.
    pub nz: Index,
    /// Global ξ extent in elements.
    pub global_nx: Index,
    /// Global η extent in elements.
    pub global_ny: Index,
    /// Global ζ extent in elements.
    pub global_nz: Index,
    /// Elements left of this subdomain's first ξ column.
    pub x_offset: Index,
    /// Elements in front of this subdomain's first η row.
    pub y_offset: Index,
    /// Elements below this subdomain's first ζ plane.
    pub z_offset: Index,
}

impl MeshShape {
    /// A single cubic domain of edge `size`.
    pub fn cube(size: Index) -> Self {
        Self::brick((size, size, size), (size, size, size), (0, 0, 0))
    }

    /// A rectangular sub-brick: `local` extents at `offset` within the
    /// `global` mesh.
    pub fn brick(
        local: (Index, Index, Index),
        global: (Index, Index, Index),
        offset: (Index, Index, Index),
    ) -> Self {
        Self {
            nx: local.0,
            ny: local.1,
            nz: local.2,
            global_nx: global.0,
            global_ny: global.1,
            global_nz: global.2,
            x_offset: offset.0,
            y_offset: offset.1,
            z_offset: offset.2,
        }
    }

    /// Local element count.
    pub fn num_elem(&self) -> Index {
        self.nx * self.ny * self.nz
    }

    /// Local node count.
    pub fn num_node(&self) -> Index {
        (self.nx + 1) * (self.ny + 1) * (self.nz + 1)
    }

    /// Elements in one ζ plane.
    pub fn elems_per_plane(&self) -> Index {
        self.nx * self.ny
    }

    /// Nodes in one ζ plane.
    pub fn nodes_per_plane(&self) -> Index {
        (self.nx + 1) * (self.ny + 1)
    }

    /// Offset along a face's axis (0 = ξ, 1 = η, 2 = ζ).
    fn axis_offset(&self, axis: usize) -> Index {
        [self.x_offset, self.y_offset, self.z_offset][axis]
    }

    /// Local extent along an axis.
    fn axis_extent(&self, axis: usize) -> Index {
        [self.nx, self.ny, self.nz][axis]
    }

    /// Global extent along an axis.
    fn axis_global(&self, axis: usize) -> Index {
        [self.global_nx, self.global_ny, self.global_nz][axis]
    }

    /// The boundary kind on one face, implied by the brick position: the
    /// global min face is the symmetry plane, the global max face the free
    /// surface, everything else an internal COMM boundary.
    pub fn face_boundary(&self, face: Face) -> FaceBoundary {
        let axis = face.axis();
        if face.is_plus() {
            if self.axis_offset(axis) + self.axis_extent(axis) == self.axis_global(axis) {
                FaceBoundary::Free
            } else {
                FaceBoundary::Comm
            }
        } else if self.axis_offset(axis) == 0 {
            FaceBoundary::Symm
        } else {
            FaceBoundary::Comm
        }
    }

    /// The ζ boundary kinds (compatibility helper from the ζ-slab era).
    pub fn zeta_boundaries(&self) -> (FaceBoundary, FaceBoundary) {
        (self.face_boundary(Face::Zm), self.face_boundary(Face::Zp))
    }

    /// Number of elements on one face of the brick.
    pub fn face_elem_count(&self, face: Face) -> Index {
        match face.axis() {
            0 => self.ny * self.nz,
            1 => self.nx * self.nz,
            _ => self.nx * self.ny,
        }
    }

    /// Local element indices on a face, in the canonical exchange order
    /// (ascending ζ plane, then η row, then ξ column). Matching faces of
    /// neighbouring sub-bricks enumerate geometrically-coincident elements
    /// at the same position because grid neighbours share their tangential
    /// extents.
    pub fn face_elems(&self, face: Face) -> Vec<Index> {
        let pp = self.elems_per_plane();
        let mut out = Vec::with_capacity(self.face_elem_count(face));
        match face {
            Face::Xm | Face::Xp => {
                let col = if face.is_plus() { self.nx - 1 } else { 0 };
                for p in 0..self.nz {
                    for r in 0..self.ny {
                        out.push(p * pp + r * self.nx + col);
                    }
                }
            }
            Face::Ym | Face::Yp => {
                let row = if face.is_plus() { self.ny - 1 } else { 0 };
                for p in 0..self.nz {
                    for c in 0..self.nx {
                        out.push(p * pp + row * self.nx + c);
                    }
                }
            }
            Face::Zm | Face::Zp => {
                let plane = if face.is_plus() { self.nz - 1 } else { 0 };
                for r in 0..self.ny {
                    for c in 0..self.nx {
                        out.push(plane * pp + r * self.nx + c);
                    }
                }
            }
        }
        out
    }

    /// Base index of the ghost-element region for a COMM face in the
    /// gradient arrays (`delv_xi/eta/zeta`). Ghost regions are laid out
    /// after the `num_elem` real elements, in `Face::ALL` order, with slots
    /// allocated only for COMM faces.
    pub fn ghost_base(&self, face: Face) -> Option<Index> {
        if self.face_boundary(face) != FaceBoundary::Comm {
            return None;
        }
        let mut base = self.num_elem();
        for f in Face::ALL {
            if f == face {
                return Some(base);
            }
            if self.face_boundary(f) == FaceBoundary::Comm {
                base += self.face_elem_count(f);
            }
        }
        unreachable!("face not in Face::ALL");
    }

    /// Length of the gradient arrays: real elements plus one ghost region
    /// per COMM face.
    pub fn grad_len(&self) -> Index {
        self.num_elem()
            + Face::ALL
                .iter()
                .filter(|&&f| self.face_boundary(f) == FaceBoundary::Comm)
                .map(|&f| self.face_elem_count(f))
                .sum::<Index>()
    }
}

/// Node coordinates of the `(nx+1)(ny+1)(nz+1)` lattice. The global mesh
/// spans `[0, 1.125]` per dimension; coordinates account for the brick
/// offset on every axis.
pub fn build_coordinates(shape: MeshShape) -> (Vec<Real>, Vec<Real>, Vec<Real>) {
    let num_node = shape.num_node();
    let mut x = vec![0.0; num_node];
    let mut y = vec![0.0; num_node];
    let mut z = vec![0.0; num_node];

    let mut nidx = 0;
    for plane in 0..=shape.nz {
        let tz = MESH_EXTENT * (shape.z_offset + plane) as Real / shape.global_nz as Real;
        for row in 0..=shape.ny {
            let ty = MESH_EXTENT * (shape.y_offset + row) as Real / shape.global_ny as Real;
            for col in 0..=shape.nx {
                let tx = MESH_EXTENT * (shape.x_offset + col) as Real / shape.global_nx as Real;
                x[nidx] = tx;
                y[nidx] = ty;
                z[nidx] = tz;
                nidx += 1;
            }
        }
    }
    (x, y, z)
}

/// Element→node connectivity: 8 node indices per element, LULESH corner
/// order (bottom face counter-clockwise, then top face).
pub fn build_nodelist(shape: MeshShape) -> Vec<Index> {
    let rn = shape.nx + 1; // node row stride
    let pn = shape.nodes_per_plane(); // node plane stride
    let mut nodelist = vec![0; 8 * shape.num_elem()];

    let mut zidx = 0;
    for plane in 0..shape.nz {
        for row in 0..shape.ny {
            for col in 0..shape.nx {
                let nidx = plane * pn + row * rn + col;
                let nl = &mut nodelist[8 * zidx..8 * zidx + 8];
                nl[0] = nidx;
                nl[1] = nidx + 1;
                nl[2] = nidx + rn + 1;
                nl[3] = nidx + rn;
                nl[4] = nidx + pn;
                nl[5] = nidx + pn + 1;
                nl[6] = nidx + pn + rn + 1;
                nl[7] = nidx + pn + rn;
                zidx += 1;
            }
        }
    }
    nodelist
}

/// Face-neighbour element indices in the six logical directions
/// (`lxim`, `lxip`, `letam`, `letap`, `lzetam`, `lzetap`).
///
/// The reference computes these with flat index arithmetic that wraps
/// across row/plane boundaries on domain edges; the wrapped values are
/// never read because the corresponding `elemBC` face flag is SYMM or
/// FREE. We keep the identical arithmetic for fidelity. On COMM faces the
/// neighbour indices point *past* `num_elem` into the per-face ghost
/// regions (see [`MeshShape::ghost_base`]), in the canonical face order of
/// [`MeshShape::face_elems`].
#[allow(clippy::type_complexity)]
pub fn build_connectivity(
    shape: MeshShape,
) -> (
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
) {
    let num_elem = shape.num_elem();
    let nx = shape.nx;
    let plane = shape.elems_per_plane();
    let mut lxim = vec![0; num_elem];
    let mut lxip = vec![0; num_elem];
    let mut letam = vec![0; num_elem];
    let mut letap = vec![0; num_elem];
    let mut lzetam = vec![0; num_elem];
    let mut lzetap = vec![0; num_elem];

    lxim[0] = 0;
    for i in 1..num_elem {
        lxim[i] = i - 1;
        lxip[i - 1] = i;
    }
    lxip[num_elem - 1] = num_elem - 1;

    for i in 0..nx {
        letam[i] = i;
        letap[num_elem - nx + i] = num_elem - nx + i;
    }
    for i in nx..num_elem {
        letam[i] = i - nx;
        letap[i - nx] = i;
    }

    for i in 0..plane {
        lzetam[i] = i;
        lzetap[num_elem - plane + i] = num_elem - plane + i;
    }
    for i in plane..num_elem {
        lzetam[i] = i - plane;
        lzetap[i - plane] = i;
    }

    // Redirect COMM faces into their ghost regions.
    for face in Face::ALL {
        let Some(base) = shape.ghost_base(face) else {
            continue;
        };
        let target: &mut Vec<Index> = match face {
            Face::Xm => &mut lxim,
            Face::Xp => &mut lxip,
            Face::Ym => &mut letam,
            Face::Yp => &mut letap,
            Face::Zm => &mut lzetam,
            Face::Zp => &mut lzetap,
        };
        for (k, e) in shape.face_elems(face).into_iter().enumerate() {
            target[e] = base + k;
        }
    }

    (lxim, lxip, letam, letap, lzetam, lzetap)
}

/// Boundary-condition flags per element: symmetry on the global min faces,
/// free surface on the global max faces, COMM on internal subdomain faces.
pub fn build_boundary_conditions(shape: MeshShape) -> Vec<i32> {
    let num_elem = shape.num_elem();
    let mut elem_bc = vec![0i32; num_elem];

    for face in Face::ALL {
        let flag = match (face, shape.face_boundary(face)) {
            (Face::Xm, FaceBoundary::Symm) => bc::XI_M_SYMM,
            (Face::Xm, FaceBoundary::Free) => bc::XI_M_FREE,
            (Face::Xm, FaceBoundary::Comm) => bc::XI_M_COMM,
            (Face::Xp, FaceBoundary::Symm) => bc::XI_P_SYMM,
            (Face::Xp, FaceBoundary::Free) => bc::XI_P_FREE,
            (Face::Xp, FaceBoundary::Comm) => bc::XI_P_COMM,
            (Face::Ym, FaceBoundary::Symm) => bc::ETA_M_SYMM,
            (Face::Ym, FaceBoundary::Free) => bc::ETA_M_FREE,
            (Face::Ym, FaceBoundary::Comm) => bc::ETA_M_COMM,
            (Face::Yp, FaceBoundary::Symm) => bc::ETA_P_SYMM,
            (Face::Yp, FaceBoundary::Free) => bc::ETA_P_FREE,
            (Face::Yp, FaceBoundary::Comm) => bc::ETA_P_COMM,
            (Face::Zm, FaceBoundary::Symm) => bc::ZETA_M_SYMM,
            (Face::Zm, FaceBoundary::Free) => bc::ZETA_M_FREE,
            (Face::Zm, FaceBoundary::Comm) => bc::ZETA_M_COMM,
            (Face::Zp, FaceBoundary::Symm) => bc::ZETA_P_SYMM,
            (Face::Zp, FaceBoundary::Free) => bc::ZETA_P_FREE,
            (Face::Zp, FaceBoundary::Comm) => bc::ZETA_P_COMM,
        };
        for e in shape.face_elems(face) {
            elem_bc[e] |= flag;
        }
    }
    elem_bc
}

/// Node index lists of the symmetry planes: each axis contributes its min
/// face's nodes when this sub-brick touches the corresponding global min
/// plane (x = 0, y = 0, z = 0). Lists are empty for interior/upper bricks.
pub fn build_symmetry_planes(shape: MeshShape) -> (Vec<Index>, Vec<Index>, Vec<Index>) {
    let rn = shape.nx + 1;
    let pn = shape.nodes_per_plane();
    let mut symm_x = Vec::new();
    let mut symm_y = Vec::new();
    let mut symm_z = Vec::new();

    if shape.x_offset == 0 {
        symm_x.reserve((shape.ny + 1) * (shape.nz + 1));
        for plane in 0..=shape.nz {
            for row in 0..=shape.ny {
                symm_x.push(plane * pn + row * rn);
            }
        }
    }
    if shape.y_offset == 0 {
        symm_y.reserve((shape.nx + 1) * (shape.nz + 1));
        for plane in 0..=shape.nz {
            for col in 0..=shape.nx {
                symm_y.push(plane * pn + col);
            }
        }
    }
    if shape.z_offset == 0 {
        symm_z.reserve(pn);
        for row in 0..=shape.ny {
            for col in 0..=shape.nx {
                symm_z.push(row * rn + col);
            }
        }
    }
    (symm_x, symm_y, symm_z)
}

/// Node→element corner lists: for node `n`, the entries
/// `corner_list[start[n]..start[n+1]]` are `8·elem + corner` for every
/// element corner coincident with `n`. Force gathering iterates these in
/// construction order, which fixes the floating-point summation order
/// across serial and parallel drivers.
pub fn build_node_elem_corners(nodelist: &[Index], num_node: Index) -> (Vec<Index>, Vec<Index>) {
    let num_elem = nodelist.len() / 8;
    let mut count = vec![0usize; num_node];
    for &n in nodelist {
        count[n] += 1;
    }
    let mut start = vec![0usize; num_node + 1];
    for n in 0..num_node {
        start[n + 1] = start[n] + count[n];
    }
    let mut fill = vec![0usize; num_node];
    let mut corner_list = vec![0usize; 8 * num_elem];
    for e in 0..num_elem {
        for c in 0..8 {
            let n = nodelist[8 * e + c];
            corner_list[start[n] + fill[n]] = 8 * e + c;
            fill[n] += 1;
        }
    }
    (start, corner_list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::bc;

    const N: Index = 4;

    fn cube() -> MeshShape {
        MeshShape::cube(N)
    }

    #[test]
    fn coordinates_span_extent() {
        let (x, y, z) = build_coordinates(cube());
        let en = N + 1;
        assert_eq!(x.len(), en * en * en);
        assert_eq!(x[0], 0.0);
        assert_eq!(y[0], 0.0);
        assert_eq!(z[0], 0.0);
        let last = en * en * en - 1;
        assert!((x[last] - MESH_EXTENT).abs() < 1e-15);
        assert!((y[last] - MESH_EXTENT).abs() < 1e-15);
        assert!((z[last] - MESH_EXTENT).abs() < 1e-15);
    }

    #[test]
    fn subdomain_coordinates_are_offset_slabs() {
        // Global 4³ cube split into two 4×4×2 slabs.
        let lower = MeshShape::brick((N, N, 2), (N, N, N), (0, 0, 0));
        let upper = MeshShape::brick((N, N, 2), (N, N, N), (0, 0, 2));
        let (_, _, zl) = build_coordinates(lower);
        let (_, _, zu) = build_coordinates(upper);
        // The lower slab's top plane coincides with the upper's bottom.
        let pn = lower.nodes_per_plane();
        assert_eq!(&zl[2 * pn..3 * pn], &zu[0..pn]);
        assert!((zu.last().unwrap() - MESH_EXTENT).abs() < 1e-15);
        assert!((zl[2 * pn] - MESH_EXTENT / 2.0).abs() < 1e-15);
    }

    #[test]
    fn x_subdomain_coordinates_are_offset_columns() {
        // Global 4³ cube split into two 2×4×4 bricks along ξ.
        let left = MeshShape::brick((2, N, N), (N, N, N), (0, 0, 0));
        let right = MeshShape::brick((2, N, N), (N, N, N), (2, 0, 0));
        let (xl, _, _) = build_coordinates(left);
        let (xr, _, _) = build_coordinates(right);
        // The left brick's right column coincides with the right's left.
        assert_eq!(xl[2], xr[0]);
        assert!((xl[2] - MESH_EXTENT / 2.0).abs() < 1e-15);
        assert!((xr[2] - MESH_EXTENT).abs() < 1e-15);
    }

    #[test]
    fn nodelist_first_element() {
        let nl = build_nodelist(cube());
        let en = N + 1;
        assert_eq!(
            &nl[0..8],
            &[
                0,
                1,
                en + 1,
                en,
                en * en,
                en * en + 1,
                en * en + en + 1,
                en * en + en
            ]
        );
    }

    #[test]
    fn nodelist_corners_are_distinct() {
        let nl = build_nodelist(MeshShape::brick((3, 4, 2), (3, 4, 2), (0, 0, 0)));
        for e in 0..3 * 4 * 2 {
            let mut c: Vec<_> = nl[8 * e..8 * e + 8].to_vec();
            c.sort_unstable();
            c.dedup();
            assert_eq!(c.len(), 8, "element {e} has repeated corners");
        }
    }

    #[test]
    fn interior_neighbours_are_adjacent() {
        let (lxim, lxip, letam, letap, lzetam, lzetap) = build_connectivity(cube());
        let e = N * N + N + 1;
        assert_eq!(lxim[e], e - 1);
        assert_eq!(lxip[e], e + 1);
        assert_eq!(letam[e], e - N);
        assert_eq!(letap[e], e + N);
        assert_eq!(lzetam[e], e - N * N);
        assert_eq!(lzetap[e], e + N * N);
    }

    #[test]
    fn comm_faces_point_into_ghost_planes() {
        let shape = MeshShape::brick((N, N, 2), (N, N, N), (0, 0, 2));
        let (_, _, _, _, lzetam, lzetap) = build_connectivity(shape);
        let ne = shape.num_elem();
        let plane = shape.elems_per_plane();
        // ζ− is COMM (interior): bottom plane points at ghosts [ne, ne+plane).
        for i in 0..plane {
            assert_eq!(lzetam[i], ne + i);
        }
        // ζ+ is FREE (top of global mesh): self-referencing sentinel.
        for i in 0..plane {
            assert_eq!(lzetap[ne - plane + i], ne - plane + i);
        }
    }

    #[test]
    fn xi_comm_faces_point_into_ghost_regions() {
        // Right half of a ξ split: ξ− is COMM, everything else global.
        let shape = MeshShape::brick((2, N, N), (N, N, N), (2, 0, 0));
        let (lxim, lxip, ..) = build_connectivity(shape);
        let base = shape.ghost_base(Face::Xm).expect("ξ− is COMM");
        assert_eq!(base, shape.num_elem());
        for (k, e) in shape.face_elems(Face::Xm).into_iter().enumerate() {
            assert_eq!(lxim[e], base + k);
        }
        // ξ+ is FREE: no ghost region, wrapped neighbour values are gated
        // by the XI_P_FREE flag and never read.
        assert_eq!(shape.ghost_base(Face::Xp), None);
        for e in shape.face_elems(Face::Xp) {
            assert!(lxip[e] < shape.num_elem());
        }
        assert_eq!(shape.grad_len(), shape.num_elem() + N * N);
    }

    #[test]
    fn ghost_bases_are_cumulative_in_face_order() {
        // Center brick of a 3×3×3 grid: every face is COMM.
        let shape = MeshShape::brick((2, 2, 2), (6, 6, 6), (2, 2, 2));
        let ne = shape.num_elem();
        let mut expect = ne;
        for face in Face::ALL {
            assert_eq!(shape.face_boundary(face), FaceBoundary::Comm);
            assert_eq!(shape.ghost_base(face), Some(expect));
            expect += shape.face_elem_count(face);
        }
        assert_eq!(shape.grad_len(), expect);
    }

    #[test]
    fn face_elems_orders_match_between_neighbours() {
        // Two 2×4×4 bricks sharing a ξ face enumerate the shared elements
        // in the same (ζ, η) order.
        let left = MeshShape::brick((2, N, N), (N, N, N), (0, 0, 0));
        let right = MeshShape::brick((2, N, N), (N, N, N), (2, 0, 0));
        let lf = left.face_elems(Face::Xp);
        let rf = right.face_elems(Face::Xm);
        assert_eq!(lf.len(), rf.len());
        let coord = |s: &MeshShape, e: Index| -> (Index, Index) {
            let pp = s.elems_per_plane();
            ((e / pp), (e % pp) / s.nx)
        };
        for (le, re) in lf.iter().zip(&rf) {
            assert_eq!(coord(&left, *le), coord(&right, *re));
        }
    }

    #[test]
    fn boundary_flags_on_faces() {
        let elem_bc = build_boundary_conditions(cube());
        assert_eq!(
            elem_bc[0] & (bc::XI_M_SYMM | bc::ETA_M_SYMM | bc::ZETA_M_SYMM),
            bc::XI_M_SYMM | bc::ETA_M_SYMM | bc::ZETA_M_SYMM
        );
        let far = N * N * N - 1;
        assert_eq!(
            elem_bc[far] & (bc::XI_P_FREE | bc::ETA_P_FREE | bc::ZETA_P_FREE),
            bc::XI_P_FREE | bc::ETA_P_FREE | bc::ZETA_P_FREE
        );
        let e = N * N + N + 1;
        assert_eq!(elem_bc[e], 0);
    }

    #[test]
    fn comm_flags_on_internal_subdomain_faces() {
        let mid = MeshShape::brick((N, N, 1), (N, N, 3), (0, 0, 1));
        let elem_bc = build_boundary_conditions(mid);
        let plane = mid.elems_per_plane();
        for i in 0..plane {
            assert_ne!(
                elem_bc[i] & bc::ZETA_M_COMM,
                0,
                "elem {i} ζ− should be COMM"
            );
            assert_ne!(
                elem_bc[i] & bc::ZETA_P_COMM,
                0,
                "elem {i} ζ+ should be COMM"
            );
        }
    }

    #[test]
    fn comm_flags_on_xi_eta_subdomain_faces() {
        // Center brick of a 3×3 ξη grid: all four lateral faces COMM.
        let mid = MeshShape::brick((2, 2, 6), (6, 6, 6), (2, 2, 0));
        let elem_bc = build_boundary_conditions(mid);
        for e in mid.face_elems(Face::Xm) {
            assert_ne!(elem_bc[e] & bc::XI_M_COMM, 0);
        }
        for e in mid.face_elems(Face::Xp) {
            assert_ne!(elem_bc[e] & bc::XI_P_COMM, 0);
        }
        for e in mid.face_elems(Face::Ym) {
            assert_ne!(elem_bc[e] & bc::ETA_M_COMM, 0);
        }
        for e in mid.face_elems(Face::Yp) {
            assert_ne!(elem_bc[e] & bc::ETA_P_COMM, 0);
        }
    }

    #[test]
    fn every_boundary_direction_count() {
        let elem_bc = build_boundary_conditions(cube());
        let per_face = N * N;
        for (mask, expect) in [
            (bc::XI_M_SYMM, per_face),
            (bc::XI_P_FREE, per_face),
            (bc::ETA_M_SYMM, per_face),
            (bc::ETA_P_FREE, per_face),
            (bc::ZETA_M_SYMM, per_face),
            (bc::ZETA_P_FREE, per_face),
        ] {
            let got = elem_bc.iter().filter(|&&b| b & mask != 0).count();
            assert_eq!(got, expect, "mask {mask:#x}");
        }
    }

    #[test]
    fn symmetry_planes_have_zero_coordinate() {
        let (x, y, z) = build_coordinates(cube());
        let (sx, sy, sz) = build_symmetry_planes(cube());
        let en = N + 1;
        assert_eq!(sx.len(), en * en);
        assert_eq!(sz.len(), en * en);
        for &n in &sx {
            assert_eq!(x[n], 0.0);
        }
        for &n in &sy {
            assert_eq!(y[n], 0.0);
        }
        for &n in &sz {
            assert_eq!(z[n], 0.0);
        }
    }

    #[test]
    fn interior_subdomain_has_no_z_symmetry_nodes() {
        let upper = MeshShape::brick((N, N, 2), (N, N, N), (0, 0, 2));
        let (sx, sy, sz) = build_symmetry_planes(upper);
        assert!(sz.is_empty());
        assert_eq!(sx.len(), (N + 1) * (2 + 1));
        assert_eq!(sy.len(), (N + 1) * (2 + 1));
    }

    #[test]
    fn offset_bricks_have_no_xy_symmetry_nodes() {
        let corner = MeshShape::brick((2, 2, 2), (N, N, N), (2, 2, 2));
        let (sx, sy, sz) = build_symmetry_planes(corner);
        assert!(sx.is_empty());
        assert!(sy.is_empty());
        assert!(sz.is_empty());
    }

    #[test]
    fn corner_lists_are_consistent() {
        let shape = MeshShape::brick((3, 4, 2), (3, 4, 2), (0, 0, 0));
        let nl = build_nodelist(shape);
        let num_node = shape.num_node();
        let (start, corners) = build_node_elem_corners(&nl, num_node);
        assert_eq!(start[num_node], corners.len());
        assert_eq!(corners.len(), nl.len());
        for n in 0..num_node {
            for &c in &corners[start[n]..start[n + 1]] {
                assert_eq!(nl[c], n, "corner entry {c} of node {n}");
            }
        }
        assert_eq!(start[1] - start[0], 1, "corner node touches one element");
    }
}
