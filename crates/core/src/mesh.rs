//! Regular hexahedral mesh construction: node coordinates, element→node
//! connectivity, element face neighbours, boundary-condition flags,
//! symmetry-plane node lists, and the node→element corner lists used for
//! race-free force gathering.
//!
//! Faithful port of `Domain::BuildMesh`, `SetupElementConnectivities`,
//! `SetupBoundaryConditions`, `SetupSymmetryPlanes` and
//! `AllocateNodeElemIndexes` from LULESH 2.0, generalized to rectangular
//! `nx × ny × nz` subdomains so the multi-domain extension (the paper's
//! future work, implemented in the `multidom` crate) can decompose the
//! global cube along ζ. A single cubic domain is the `nx = ny = nz`,
//! offset-0 special case and is bit-identical to the original builder.

// Indexed loops intentionally mirror the reference's `SetupElementConnectivities` flat-index arithmetic.
#![allow(clippy::needless_range_loop)]
use crate::params::MESH_EXTENT;
use crate::types::{bc, Index, Real};

/// What sits on each ζ face of a (sub)domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZetaBoundary {
    /// The global symmetry plane (ζ = 0 of the whole problem).
    Symm,
    /// The global free surface (ζ = max of the whole problem).
    Free,
    /// An internal boundary to a neighbouring subdomain (halo exchange).
    Comm,
}

/// Shape of one (sub)domain: local element extents, and the position of
/// its ζ-slab within the global mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshShape {
    /// Elements along ξ (x).
    pub nx: Index,
    /// Elements along η (y).
    pub ny: Index,
    /// Elements along ζ (z), local to this subdomain.
    pub nz: Index,
    /// Global ζ extent in elements (for coordinates and scaling).
    pub global_nz: Index,
    /// Elements below this subdomain's first ζ plane.
    pub z_offset: Index,
}

impl MeshShape {
    /// A single cubic domain of edge `size`.
    pub fn cube(size: Index) -> Self {
        Self {
            nx: size,
            ny: size,
            nz: size,
            global_nz: size,
            z_offset: 0,
        }
    }

    /// Local element count.
    pub fn num_elem(&self) -> Index {
        self.nx * self.ny * self.nz
    }

    /// Local node count.
    pub fn num_node(&self) -> Index {
        (self.nx + 1) * (self.ny + 1) * (self.nz + 1)
    }

    /// Elements in one ζ plane.
    pub fn elems_per_plane(&self) -> Index {
        self.nx * self.ny
    }

    /// Nodes in one ζ plane.
    pub fn nodes_per_plane(&self) -> Index {
        (self.nx + 1) * (self.ny + 1)
    }

    /// The ζ boundary kinds implied by the slab position.
    pub fn zeta_boundaries(&self) -> (ZetaBoundary, ZetaBoundary) {
        let zm = if self.z_offset == 0 {
            ZetaBoundary::Symm
        } else {
            ZetaBoundary::Comm
        };
        let zp = if self.z_offset + self.nz == self.global_nz {
            ZetaBoundary::Free
        } else {
            ZetaBoundary::Comm
        };
        (zm, zp)
    }
}

/// Node coordinates of the `(nx+1)(ny+1)(nz+1)` lattice. The global mesh
/// spans `[0, 1.125]` per dimension; ζ coordinates account for the slab
/// offset.
pub fn build_coordinates(shape: MeshShape) -> (Vec<Real>, Vec<Real>, Vec<Real>) {
    let num_node = shape.num_node();
    let mut x = vec![0.0; num_node];
    let mut y = vec![0.0; num_node];
    let mut z = vec![0.0; num_node];

    let mut nidx = 0;
    for plane in 0..=shape.nz {
        let tz = MESH_EXTENT * (shape.z_offset + plane) as Real / shape.global_nz as Real;
        for row in 0..=shape.ny {
            let ty = MESH_EXTENT * row as Real / shape.ny as Real;
            for col in 0..=shape.nx {
                let tx = MESH_EXTENT * col as Real / shape.nx as Real;
                x[nidx] = tx;
                y[nidx] = ty;
                z[nidx] = tz;
                nidx += 1;
            }
        }
    }
    (x, y, z)
}

/// Element→node connectivity: 8 node indices per element, LULESH corner
/// order (bottom face counter-clockwise, then top face).
pub fn build_nodelist(shape: MeshShape) -> Vec<Index> {
    let rn = shape.nx + 1; // node row stride
    let pn = shape.nodes_per_plane(); // node plane stride
    let mut nodelist = vec![0; 8 * shape.num_elem()];

    let mut zidx = 0;
    for plane in 0..shape.nz {
        for row in 0..shape.ny {
            for col in 0..shape.nx {
                let nidx = plane * pn + row * rn + col;
                let nl = &mut nodelist[8 * zidx..8 * zidx + 8];
                nl[0] = nidx;
                nl[1] = nidx + 1;
                nl[2] = nidx + rn + 1;
                nl[3] = nidx + rn;
                nl[4] = nidx + pn;
                nl[5] = nidx + pn + 1;
                nl[6] = nidx + pn + rn + 1;
                nl[7] = nidx + pn + rn;
                zidx += 1;
            }
        }
    }
    nodelist
}

/// Face-neighbour element indices in the six logical directions
/// (`lxim`, `lxip`, `letam`, `letap`, `lzetam`, `lzetap`).
///
/// The reference computes these with flat index arithmetic that wraps
/// across row/plane boundaries on domain edges; the wrapped values are
/// never read because the corresponding `elemBC` face flag is SYMM or
/// FREE. We keep the identical arithmetic for fidelity. On COMM ζ faces
/// the neighbour indices point *past* `num_elem` into the ghost planes:
/// `num_elem + i` for the ζ− ghosts, `num_elem + nx·ny + i` for ζ+.
#[allow(clippy::type_complexity)]
pub fn build_connectivity(
    shape: MeshShape,
) -> (
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
    Vec<Index>,
) {
    let num_elem = shape.num_elem();
    let nx = shape.nx;
    let plane = shape.elems_per_plane();
    let mut lxim = vec![0; num_elem];
    let mut lxip = vec![0; num_elem];
    let mut letam = vec![0; num_elem];
    let mut letap = vec![0; num_elem];
    let mut lzetam = vec![0; num_elem];
    let mut lzetap = vec![0; num_elem];

    lxim[0] = 0;
    for i in 1..num_elem {
        lxim[i] = i - 1;
        lxip[i - 1] = i;
    }
    lxip[num_elem - 1] = num_elem - 1;

    for i in 0..nx {
        letam[i] = i;
        letap[num_elem - nx + i] = num_elem - nx + i;
    }
    for i in nx..num_elem {
        letam[i] = i - nx;
        letap[i - nx] = i;
    }

    for i in 0..plane {
        lzetam[i] = i;
        lzetap[num_elem - plane + i] = num_elem - plane + i;
    }
    for i in plane..num_elem {
        lzetam[i] = i - plane;
        lzetap[i - plane] = i;
    }

    // Redirect COMM faces into the ghost planes.
    let (zm, zp) = shape.zeta_boundaries();
    if zm == ZetaBoundary::Comm {
        for i in 0..plane {
            lzetam[i] = num_elem + i;
        }
    }
    if zp == ZetaBoundary::Comm {
        for i in 0..plane {
            lzetap[num_elem - plane + i] = num_elem + plane + i;
        }
    }

    (lxim, lxip, letam, letap, lzetam, lzetap)
}

/// Boundary-condition flags per element: symmetry on the ξ−/η− faces of
/// the global mesh, free surface on ξ+/η+, and the configured kinds on
/// the ζ faces (COMM for internal subdomain boundaries).
pub fn build_boundary_conditions(shape: MeshShape) -> Vec<i32> {
    let num_elem = shape.num_elem();
    let nx = shape.nx;
    let ny = shape.ny;
    let nz = shape.nz;
    let plane = shape.elems_per_plane();
    let mut elem_bc = vec![0i32; num_elem];
    let (zm, zp) = shape.zeta_boundaries();

    for p in 0..nz {
        for r in 0..ny {
            // ξ faces: col == 0 / col == nx−1.
            elem_bc[p * plane + r * nx] |= bc::XI_M_SYMM;
            elem_bc[p * plane + r * nx + nx - 1] |= bc::XI_P_FREE;
        }
        for c in 0..nx {
            // η faces: row == 0 / row == ny−1.
            elem_bc[p * plane + c] |= bc::ETA_M_SYMM;
            elem_bc[p * plane + (ny - 1) * nx + c] |= bc::ETA_P_FREE;
        }
    }
    for i in 0..plane {
        elem_bc[i] |= match zm {
            ZetaBoundary::Symm => bc::ZETA_M_SYMM,
            ZetaBoundary::Free => bc::ZETA_M_FREE,
            ZetaBoundary::Comm => bc::ZETA_M_COMM,
        };
        elem_bc[(nz - 1) * plane + i] |= match zp {
            ZetaBoundary::Symm => bc::ZETA_P_SYMM,
            ZetaBoundary::Free => bc::ZETA_P_FREE,
            ZetaBoundary::Comm => bc::ZETA_P_COMM,
        };
    }
    elem_bc
}

/// Node index lists of the symmetry planes (x = 0, y = 0, and — when this
/// subdomain touches the global ζ = 0 plane — z = 0). For rectangular
/// shapes the three lists have different lengths; the ζ list is empty for
/// interior/upper subdomains.
pub fn build_symmetry_planes(shape: MeshShape) -> (Vec<Index>, Vec<Index>, Vec<Index>) {
    let rn = shape.nx + 1;
    let pn = shape.nodes_per_plane();
    let mut symm_x = Vec::with_capacity((shape.ny + 1) * (shape.nz + 1));
    let mut symm_y = Vec::with_capacity((shape.nx + 1) * (shape.nz + 1));
    let mut symm_z = Vec::new();

    for plane in 0..=shape.nz {
        for row in 0..=shape.ny {
            symm_x.push(plane * pn + row * rn);
        }
        for col in 0..=shape.nx {
            symm_y.push(plane * pn + col);
        }
    }
    if shape.z_offset == 0 {
        symm_z.reserve(pn);
        for row in 0..=shape.ny {
            for col in 0..=shape.nx {
                symm_z.push(row * rn + col);
            }
        }
    }
    (symm_x, symm_y, symm_z)
}

/// Node→element corner lists: for node `n`, the entries
/// `corner_list[start[n]..start[n+1]]` are `8·elem + corner` for every
/// element corner coincident with `n`. Force gathering iterates these in
/// construction order, which fixes the floating-point summation order
/// across serial and parallel drivers.
pub fn build_node_elem_corners(nodelist: &[Index], num_node: Index) -> (Vec<Index>, Vec<Index>) {
    let num_elem = nodelist.len() / 8;
    let mut count = vec![0usize; num_node];
    for &n in nodelist {
        count[n] += 1;
    }
    let mut start = vec![0usize; num_node + 1];
    for n in 0..num_node {
        start[n + 1] = start[n] + count[n];
    }
    let mut fill = vec![0usize; num_node];
    let mut corner_list = vec![0usize; 8 * num_elem];
    for e in 0..num_elem {
        for c in 0..8 {
            let n = nodelist[8 * e + c];
            corner_list[start[n] + fill[n]] = 8 * e + c;
            fill[n] += 1;
        }
    }
    (start, corner_list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::bc;

    const N: Index = 4;

    fn cube() -> MeshShape {
        MeshShape::cube(N)
    }

    #[test]
    fn coordinates_span_extent() {
        let (x, y, z) = build_coordinates(cube());
        let en = N + 1;
        assert_eq!(x.len(), en * en * en);
        assert_eq!(x[0], 0.0);
        assert_eq!(y[0], 0.0);
        assert_eq!(z[0], 0.0);
        let last = en * en * en - 1;
        assert!((x[last] - MESH_EXTENT).abs() < 1e-15);
        assert!((y[last] - MESH_EXTENT).abs() < 1e-15);
        assert!((z[last] - MESH_EXTENT).abs() < 1e-15);
    }

    #[test]
    fn subdomain_coordinates_are_offset_slabs() {
        // Global 4³ cube split into two 4×4×2 slabs.
        let lower = MeshShape {
            nx: N,
            ny: N,
            nz: 2,
            global_nz: N,
            z_offset: 0,
        };
        let upper = MeshShape {
            nx: N,
            ny: N,
            nz: 2,
            global_nz: N,
            z_offset: 2,
        };
        let (_, _, zl) = build_coordinates(lower);
        let (_, _, zu) = build_coordinates(upper);
        // The lower slab's top plane coincides with the upper's bottom.
        let pn = lower.nodes_per_plane();
        assert_eq!(&zl[2 * pn..3 * pn], &zu[0..pn]);
        assert!((zu.last().unwrap() - MESH_EXTENT).abs() < 1e-15);
        assert!((zl[2 * pn] - MESH_EXTENT / 2.0).abs() < 1e-15);
    }

    #[test]
    fn nodelist_first_element() {
        let nl = build_nodelist(cube());
        let en = N + 1;
        assert_eq!(
            &nl[0..8],
            &[
                0,
                1,
                en + 1,
                en,
                en * en,
                en * en + 1,
                en * en + en + 1,
                en * en + en
            ]
        );
    }

    #[test]
    fn nodelist_corners_are_distinct() {
        let nl = build_nodelist(MeshShape {
            nx: 3,
            ny: 4,
            nz: 2,
            global_nz: 2,
            z_offset: 0,
        });
        for e in 0..3 * 4 * 2 {
            let mut c: Vec<_> = nl[8 * e..8 * e + 8].to_vec();
            c.sort_unstable();
            c.dedup();
            assert_eq!(c.len(), 8, "element {e} has repeated corners");
        }
    }

    #[test]
    fn interior_neighbours_are_adjacent() {
        let (lxim, lxip, letam, letap, lzetam, lzetap) = build_connectivity(cube());
        let e = N * N + N + 1;
        assert_eq!(lxim[e], e - 1);
        assert_eq!(lxip[e], e + 1);
        assert_eq!(letam[e], e - N);
        assert_eq!(letap[e], e + N);
        assert_eq!(lzetam[e], e - N * N);
        assert_eq!(lzetap[e], e + N * N);
    }

    #[test]
    fn comm_faces_point_into_ghost_planes() {
        let shape = MeshShape {
            nx: N,
            ny: N,
            nz: 2,
            global_nz: N,
            z_offset: 2,
        };
        let (_, _, _, _, lzetam, lzetap) = build_connectivity(shape);
        let ne = shape.num_elem();
        let plane = shape.elems_per_plane();
        // ζ− is COMM (interior): bottom plane points at ghosts [ne, ne+plane).
        for i in 0..plane {
            assert_eq!(lzetam[i], ne + i);
        }
        // ζ+ is FREE (top of global mesh): self-referencing sentinel.
        for i in 0..plane {
            assert_eq!(lzetap[ne - plane + i], ne - plane + i);
        }
    }

    #[test]
    fn boundary_flags_on_faces() {
        let elem_bc = build_boundary_conditions(cube());
        assert_eq!(
            elem_bc[0] & (bc::XI_M_SYMM | bc::ETA_M_SYMM | bc::ZETA_M_SYMM),
            bc::XI_M_SYMM | bc::ETA_M_SYMM | bc::ZETA_M_SYMM
        );
        let far = N * N * N - 1;
        assert_eq!(
            elem_bc[far] & (bc::XI_P_FREE | bc::ETA_P_FREE | bc::ZETA_P_FREE),
            bc::XI_P_FREE | bc::ETA_P_FREE | bc::ZETA_P_FREE
        );
        let e = N * N + N + 1;
        assert_eq!(elem_bc[e], 0);
    }

    #[test]
    fn comm_flags_on_internal_subdomain_faces() {
        let mid = MeshShape {
            nx: N,
            ny: N,
            nz: 1,
            global_nz: 3,
            z_offset: 1,
        };
        let elem_bc = build_boundary_conditions(mid);
        let plane = mid.elems_per_plane();
        for i in 0..plane {
            assert_ne!(
                elem_bc[i] & bc::ZETA_M_COMM,
                0,
                "elem {i} ζ− should be COMM"
            );
            assert_ne!(
                elem_bc[i] & bc::ZETA_P_COMM,
                0,
                "elem {i} ζ+ should be COMM"
            );
        }
    }

    #[test]
    fn every_boundary_direction_count() {
        let elem_bc = build_boundary_conditions(cube());
        let per_face = N * N;
        for (mask, expect) in [
            (bc::XI_M_SYMM, per_face),
            (bc::XI_P_FREE, per_face),
            (bc::ETA_M_SYMM, per_face),
            (bc::ETA_P_FREE, per_face),
            (bc::ZETA_M_SYMM, per_face),
            (bc::ZETA_P_FREE, per_face),
        ] {
            let got = elem_bc.iter().filter(|&&b| b & mask != 0).count();
            assert_eq!(got, expect, "mask {mask:#x}");
        }
    }

    #[test]
    fn symmetry_planes_have_zero_coordinate() {
        let (x, y, z) = build_coordinates(cube());
        let (sx, sy, sz) = build_symmetry_planes(cube());
        let en = N + 1;
        assert_eq!(sx.len(), en * en);
        assert_eq!(sz.len(), en * en);
        for &n in &sx {
            assert_eq!(x[n], 0.0);
        }
        for &n in &sy {
            assert_eq!(y[n], 0.0);
        }
        for &n in &sz {
            assert_eq!(z[n], 0.0);
        }
    }

    #[test]
    fn interior_subdomain_has_no_z_symmetry_nodes() {
        let upper = MeshShape {
            nx: N,
            ny: N,
            nz: 2,
            global_nz: N,
            z_offset: 2,
        };
        let (sx, sy, sz) = build_symmetry_planes(upper);
        assert!(sz.is_empty());
        assert_eq!(sx.len(), (N + 1) * (2 + 1));
        assert_eq!(sy.len(), (N + 1) * (2 + 1));
    }

    #[test]
    fn corner_lists_are_consistent() {
        let shape = MeshShape {
            nx: 3,
            ny: 4,
            nz: 2,
            global_nz: 2,
            z_offset: 0,
        };
        let nl = build_nodelist(shape);
        let num_node = shape.num_node();
        let (start, corners) = build_node_elem_corners(&nl, num_node);
        assert_eq!(start[num_node], corners.len());
        assert_eq!(corners.len(), nl.len());
        for n in 0..num_node {
            for &c in &corners[start[n]..start[n + 1]] {
                assert_eq!(nl[c], n, "corner entry {c} of node {n}");
            }
        }
        assert_eq!(start[1] - start[0], 1, "corner node touches one element");
    }
}
