//! Scalar and index types, mirroring LULESH's `Real_t`/`Index_t`, plus the
//! error conditions the reference aborts on.

/// Floating-point type for all field data (`Real_t` in the C++ original).
pub type Real = f64;

/// Index type for mesh entities (`Index_t`).
pub type Index = usize;

/// Fatal conditions detected during a timestep, corresponding to the
/// `VolumeError` / `QStopError` aborts of the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuleshError {
    /// An element volume (or Jacobian determinant) became non-positive.
    VolumeError,
    /// Artificial viscosity exceeded `qstop`.
    QStopError,
}

impl std::fmt::Display for LuleshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuleshError::VolumeError => write!(f, "element volume error (non-positive volume)"),
            LuleshError::QStopError => write!(f, "artificial viscosity exceeded qstop"),
        }
    }
}

impl std::error::Error for LuleshError {}

/// Boundary-condition bit flags per element face (values identical to the
/// C++ `elemBC` encoding).
pub mod bc {
    /// ξ− face mask.
    pub const XI_M: i32 = 0x0000_0007;
    /// ξ− symmetry plane.
    pub const XI_M_SYMM: i32 = 0x0000_0001;
    /// ξ− free surface.
    pub const XI_M_FREE: i32 = 0x0000_0002;
    /// ξ− inter-domain communication face (unused single-node; kept for fidelity).
    pub const XI_M_COMM: i32 = 0x0000_0004;

    /// ξ+ face mask.
    pub const XI_P: i32 = 0x0000_0038;
    /// ξ+ symmetry plane.
    pub const XI_P_SYMM: i32 = 0x0000_0008;
    /// ξ+ free surface.
    pub const XI_P_FREE: i32 = 0x0000_0010;
    /// ξ+ communication face.
    pub const XI_P_COMM: i32 = 0x0000_0020;

    /// η− face mask.
    pub const ETA_M: i32 = 0x0000_01c0;
    /// η− symmetry plane.
    pub const ETA_M_SYMM: i32 = 0x0000_0040;
    /// η− free surface.
    pub const ETA_M_FREE: i32 = 0x0000_0080;
    /// η− communication face.
    pub const ETA_M_COMM: i32 = 0x0000_0100;

    /// η+ face mask.
    pub const ETA_P: i32 = 0x0000_0e00;
    /// η+ symmetry plane.
    pub const ETA_P_SYMM: i32 = 0x0000_0200;
    /// η+ free surface.
    pub const ETA_P_FREE: i32 = 0x0000_0400;
    /// η+ communication face.
    pub const ETA_P_COMM: i32 = 0x0000_0800;

    /// ζ− face mask.
    pub const ZETA_M: i32 = 0x0000_7000;
    /// ζ− symmetry plane.
    pub const ZETA_M_SYMM: i32 = 0x0000_1000;
    /// ζ− free surface.
    pub const ZETA_M_FREE: i32 = 0x0000_2000;
    /// ζ− communication face.
    pub const ZETA_M_COMM: i32 = 0x0000_4000;

    /// ζ+ face mask.
    pub const ZETA_P: i32 = 0x0003_8000;
    /// ζ+ symmetry plane.
    pub const ZETA_P_SYMM: i32 = 0x0000_8000;
    /// ζ+ free surface.
    pub const ZETA_P_FREE: i32 = 0x0001_0000;
    /// ζ+ communication face.
    pub const ZETA_P_COMM: i32 = 0x0002_0000;
}

#[cfg(test)]
mod tests {
    use super::bc::*;

    #[test]
    fn masks_cover_their_bits() {
        assert_eq!(XI_M, XI_M_SYMM | XI_M_FREE | XI_M_COMM);
        assert_eq!(XI_P, XI_P_SYMM | XI_P_FREE | XI_P_COMM);
        assert_eq!(ETA_M, ETA_M_SYMM | ETA_M_FREE | ETA_M_COMM);
        assert_eq!(ETA_P, ETA_P_SYMM | ETA_P_FREE | ETA_P_COMM);
        assert_eq!(ZETA_M, ZETA_M_SYMM | ZETA_M_FREE | ZETA_M_COMM);
        assert_eq!(ZETA_P, ZETA_P_SYMM | ZETA_P_FREE | ZETA_P_COMM);
    }

    #[test]
    fn masks_are_disjoint() {
        let masks = [XI_M, XI_P, ETA_M, ETA_P, ZETA_M, ZETA_P];
        for (i, a) in masks.iter().enumerate() {
            for b in &masks[i + 1..] {
                assert_eq!(a & b, 0);
            }
        }
    }

    #[test]
    fn error_display() {
        assert!(super::LuleshError::VolumeError
            .to_string()
            .contains("volume"));
        assert!(super::LuleshError::QStopError.to_string().contains("qstop"));
    }
}
