//! Command-line options shared by all LULESH binaries, mirroring the
//! artifact's flags: `--s` (size), `--r` (regions), `--i` (iterations),
//! `--b` (balance), `--c` (cost), `--q` (quiet), and `--threads` for the
//! parallel drivers (the artifact's `--hpx:threads`).

use crate::simd::LaneWidth;
use crate::types::Index;

/// Kernel lane-width policy, `--simd scalar|w2|w4|w8|auto`.
///
/// Every width is bit-identical to the scalar reference (see
/// [`crate::simd`]), so this flag is purely a performance knob: `scalar`
/// (the default) runs the reference inner loops, `wN` pins the lane-blocked
/// kernels to N lanes, and `auto` lets the task driver's online tuner
/// co-tune lane width with the partition sizes (drivers without a tuner
/// resolve `auto` to the static w4 sweet spot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Scalar reference loops (`--simd scalar`, alias `w1`). The default.
    #[default]
    Scalar,
    /// A fixed lane width (`--simd w2|w4|w8`).
    Fixed(LaneWidth),
    /// Online width tuning where a tuner runs; static w4 elsewhere.
    Auto,
}

impl SimdMode {
    /// The width a driver without an online tuner should activate before
    /// its first kernel. The task driver treats [`SimdMode::Auto`]
    /// differently: it starts scalar and lets the 2-D auto-tuner climb.
    pub fn static_width(self) -> LaneWidth {
        match self {
            SimdMode::Scalar => LaneWidth::W1,
            SimdMode::Fixed(w) => w,
            SimdMode::Auto => LaneWidth::W4,
        }
    }
}

impl std::str::FromStr for SimdMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" | "w1" => Ok(Self::Scalar),
            "w2" => Ok(Self::Fixed(LaneWidth::W2)),
            "w4" => Ok(Self::Fixed(LaneWidth::W4)),
            "w8" => Ok(Self::Fixed(LaneWidth::W8)),
            "auto" => Ok(Self::Auto),
            _ => Err("expected scalar|w2|w4|w8|auto".into()),
        }
    }
}

/// Partition-size policy for the task driver, `--partition`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Static Table I lookup (thread-aware). The default.
    #[default]
    Table,
    /// Online auto-tuning (`--partition auto`).
    Auto,
    /// One explicit size for both phases (`--partition fixed:N`).
    Fixed(usize),
}

impl std::str::FromStr for PartitionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(Self::Table),
            "auto" => Ok(Self::Auto),
            _ => {
                let n = s
                    .strip_prefix("fixed:")
                    .ok_or("expected auto|fixed:N|table")?;
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => Ok(Self::Fixed(n)),
                    _ => Err(format!("bad fixed partition size '{n}'")),
                }
            }
        }
    }
}

/// Inter-rank transport for the multi-domain drivers, `--transport`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// In-process channels (the default; no sockets involved).
    #[default]
    Channel,
    /// Length-prefixed TCP frames. `--transport tcp` lets the launcher
    /// pick a loopback port; `--transport tcp:HOST:PORT` names the root
    /// rank's bootstrap address explicitly (worker processes need this).
    Tcp(Option<String>),
}

impl std::str::FromStr for TransportMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "channel" => Ok(Self::Channel),
            "tcp" => Ok(Self::Tcp(None)),
            _ => match s.strip_prefix("tcp:") {
                Some(addr) if !addr.is_empty() => Ok(Self::Tcp(Some(addr.to_string()))),
                _ => Err("expected channel|tcp|tcp:HOST:PORT".into()),
            },
        }
    }
}

/// NUMA worker-pinning policy, `--pin`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PinMode {
    /// No pinning; the OS schedules workers freely. The default.
    #[default]
    None,
    /// Pin across every NUMA node of the machine (`--pin all`).
    All,
    /// Pin onto the listed nodes (`--pin node0,node1,…`). Ids are
    /// syntax-checked here and validated against the live topology by the
    /// driver (unknown ids degrade to a warning there, not a parse error —
    /// the same command line must work across differently-sized hosts).
    Nodes(Vec<usize>),
}

impl PinMode {
    /// The requested node ids: empty slice means "all nodes" for both
    /// [`PinMode::All`] and (vacuously) [`PinMode::None`].
    pub fn requested_nodes(&self) -> &[usize] {
        match self {
            PinMode::Nodes(ids) => ids,
            _ => &[],
        }
    }

    /// Whether pinning was requested at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, PinMode::None)
    }
}

impl std::str::FromStr for PinMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Self::None),
            "all" => Ok(Self::All),
            _ => {
                let mut ids = Vec::new();
                for part in s.split(',') {
                    let id = part
                        .strip_prefix("node")
                        .and_then(|n| n.parse::<usize>().ok())
                        .ok_or_else(|| {
                            format!("bad pin spec '{part}': expected all|none|node0,node1,…")
                        })?;
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
                if ids.is_empty() {
                    return Err("empty pin spec".into());
                }
                Ok(Self::Nodes(ids))
            }
        }
    }
}

/// A 3-D rank grid, `--grid NXxNYxNZ` (e.g. `--grid 2x2x2`). The rank
/// count is the product of the three extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Ranks along ξ (x).
    pub nx: usize,
    /// Ranks along η (y).
    pub ny: usize,
    /// Ranks along ζ (z).
    pub nz: usize,
}

impl GridSpec {
    /// Total rank count.
    pub fn ranks(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

impl std::fmt::Display for GridSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

impl std::str::FromStr for GridSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("bad grid '{s}': expected NXxNYxNZ"));
        }
        let mut dims = [0usize; 3];
        for (d, p) in dims.iter_mut().zip(&parts) {
            *d = match p.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return Err(format!("bad grid extent '{p}' in '{s}'")),
            };
        }
        Ok(Self {
            nx: dims[0],
            ny: dims[1],
            nz: dims[2],
        })
    }
}

/// Parsed options with the reference defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opts {
    /// Problem size (elements per edge), `--s`. Default 30.
    pub size: Index,
    /// Number of regions, `--r`. Default 11.
    pub num_reg: usize,
    /// Maximum iterations, `--i`. Default: run to stoptime.
    pub max_cycles: u64,
    /// Region weighting exponent, `--b`. Default 1.
    pub balance: i32,
    /// Region cost multiplier, `--c`. Default 1.
    pub cost: i32,
    /// Suppress verbose output, `--q`.
    pub quiet: bool,
    /// Worker threads for parallel drivers, `--threads`. Default 1.
    pub threads: usize,
    /// Region assignment seed (not in the reference; fixed default 0).
    pub seed: u64,
    /// Write a Chrome-trace JSON of the run to this path, `--trace`.
    pub trace: Option<String>,
    /// Write a metrics snapshot (CSV, or JSON when the path ends in
    /// `.json`) to this path, `--metrics`.
    pub metrics: Option<String>,
    /// Collect per-rank trace files plus a merged, clock-aligned Chrome
    /// trace and analysis report into this directory, `--trace-dir`
    /// (multi-domain drivers).
    pub trace_dir: Option<String>,
    /// Partition policy for the task driver, `--partition auto|fixed:N|table`.
    pub partition: PartitionMode,
    /// Kernel lane width, `--simd scalar|w2|w4|w8|auto`. Default scalar.
    pub simd: SimdMode,
    /// Inter-rank transport for the multi-domain drivers,
    /// `--transport channel|tcp|tcp:HOST:PORT`.
    pub transport: TransportMode,
    /// Per-receive deadline for the network transports in milliseconds,
    /// `--recv-deadline-ms`. Default 10 000.
    pub recv_deadline_ms: u64,
    /// NUMA worker pinning, `--pin all|none|node0,node1,…`. Default none.
    pub pin: PinMode,
    /// 3-D rank grid for the multi-domain drivers, `--grid NXxNYxNZ`.
    /// Default: none (a 1-D ζ chain over `--ranks`).
    pub grid: Option<GridSpec>,
    /// Live in-band telemetry period in timesteps,
    /// `--live-metrics[=PERIOD]` (bare flag means every step). Each rank
    /// streams per-step summaries to rank 0 on the dt allreduce; rank 0
    /// emits JSONL and an end-of-run straggler table (multi-domain
    /// drivers). Default: off.
    pub live_metrics: Option<u64>,
    /// Fault injection: `--die-at RANK:CYCLE[,RANK:CYCLE,…]` kills each
    /// listed rank abruptly at the top of that cycle, in order across
    /// recovery attempts (multi-domain drivers; testing only).
    pub die_at: Vec<(usize, u64)>,
    /// Fault injection: `--slow-rank RANK:MS` stalls that rank for `MS`
    /// milliseconds every step — a controlled straggler (multi-domain
    /// drivers; testing only).
    pub slow_rank: Option<(usize, u64)>,
    /// Checkpoint directory, `--ckpt-dir DIR`: every rank writes a
    /// checksummed snapshot there every `--ckpt-period` cycles
    /// (multi-domain drivers). Default: off.
    pub ckpt_dir: Option<String>,
    /// Cycles between checkpoints, `--ckpt-period`. Default 10.
    pub ckpt_period: u64,
    /// Resume from the checkpoint wave at this cycle instead of cycle 0,
    /// `--resume-cycle C` (requires `--ckpt-dir`; set by the `--respawn`
    /// launcher, rarely by hand).
    pub resume_cycle: Option<u64>,
    /// Launcher resilience, `--respawn`: when a rank dies, roll every
    /// rank back to the newest globally consistent checkpoint and rerun
    /// (requires `--ckpt-dir`).
    pub respawn: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            size: 30,
            num_reg: 11,
            max_cycles: 9_999_999,
            balance: 1,
            cost: 1,
            quiet: false,
            threads: 1,
            seed: 0,
            trace: None,
            metrics: None,
            trace_dir: None,
            partition: PartitionMode::Table,
            simd: SimdMode::Scalar,
            transport: TransportMode::Channel,
            recv_deadline_ms: 10_000,
            pin: PinMode::None,
            grid: None,
            live_metrics: None,
            die_at: Vec::new(),
            slow_rank: None,
            ckpt_dir: None,
            ckpt_period: 10,
            resume_cycle: None,
            respawn: false,
        }
    }
}

/// Parse errors carry the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Opts {
    /// Parse an argument list (without the program name). Accepts both
    /// `--s 45` and `--s=45` forms, plus single-dash aliases (`-s 45`)
    /// matching the OpenMP reference flags.
    pub fn parse<I, S>(args: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = Self::default();
        let mut it = args.into_iter();

        fn parse_val<T: std::str::FromStr>(
            flag: &str,
            inline: Option<&str>,
            it: &mut impl Iterator<Item = impl AsRef<str>>,
        ) -> Result<T, ParseError> {
            let raw = match inline {
                Some(v) => v.to_string(),
                None => it
                    .next()
                    .map(|s| s.as_ref().to_string())
                    .ok_or_else(|| ParseError(format!("{flag} needs a value")))?,
            };
            raw.parse()
                .map_err(|_| ParseError(format!("{flag}: bad value '{raw}'")))
        }

        // A comma-separated `RANK:N,RANK:N,…` list: one fault per
        // recovery attempt (`--die-at 1:40,3:55` kills rank 1 first,
        // then rank 3 after the respawn).
        fn parse_pair_list(
            flag: &str,
            inline: Option<&str>,
            it: &mut impl Iterator<Item = impl AsRef<str>>,
        ) -> Result<Vec<(usize, u64)>, ParseError> {
            let raw: String = parse_val(flag, inline, it)?;
            raw.split(',')
                .map(|part| {
                    let (r, n) = part.split_once(':').ok_or_else(|| {
                        ParseError(format!("{flag}: expected RANK:N, got '{part}'"))
                    })?;
                    match (r.parse::<usize>(), n.parse::<u64>()) {
                        (Ok(r), Ok(n)) => Ok((r, n)),
                        _ => Err(ParseError(format!("{flag}: bad pair '{part}'"))),
                    }
                })
                .collect()
        }

        // A `RANK:N` pair (fault-injection flags).
        fn parse_pair(
            flag: &str,
            inline: Option<&str>,
            it: &mut impl Iterator<Item = impl AsRef<str>>,
        ) -> Result<(usize, u64), ParseError> {
            let raw: String = parse_val(flag, inline, it)?;
            let (r, n) = raw
                .split_once(':')
                .ok_or_else(|| ParseError(format!("{flag}: expected RANK:N, got '{raw}'")))?;
            match (r.parse::<usize>(), n.parse::<u64>()) {
                (Ok(r), Ok(n)) => Ok((r, n)),
                _ => Err(ParseError(format!("{flag}: bad pair '{raw}'"))),
            }
        }

        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v)),
                None => (arg, None),
            };
            match flag.trim_start_matches('-') {
                "s" => opts.size = parse_val(flag, inline, &mut it)?,
                "r" => opts.num_reg = parse_val(flag, inline, &mut it)?,
                "i" => opts.max_cycles = parse_val(flag, inline, &mut it)?,
                "b" => opts.balance = parse_val(flag, inline, &mut it)?,
                "c" => opts.cost = parse_val(flag, inline, &mut it)?,
                "threads" | "hpx:threads" | "t" => opts.threads = parse_val(flag, inline, &mut it)?,
                "seed" => opts.seed = parse_val(flag, inline, &mut it)?,
                "trace" => opts.trace = Some(parse_val(flag, inline, &mut it)?),
                "metrics" => opts.metrics = Some(parse_val(flag, inline, &mut it)?),
                "trace-dir" => opts.trace_dir = Some(parse_val(flag, inline, &mut it)?),
                "partition" => opts.partition = parse_val(flag, inline, &mut it)?,
                "simd" => opts.simd = parse_val(flag, inline, &mut it)?,
                "transport" => opts.transport = parse_val(flag, inline, &mut it)?,
                "recv-deadline-ms" => opts.recv_deadline_ms = parse_val(flag, inline, &mut it)?,
                "pin" => opts.pin = parse_val(flag, inline, &mut it)?,
                "grid" => opts.grid = Some(parse_val(flag, inline, &mut it)?),
                "live-metrics" => {
                    // Bare flag = every step; never consumes the next
                    // token (so `--live-metrics --q` works).
                    opts.live_metrics = Some(match inline {
                        Some(v) => match v.parse::<u64>() {
                            Ok(p) if p >= 1 => p,
                            _ => return Err(ParseError(format!("{flag}: bad period '{v}'"))),
                        },
                        None => 1,
                    });
                }
                "die-at" => opts.die_at = parse_pair_list(flag, inline, &mut it)?,
                "slow-rank" => opts.slow_rank = Some(parse_pair(flag, inline, &mut it)?),
                "ckpt-dir" => opts.ckpt_dir = Some(parse_val(flag, inline, &mut it)?),
                "ckpt-period" => opts.ckpt_period = parse_val(flag, inline, &mut it)?,
                "resume-cycle" => opts.resume_cycle = Some(parse_val(flag, inline, &mut it)?),
                "respawn" => {
                    if inline.is_some() {
                        return Err(ParseError(format!("{flag} takes no value")));
                    }
                    opts.respawn = true;
                }
                "q" => {
                    if inline.is_some() {
                        return Err(ParseError(format!("{flag} takes no value")));
                    }
                    opts.quiet = true;
                }
                "h" | "help" => return Err(ParseError("help requested".into())),
                other => return Err(ParseError(format!("unknown flag '{other}'"))),
            }
        }
        if opts.size == 0 {
            return Err(ParseError("size must be positive".into()));
        }
        if opts.num_reg == 0 {
            return Err(ParseError("regions must be positive".into()));
        }
        if opts.threads == 0 {
            return Err(ParseError("threads must be positive".into()));
        }
        if opts.recv_deadline_ms == 0 {
            return Err(ParseError("recv deadline must be positive".into()));
        }
        Ok(opts)
    }

    /// Usage text for the binaries.
    pub fn usage(program: &str) -> String {
        format!(
            "Usage: {program} [--s SIZE] [--r REGIONS] [--i ITERATIONS] \
             [--b BALANCE] [--c COST] [--threads N] [--q] \
             [--trace FILE.json] [--metrics FILE.csv|.json] [--trace-dir DIR] \
             [--partition auto|fixed:N|table] [--simd scalar|w2|w4|w8|auto] \
             [--transport channel|tcp|tcp:HOST:PORT] [--recv-deadline-ms MS] \
             [--pin all|none|node0,node1,…] [--grid NXxNYxNZ] \
             [--live-metrics[=PERIOD]] [--die-at RANK:CYCLE[,RANK:CYCLE…]] \
             [--slow-rank RANK:MS] [--ckpt-dir DIR] [--ckpt-period K] \
             [--resume-cycle C] [--respawn]\n\
             Defaults: --s 30 --r 11 --b 1 --c 1 --threads 1 \
             --partition table --transport channel --recv-deadline-ms 10000 \
             --pin none, run to stoptime.\n\
             --trace writes a Chrome-trace timeline (load in Perfetto); \
             --metrics writes a per-phase metrics snapshot; \
             --trace-dir collects per-rank traces, a merged clock-aligned \
             timeline, and an overhead-taxonomy report (multi-domain); \
             --partition auto tunes partition sizes online (task driver); \
             --simd picks the kernel lane width (every width is bit-identical \
             to scalar); --simd auto co-tunes width with the partition sizes \
             on the task driver and resolves to w4 elsewhere; \
             --transport tcp exchanges halos over loopback sockets \
             (multi-domain drivers); \
             --pin pins workers to NUMA nodes with locality-aware stealing \
             (degrades to a warning on single-node hosts); \
             --grid decomposes over a 3-D rank grid with 27-neighbour halo \
             exchange (multi-domain drivers; each extent must divide --s); \
             --live-metrics streams per-step rank summaries to rank 0 \
             in-band (JSONL on stdout, straggler table on stderr); \
             --die-at / --slow-rank inject faults for testing (die-at \
             takes a comma list, one kill per recovery attempt); \
             --ckpt-dir checkpoints every rank every --ckpt-period cycles \
             (async writer thread, checksummed files); \
             --respawn rolls back to the newest globally consistent \
             checkpoint after a rank failure and reruns (launcher); \
             --resume-cycle resumes one run from a specific wave."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o, Opts::default());
        assert_eq!(o.size, 30);
        assert_eq!(o.num_reg, 11);
    }

    #[test]
    fn artifact_style_flags() {
        let o = Opts::parse(["--s", "90", "--q", "--i", "770", "--hpx:threads=16"]).unwrap();
        assert_eq!(o.size, 90);
        assert_eq!(o.max_cycles, 770);
        assert_eq!(o.threads, 16);
        assert!(o.quiet);
    }

    #[test]
    fn reference_style_flags() {
        let o = Opts::parse(["-s", "45", "-r", "21", "-b", "2", "-c", "3"]).unwrap();
        assert_eq!(o.size, 45);
        assert_eq!(o.num_reg, 21);
        assert_eq!(o.balance, 2);
        assert_eq!(o.cost, 3);
    }

    #[test]
    fn equals_form() {
        let o = Opts::parse(["--s=60", "--r=16"]).unwrap();
        assert_eq!(o.size, 60);
        assert_eq!(o.num_reg, 16);
    }

    #[test]
    fn trace_and_metrics_paths() {
        let o = Opts::parse(["--trace", "out.json", "--metrics=m.csv"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some("out.json"));
        assert_eq!(o.metrics.as_deref(), Some("m.csv"));
        let o = Opts::parse(["--trace-dir", "traces"]).unwrap();
        assert_eq!(o.trace_dir.as_deref(), Some("traces"));
        let o = Opts::parse(["--trace-dir=tr2"]).unwrap();
        assert_eq!(o.trace_dir.as_deref(), Some("tr2"));
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert!(o.trace.is_none() && o.metrics.is_none());
    }

    #[test]
    fn partition_modes() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.partition, PartitionMode::Table);
        let o = Opts::parse(["--partition", "auto"]).unwrap();
        assert_eq!(o.partition, PartitionMode::Auto);
        let o = Opts::parse(["--partition=fixed:2048"]).unwrap();
        assert_eq!(o.partition, PartitionMode::Fixed(2048));
        let o = Opts::parse(["--partition", "table"]).unwrap();
        assert_eq!(o.partition, PartitionMode::Table);
        assert!(Opts::parse(["--partition", "bogus"]).is_err());
        assert!(Opts::parse(["--partition", "fixed:0"]).is_err());
        assert!(Opts::parse(["--partition", "fixed:x"]).is_err());
        assert!(Opts::parse(["--partition"]).is_err());
    }

    #[test]
    fn simd_modes() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.simd, SimdMode::Scalar);
        assert_eq!(o.simd.static_width(), LaneWidth::W1);
        let o = Opts::parse(["--simd", "scalar"]).unwrap();
        assert_eq!(o.simd, SimdMode::Scalar);
        // `w1` is an alias for scalar (handy in width sweeps).
        let o = Opts::parse(["--simd=w1"]).unwrap();
        assert_eq!(o.simd, SimdMode::Scalar);
        let o = Opts::parse(["--simd", "w2"]).unwrap();
        assert_eq!(o.simd, SimdMode::Fixed(LaneWidth::W2));
        let o = Opts::parse(["--simd=w4"]).unwrap();
        assert_eq!(o.simd, SimdMode::Fixed(LaneWidth::W4));
        assert_eq!(o.simd.static_width(), LaneWidth::W4);
        let o = Opts::parse(["--simd", "w8"]).unwrap();
        assert_eq!(o.simd, SimdMode::Fixed(LaneWidth::W8));
        let o = Opts::parse(["--simd", "auto"]).unwrap();
        assert_eq!(o.simd, SimdMode::Auto);
        assert_eq!(o.simd.static_width(), LaneWidth::W4);
        assert!(Opts::parse(["--simd", "w16"]).is_err());
        assert!(Opts::parse(["--simd", "avx"]).is_err());
        assert!(Opts::parse(["--simd"]).is_err());
    }

    #[test]
    fn transport_modes() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.transport, TransportMode::Channel);
        assert_eq!(o.recv_deadline_ms, 10_000);
        let o = Opts::parse(["--transport", "channel"]).unwrap();
        assert_eq!(o.transport, TransportMode::Channel);
        let o = Opts::parse(["--transport", "tcp"]).unwrap();
        assert_eq!(o.transport, TransportMode::Tcp(None));
        let o = Opts::parse(["--transport=tcp:127.0.0.1:9100"]).unwrap();
        assert_eq!(
            o.transport,
            TransportMode::Tcp(Some("127.0.0.1:9100".to_string()))
        );
        let o = Opts::parse(["--recv-deadline-ms", "2500"]).unwrap();
        assert_eq!(o.recv_deadline_ms, 2500);
        assert!(Opts::parse(["--transport", "udp"]).is_err());
        assert!(Opts::parse(["--transport", "tcp:"]).is_err());
        assert!(Opts::parse(["--recv-deadline-ms", "0"]).is_err());
    }

    #[test]
    fn pin_modes() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.pin, PinMode::None);
        assert!(!o.pin.enabled());
        let o = Opts::parse(["--pin", "node0"]).unwrap();
        assert_eq!(o.pin, PinMode::Nodes(vec![0]));
        assert_eq!(o.pin.requested_nodes(), &[0]);
        let o = Opts::parse(["--pin=node0,node1"]).unwrap();
        assert_eq!(o.pin, PinMode::Nodes(vec![0, 1]));
        let o = Opts::parse(["--pin", "all"]).unwrap();
        assert_eq!(o.pin, PinMode::All);
        assert!(o.pin.enabled());
        assert!(o.pin.requested_nodes().is_empty());
        let o = Opts::parse(["--pin", "none"]).unwrap();
        assert_eq!(o.pin, PinMode::None);
        // Duplicates collapse; order is preserved.
        let o = Opts::parse(["--pin", "node1,node0,node1"]).unwrap();
        assert_eq!(o.pin, PinMode::Nodes(vec![1, 0]));
        // Unknown/malformed node ids are rejected at parse time.
        assert!(Opts::parse(["--pin", "node"]).is_err());
        assert!(Opts::parse(["--pin", "nodeX"]).is_err());
        assert!(Opts::parse(["--pin", "0"]).is_err());
        assert!(Opts::parse(["--pin", "sock1"]).is_err());
        assert!(Opts::parse(["--pin", "node0,,node1"]).is_err());
        assert!(Opts::parse(["--pin", ""]).is_err());
        assert!(Opts::parse(["--pin"]).is_err());
    }

    #[test]
    fn grid_specs() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.grid, None);
        let o = Opts::parse(["--grid", "2x2x2"]).unwrap();
        assert_eq!(
            o.grid,
            Some(GridSpec {
                nx: 2,
                ny: 2,
                nz: 2
            })
        );
        assert_eq!(o.grid.unwrap().ranks(), 8);
        assert_eq!(o.grid.unwrap().to_string(), "2x2x2");
        let o = Opts::parse(["--grid=1x1x3"]).unwrap();
        assert_eq!(
            o.grid,
            Some(GridSpec {
                nx: 1,
                ny: 1,
                nz: 3
            })
        );
        assert!(Opts::parse(["--grid", "2x2"]).is_err());
        assert!(Opts::parse(["--grid", "2x2x0"]).is_err());
        assert!(Opts::parse(["--grid", "2x2x2x2"]).is_err());
        assert!(Opts::parse(["--grid", "axbxc"]).is_err());
        assert!(Opts::parse(["--grid"]).is_err());
    }

    #[test]
    fn live_metrics_and_fault_flags() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.live_metrics, None);
        assert_eq!(o.die_at, Vec::new());
        assert_eq!(o.slow_rank, None);
        // Bare flag samples every step and must not eat the next token.
        let o = Opts::parse(["--live-metrics", "--q"]).unwrap();
        assert_eq!(o.live_metrics, Some(1));
        assert!(o.quiet);
        let o = Opts::parse(["--live-metrics=10"]).unwrap();
        assert_eq!(o.live_metrics, Some(10));
        assert!(Opts::parse(["--live-metrics=0"]).is_err());
        assert!(Opts::parse(["--live-metrics=x"]).is_err());

        let o = Opts::parse(["--die-at", "1:25"]).unwrap();
        assert_eq!(o.die_at, vec![(1, 25)]);
        let o = Opts::parse(["--slow-rank=2:40"]).unwrap();
        assert_eq!(o.slow_rank, Some((2, 40)));
        assert!(Opts::parse(["--die-at", "25"]).is_err());
        assert!(Opts::parse(["--slow-rank", "x:3"]).is_err());
        assert!(Opts::parse(["--die-at"]).is_err());
    }

    #[test]
    fn die_at_takes_a_comma_list() {
        // One kill per recovery attempt: rank 1 at cycle 40 first, then
        // rank 3 at cycle 55 after the respawn.
        let o = Opts::parse(["--die-at", "1:40,3:55"]).unwrap();
        assert_eq!(o.die_at, vec![(1, 40), (3, 55)]);
        let o = Opts::parse(["--die-at=0:7,2:9,1:11"]).unwrap();
        assert_eq!(o.die_at, vec![(0, 7), (2, 9), (1, 11)]);
        // Any malformed entry poisons the whole list.
        assert!(Opts::parse(["--die-at", "1:40,55"]).is_err());
        assert!(Opts::parse(["--die-at", "1:40,,2:9"]).is_err());
        assert!(Opts::parse(["--die-at", "1:40,x:9"]).is_err());
    }

    #[test]
    fn checkpoint_flags() {
        let o = Opts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.ckpt_dir, None);
        assert_eq!(o.ckpt_period, 10);
        assert_eq!(o.resume_cycle, None);
        assert!(!o.respawn);
        let o = Opts::parse(["--ckpt-dir", "/tmp/ck", "--ckpt-period=5", "--respawn"]).unwrap();
        assert_eq!(o.ckpt_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(o.ckpt_period, 5);
        assert!(o.respawn);
        let o = Opts::parse(["--resume-cycle", "40"]).unwrap();
        assert_eq!(o.resume_cycle, Some(40));
        assert!(Opts::parse(["--respawn=yes"]).is_err());
        assert!(Opts::parse(["--ckpt-period", "x"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Opts::parse(["--s"]).is_err());
        assert!(
            Opts::parse(["--q=false"]).is_err(),
            "boolean flags take no value"
        );
        assert!(Opts::parse(["--s", "abc"]).is_err());
        assert!(Opts::parse(["--bogus", "1"]).is_err());
        assert!(Opts::parse(["--s", "0"]).is_err());
        assert!(Opts::parse(["--threads", "0"]).is_err());
    }
}
