//! The LULESH `Domain`: all node- and element-centered fields, mesh
//! connectivity, region decomposition, and problem initialization (Sedov
//! blast energy deposit, masses, initial timestep).
//!
//! # Sharing model
//!
//! The C++ original passes `Domain&` everywhere and lets OpenMP threads
//! write disjoint indices. We reproduce that model: every mutable field is a
//! [`SharedVec`] and the getter/setter accessors (`d.x(i)`, `d.set_x(i, v)`)
//! compile to raw-pointer loads/stores. **The safety contract lives at the
//! driver level**: within one parallel phase, no two tasks may touch the
//! same index of the same array with a write involved, and phases are
//! separated by barriers/dependencies. The serial driver trivially satisfies
//! this; the parallel drivers satisfy it structurally (disjoint partitions,
//! disjoint regions, element-owned scratch) and the integration tests verify
//! their results against the serial driver bit-for-bit.

use crate::kernels::volume::calc_elem_volume;
use crate::mesh::{self, Face, MeshShape};
use crate::params::{Params, EBASE};
use crate::regions::Regions;
use crate::types::{Index, Real};
use parutil::SharedVec;

macro_rules! real_fields {
    ($(#[$m:meta] $get:ident $set:ident $field:ident;)*) => {
        $(
            #[$m]
            #[inline]
            pub fn $get(&self, i: Index) -> Real {
                // SAFETY: phase-disjoint access contract (see type docs).
                unsafe { self.$field.load(i) }
            }
            #[doc = concat!("Setter counterpart of [`Self::", stringify!($get), "`].")]
            #[inline]
            pub fn $set(&self, i: Index, v: Real) {
                // SAFETY: phase-disjoint access contract (see type docs).
                unsafe { self.$field.write(i, v) }
            }
        )*
    };
}

/// All mesh-resident state of a LULESH problem.
pub struct Domain {
    // --- problem shape ---
    shape: MeshShape,
    num_elem: Index,
    num_node: Index,

    // --- node-centered fields ---
    /// Node coordinates.
    pub m_x: SharedVec<Real>,
    /// Node coordinates.
    pub m_y: SharedVec<Real>,
    /// Node coordinates.
    pub m_z: SharedVec<Real>,
    /// Node velocities.
    pub m_xd: SharedVec<Real>,
    /// Node velocities.
    pub m_yd: SharedVec<Real>,
    /// Node velocities.
    pub m_zd: SharedVec<Real>,
    /// Node accelerations.
    pub m_xdd: SharedVec<Real>,
    /// Node accelerations.
    pub m_ydd: SharedVec<Real>,
    /// Node accelerations.
    pub m_zdd: SharedVec<Real>,
    /// Nodal forces.
    pub m_fx: SharedVec<Real>,
    /// Nodal forces.
    pub m_fy: SharedVec<Real>,
    /// Nodal forces.
    pub m_fz: SharedVec<Real>,
    /// Nodal mass.
    pub m_nodal_mass: SharedVec<Real>,

    // --- element-centered fields ---
    /// Internal energy.
    pub m_e: SharedVec<Real>,
    /// Pressure.
    pub m_p: SharedVec<Real>,
    /// Artificial viscosity.
    pub m_q: SharedVec<Real>,
    /// Linear term of q.
    pub m_ql: SharedVec<Real>,
    /// Quadratic term of q.
    pub m_qq: SharedVec<Real>,
    /// Relative volume.
    pub m_v: SharedVec<Real>,
    /// Reference (initial) volume.
    pub m_volo: SharedVec<Real>,
    /// Relative volume change this step (`vnew − v`).
    pub m_delv: SharedVec<Real>,
    /// Volume derivative over volume.
    pub m_vdov: SharedVec<Real>,
    /// Element characteristic length.
    pub m_arealg: SharedVec<Real>,
    /// Sound speed.
    pub m_ss: SharedVec<Real>,
    /// Element mass.
    pub m_elem_mass: SharedVec<Real>,
    /// New relative volume (step-scratch in the reference; persistent here).
    pub m_vnew: SharedVec<Real>,
    /// Principal strain scratch.
    pub m_dxx: SharedVec<Real>,
    /// Principal strain scratch.
    pub m_dyy: SharedVec<Real>,
    /// Principal strain scratch.
    pub m_dzz: SharedVec<Real>,
    /// Monotonic-q velocity gradient scratch.
    pub m_delv_xi: SharedVec<Real>,
    /// Monotonic-q velocity gradient scratch.
    pub m_delv_eta: SharedVec<Real>,
    /// Monotonic-q velocity gradient scratch.
    pub m_delv_zeta: SharedVec<Real>,
    /// Monotonic-q position gradient scratch.
    pub m_delx_xi: SharedVec<Real>,
    /// Monotonic-q position gradient scratch.
    pub m_delx_eta: SharedVec<Real>,
    /// Monotonic-q position gradient scratch.
    pub m_delx_zeta: SharedVec<Real>,

    // --- immutable connectivity ---
    /// 8 node indices per element.
    pub m_nodelist: Vec<Index>,
    /// ξ− face neighbour.
    pub m_lxim: Vec<Index>,
    /// ξ+ face neighbour.
    pub m_lxip: Vec<Index>,
    /// η− face neighbour.
    pub m_letam: Vec<Index>,
    /// η+ face neighbour.
    pub m_letap: Vec<Index>,
    /// ζ− face neighbour.
    pub m_lzetam: Vec<Index>,
    /// ζ+ face neighbour.
    pub m_lzetap: Vec<Index>,
    /// Boundary-condition flags.
    pub m_elem_bc: Vec<i32>,
    /// Symmetry-plane node lists.
    pub m_symm_x: Vec<Index>,
    /// Symmetry-plane node lists.
    pub m_symm_y: Vec<Index>,
    /// Symmetry-plane node lists.
    pub m_symm_z: Vec<Index>,
    /// Node→element-corner list offsets (length `num_node + 1`).
    pub m_node_elem_start: Vec<Index>,
    /// Node→element-corner entries (`8·elem + corner`).
    pub m_node_elem_corner_list: Vec<Index>,

    /// Region decomposition.
    pub regions: Regions,
    /// Scalar control parameters.
    pub params: Params,
    /// Analytic-CFL initial timestep.
    initial_dt: Real,
}

impl Domain {
    /// Build a single-node Sedov problem of `size³` elements divided into
    /// `num_reg` regions (balance/cost as in the reference's `-b`/`-c`
    /// flags; `seed` fixes the region assignment).
    pub fn build(size: Index, num_reg: usize, balance: i32, cost: i32, seed: u64) -> Self {
        assert!(size >= 1, "problem size must be >= 1");
        Self::build_subdomain(MeshShape::cube(size), num_reg, balance, cost, seed)
    }

    /// Build one sub-brick of the global Sedov cube (the basis of the
    /// `multidom` multi-domain extension). Internal faces carry COMM
    /// boundary flags and ghost regions for the monotonic-q gradients; the
    /// blast energy is deposited only on the subdomain containing the
    /// global origin element.
    pub fn build_subdomain(
        shape: MeshShape,
        num_reg: usize,
        balance: i32,
        cost: i32,
        seed: u64,
    ) -> Self {
        assert!(shape.nx >= 1 && shape.ny >= 1 && shape.nz >= 1);
        assert!(
            shape.x_offset + shape.nx <= shape.global_nx
                && shape.y_offset + shape.ny <= shape.global_ny
                && shape.z_offset + shape.nz <= shape.global_nz,
            "sub-brick exceeds the global mesh"
        );
        debug_assert!(
            shape.global_nx == shape.global_ny && shape.global_ny == shape.global_nz,
            "the Sedov problem is defined on a cube"
        );
        let num_elem = shape.num_elem();
        let num_node = shape.num_node();

        let (x, y, z) = mesh::build_coordinates(shape);
        let nodelist = mesh::build_nodelist(shape);
        let (lxim, lxip, letam, letap, lzetam, lzetap) = mesh::build_connectivity(shape);
        let elem_bc = mesh::build_boundary_conditions(shape);
        let (symm_x, symm_y, symm_z) = mesh::build_symmetry_planes(shape);
        let (node_elem_start, node_elem_corner_list) =
            mesh::build_node_elem_corners(&nodelist, num_node);
        let regions = Regions::create(num_elem, num_reg, balance, cost, seed);

        // Initialize volumes and masses from the initial geometry. For
        // subdomains, boundary-plane nodal masses are completed by the
        // halo exchange in `multidom`.
        let mut volo = vec![0.0; num_elem];
        let mut elem_mass = vec![0.0; num_elem];
        let mut nodal_mass = vec![0.0; num_node];
        let mut xl = [0.0; 8];
        let mut yl = [0.0; 8];
        let mut zl = [0.0; 8];
        for e in 0..num_elem {
            let nl = &nodelist[8 * e..8 * e + 8];
            for c in 0..8 {
                xl[c] = x[nl[c]];
                yl[c] = y[nl[c]];
                zl[c] = z[nl[c]];
            }
            let volume = calc_elem_volume(&xl, &yl, &zl);
            volo[e] = volume;
            elem_mass[e] = volume;
            for &n in nl {
                nodal_mass[n] += volume / 8.0;
            }
        }

        // Deposit the blast energy in the global origin element (local
        // element 0 of the origin sub-brick), scaled so the problem is
        // size-invariant, and derive the analytic-CFL initial dt (the same
        // value on every subdomain). The scale uses the *global* extent so
        // every sub-brick of one problem agrees on the deposit.
        let scale = shape.global_nx as Real / 45.0;
        let einit = EBASE * scale * scale * scale;
        let mut e_field = vec![0.0; num_elem];
        if shape.x_offset == 0 && shape.y_offset == 0 && shape.z_offset == 0 {
            e_field[0] = einit;
        }
        let initial_dt = 0.5 * volo[0].cbrt() / (2.0 * einit).sqrt();

        // Ghost element regions for the monotonic-q gradients: one region
        // per COMM face, laid out after the real elements in Face order.
        let grad_len = shape.grad_len();

        let zeros_e = || SharedVec::from_elem(0.0, num_elem);
        let zeros_g = || SharedVec::from_elem(0.0, grad_len);
        let zeros_n = || SharedVec::from_elem(0.0, num_node);

        Self {
            shape,
            num_elem,
            num_node,
            m_x: SharedVec::from_vec(x),
            m_y: SharedVec::from_vec(y),
            m_z: SharedVec::from_vec(z),
            m_xd: zeros_n(),
            m_yd: zeros_n(),
            m_zd: zeros_n(),
            m_xdd: zeros_n(),
            m_ydd: zeros_n(),
            m_zdd: zeros_n(),
            m_fx: zeros_n(),
            m_fy: zeros_n(),
            m_fz: zeros_n(),
            m_nodal_mass: SharedVec::from_vec(nodal_mass),
            m_e: SharedVec::from_vec(e_field),
            m_p: zeros_e(),
            m_q: zeros_e(),
            m_ql: zeros_e(),
            m_qq: zeros_e(),
            m_v: SharedVec::from_elem(1.0, num_elem),
            m_volo: SharedVec::from_vec(volo),
            m_delv: zeros_e(),
            m_vdov: zeros_e(),
            m_arealg: zeros_e(),
            m_ss: zeros_e(),
            m_elem_mass: SharedVec::from_vec(elem_mass),
            m_vnew: zeros_e(),
            m_dxx: zeros_e(),
            m_dyy: zeros_e(),
            m_dzz: zeros_e(),
            m_delv_xi: zeros_g(),
            m_delv_eta: zeros_g(),
            m_delv_zeta: zeros_g(),
            m_delx_xi: zeros_e(),
            m_delx_eta: zeros_e(),
            m_delx_zeta: zeros_e(),
            m_nodelist: nodelist,
            m_lxim: lxim,
            m_lxip: lxip,
            m_letam: letam,
            m_letap: letap,
            m_lzetam: lzetam,
            m_lzetap: lzetap,
            m_elem_bc: elem_bc,
            m_symm_x: symm_x,
            m_symm_y: symm_y,
            m_symm_z: symm_z,
            m_node_elem_start: node_elem_start,
            m_node_elem_corner_list: node_elem_corner_list,
            regions,
            params: Params::default(),
            initial_dt,
        }
    }

    /// Edge length in elements (`-s`; the ξ extent for subdomains).
    #[inline]
    pub fn size(&self) -> Index {
        self.shape.nx
    }

    /// The mesh shape (extents and slab position).
    #[inline]
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// Ghost-region base index for a COMM face's halo in the gradient
    /// arrays (`delv_xi/eta/zeta`), if this subdomain has one.
    #[inline]
    pub fn ghost_base(&self, face: Face) -> Option<Index> {
        self.shape.ghost_base(face)
    }

    /// Ghost-region base index for the ζ− halo of the gradient arrays.
    #[inline]
    pub fn ghost_zm_base(&self) -> Option<Index> {
        self.shape.ghost_base(Face::Zm)
    }

    /// Ghost-region base index for the ζ+ halo of the gradient arrays.
    #[inline]
    pub fn ghost_zp_base(&self) -> Option<Index> {
        self.shape.ghost_base(Face::Zp)
    }

    /// Total element count (`nx·ny·nz`).
    #[inline]
    pub fn num_elem(&self) -> Index {
        self.num_elem
    }

    /// Total node count (`(nx+1)(ny+1)(nz+1)`).
    #[inline]
    pub fn num_node(&self) -> Index {
        self.num_node
    }

    /// Number of regions.
    #[inline]
    pub fn num_reg(&self) -> usize {
        self.regions.num_reg
    }

    /// Analytic-CFL initial timestep.
    #[inline]
    pub fn initial_dt(&self) -> Real {
        self.initial_dt
    }

    /// The 8 node indices of element `e`.
    #[inline]
    pub fn nodelist(&self, e: Index) -> &[Index] {
        &self.m_nodelist[8 * e..8 * e + 8]
    }

    /// Element-corner entries of node `n` (each is `8·elem + corner`).
    #[inline]
    pub fn node_elem_corners(&self, n: Index) -> &[Index] {
        &self.m_node_elem_corner_list[self.m_node_elem_start[n]..self.m_node_elem_start[n + 1]]
    }

    real_fields! {
        /// Node x-coordinate.
        x set_x m_x;
        /// Node y-coordinate.
        y set_y m_y;
        /// Node z-coordinate.
        z set_z m_z;
        /// Node x-velocity.
        xd set_xd m_xd;
        /// Node y-velocity.
        yd set_yd m_yd;
        /// Node z-velocity.
        zd set_zd m_zd;
        /// Node x-acceleration.
        xdd set_xdd m_xdd;
        /// Node y-acceleration.
        ydd set_ydd m_ydd;
        /// Node z-acceleration.
        zdd set_zdd m_zdd;
        /// Nodal x-force.
        fx set_fx m_fx;
        /// Nodal y-force.
        fy set_fy m_fy;
        /// Nodal z-force.
        fz set_fz m_fz;
        /// Nodal mass.
        nodal_mass set_nodal_mass m_nodal_mass;
        /// Element internal energy.
        e set_e m_e;
        /// Element pressure.
        p set_p m_p;
        /// Element artificial viscosity.
        q set_q m_q;
        /// Linear q term.
        ql set_ql m_ql;
        /// Quadratic q term.
        qq set_qq m_qq;
        /// Element relative volume.
        v set_v m_v;
        /// Element reference volume.
        volo set_volo m_volo;
        /// Relative volume change.
        delv set_delv m_delv;
        /// Volume derivative over volume.
        vdov set_vdov m_vdov;
        /// Characteristic length.
        arealg set_arealg m_arealg;
        /// Sound speed.
        ss set_ss m_ss;
        /// Element mass.
        elem_mass set_elem_mass m_elem_mass;
        /// New relative volume (scratch).
        vnew set_vnew m_vnew;
        /// Principal strain xx (scratch).
        dxx set_dxx m_dxx;
        /// Principal strain yy (scratch).
        dyy set_dyy m_dyy;
        /// Principal strain zz (scratch).
        dzz set_dzz m_dzz;
        /// Velocity gradient ξ (scratch).
        delv_xi set_delv_xi m_delv_xi;
        /// Velocity gradient η (scratch).
        delv_eta set_delv_eta m_delv_eta;
        /// Velocity gradient ζ (scratch).
        delv_zeta set_delv_zeta m_delv_zeta;
        /// Position gradient ξ (scratch).
        delx_xi set_delx_xi m_delx_xi;
        /// Position gradient η (scratch).
        delx_eta set_delx_eta m_delx_eta;
        /// Position gradient ζ (scratch).
        delx_zeta set_delx_zeta m_delx_zeta;
    }

    /// Gather the coordinates of element `e`'s corners into local arrays.
    #[inline]
    pub fn collect_domain_nodes_to_elem_nodes(
        &self,
        e: Index,
        xl: &mut [Real; 8],
        yl: &mut [Real; 8],
        zl: &mut [Real; 8],
    ) {
        let nl = self.nodelist(e);
        for c in 0..8 {
            xl[c] = self.x(nl[c]);
            yl[c] = self.y(nl[c]);
            zl[c] = self.z(nl[c]);
        }
    }

    /// Gather the velocities of element `e`'s corners into local arrays.
    #[inline]
    pub fn collect_elem_velocities(
        &self,
        e: Index,
        xdl: &mut [Real; 8],
        ydl: &mut [Real; 8],
        zdl: &mut [Real; 8],
    ) {
        let nl = self.nodelist(e);
        for c in 0..8 {
            xdl[c] = self.xd(nl[c]);
            ydl[c] = self.yd(nl[c]);
            zdl[c] = self.zd(nl[c]);
        }
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("shape", &self.shape)
            .field("num_elem", &self.num_elem)
            .field("num_node", &self.num_node)
            .field("num_reg", &self.regions.num_reg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_domain() {
        let d = Domain::build(4, 3, 1, 1, 0);
        assert_eq!(d.num_elem(), 64);
        assert_eq!(d.num_node(), 125);
        assert_eq!(d.num_reg(), 3);
    }

    #[test]
    fn initial_volumes_match_uniform_hexes() {
        let d = Domain::build(5, 1, 1, 1, 0);
        let h = crate::params::MESH_EXTENT / 5.0;
        let expect = h * h * h;
        for e in 0..d.num_elem() {
            assert!((d.volo(e) - expect).abs() < 1e-12, "elem {e}");
            assert!((d.elem_mass(e) - expect).abs() < 1e-12);
            assert_eq!(d.v(e), 1.0);
        }
    }

    #[test]
    fn total_nodal_mass_equals_total_volume() {
        let d = Domain::build(6, 2, 1, 1, 0);
        let total_nodal: Real = (0..d.num_node()).map(|n| d.nodal_mass(n)).sum();
        let total_vol: Real = (0..d.num_elem()).map(|e| d.volo(e)).sum();
        assert!((total_nodal - total_vol).abs() < 1e-9);
        // The whole mesh is a 1.125³ cube.
        let extent = crate::params::MESH_EXTENT;
        assert!((total_vol - extent * extent * extent).abs() < 1e-9);
    }

    #[test]
    fn energy_only_in_origin_element() {
        let d = Domain::build(45, 11, 1, 1, 0);
        assert!(
            (d.e(0) - EBASE).abs() < 1.0,
            "scale=1 at size 45: e0={}",
            d.e(0)
        );
        for e in 1..100 {
            assert_eq!(d.e(e), 0.0);
        }
    }

    #[test]
    fn energy_scales_with_size_cubed() {
        let d90 = Domain::build(90, 11, 1, 1, 0);
        let expect = EBASE * 8.0; // (90/45)³
        assert!((d90.e(0) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn initial_dt_matches_reference_formula() {
        let d = Domain::build(45, 11, 1, 1, 0);
        let want = 0.5 * d.volo(0).cbrt() / (2.0 * d.e(0)).sqrt();
        assert_eq!(d.initial_dt(), want);
        // 0.5·0.025 / √(2·3.948746e7) ≈ 1.4e-6 for s = 45.
        assert!(d.initial_dt() > 1e-7 && d.initial_dt() < 1e-5);
    }

    #[test]
    fn accessors_roundtrip() {
        let d = Domain::build(2, 1, 1, 1, 0);
        d.set_xd(3, 1.5);
        assert_eq!(d.xd(3), 1.5);
        d.set_e(1, -2.0);
        assert_eq!(d.e(1), -2.0);
    }

    #[test]
    fn collect_nodes_to_elem() {
        let d = Domain::build(3, 1, 1, 1, 0);
        let mut x = [0.0; 8];
        let mut y = [0.0; 8];
        let mut z = [0.0; 8];
        d.collect_domain_nodes_to_elem_nodes(0, &mut x, &mut y, &mut z);
        let v = crate::kernels::volume::calc_elem_volume(&x, &y, &z);
        assert!((v - d.volo(0)).abs() < 1e-15);
    }
}
