//! Material regions.
//!
//! LULESH divides the mesh elements into `numReg` regions of randomly chosen
//! contiguous runs, then models differing material cost by *repeating* the
//! EOS evaluation `rep` times per region: 1× for the cheap half, `1+cost`×
//! (= 2× at the default cost 1) for most of the rest, and `10·(1+cost)`×
//! (= 20×) for the most expensive ~5% — the deliberate load imbalance the
//! paper's per-region task parallelism exploits (§II-B, §IV).
//!
//! Port of `Domain::CreateRegionIndexSets`. Substitution note (DESIGN.md §7):
//! the C reference uses glibc `rand()` seeded with `srand(0)`; we use a
//! fixed-seed `StdRng`. The run-length and weight distributions are
//! identical, so region size/cost statistics match, but the exact element
//! assignment differs from the C binary.

use crate::types::Index;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Region decomposition of the element set.
#[derive(Debug, Clone)]
pub struct Regions {
    /// Number of regions.
    pub num_reg: usize,
    /// The `-c` cost parameter (default 1).
    pub cost: i32,
    /// 1-based region number per element (`regNumList`).
    pub reg_num_list: Vec<i32>,
    /// Element indices per region (`regElemlist`), 0-based region index.
    pub reg_elem_list: Vec<Vec<Index>>,
}

impl Regions {
    /// Assign `num_elem` elements to `num_reg` regions with the reference's
    /// run-length distribution and region weighting `(r+1)^balance`.
    pub fn create(num_elem: Index, num_reg: usize, balance: i32, cost: i32, seed: u64) -> Self {
        assert!(num_reg >= 1, "need at least one region");
        assert!(
            (0..=8).contains(&balance),
            "balance (-b) must be in 0..=8: larger exponents overflow the \
             region weights (the reference has the same limit implicitly)"
        );
        assert!(cost >= 0, "cost (-c) must be non-negative");
        let mut reg_num_list = vec![0i32; num_elem];
        let mut reg_elem_list: Vec<Vec<Index>> = vec![Vec::new(); num_reg];

        if num_reg == 1 {
            // Fill the entire mesh with region 1.
            for (i, r) in reg_num_list.iter_mut().enumerate() {
                *r = 1;
                reg_elem_list[0].push(i);
            }
            return Self {
                num_reg,
                cost,
                reg_num_list,
                reg_elem_list,
            };
        }

        let mut rng = StdRng::seed_from_u64(seed);

        // Relative weights of the regions (the `-b` balance flag).
        let mut reg_bin_end = vec![0i64; num_reg];
        let mut cost_denominator: i64 = 0;
        for (i, end) in reg_bin_end.iter_mut().enumerate() {
            cost_denominator += ((i + 1) as i64).pow(balance as u32);
            *end = cost_denominator;
        }

        let mut next_index: Index = 0;
        let mut last_reg: i32 = -1;
        while next_index < num_elem {
            // Pick the region, re-rolling if it repeats the previous one.
            let mut region_num;
            loop {
                let region_var = rng.gen_range(0..cost_denominator);
                let mut i = 0;
                while region_var >= reg_bin_end[i] {
                    i += 1;
                }
                region_num = (i % num_reg) as i32 + 1;
                if region_num != last_reg {
                    break;
                }
            }

            // Pick the run length from the reference's bin distribution.
            let bin_size = rng.gen_range(0..1000);
            let elements: Index = if bin_size < 773 {
                rng.gen_range(0..15) + 1
            } else if bin_size < 937 {
                rng.gen_range(0..16) + 16
            } else if bin_size < 970 {
                rng.gen_range(0..32) + 32
            } else if bin_size < 974 {
                rng.gen_range(0..64) + 64
            } else if bin_size < 978 {
                rng.gen_range(0..128) + 128
            } else if bin_size < 981 {
                rng.gen_range(0..256) + 256
            } else {
                rng.gen_range(0..1537) + 512
            };

            let runto = (next_index + elements).min(num_elem);
            while next_index < runto {
                reg_num_list[next_index] = region_num;
                reg_elem_list[(region_num - 1) as usize].push(next_index);
                next_index += 1;
            }
            last_reg = region_num;
        }

        Self {
            num_reg,
            cost,
            reg_num_list,
            reg_elem_list,
        }
    }

    /// Number of elements in region `r` (0-based).
    pub fn reg_elem_size(&self, r: usize) -> usize {
        self.reg_elem_list[r].len()
    }

    /// EOS repetition count for region `r` (0-based): the load-imbalance
    /// model of `EvalEOSForElems` ("cheap half / 2× middle / 20× top 5%").
    pub fn rep(&self, r: usize) -> usize {
        rep_for(r, self.num_reg, self.cost)
    }
}

/// Standalone `rep` computation (also used by the simulator's cost model).
pub fn rep_for(r: usize, num_reg: usize, cost: i32) -> usize {
    let cost = cost.max(0);
    if r < num_reg / 2 {
        1
    } else if r < num_reg - (num_reg + 15) / 20 {
        (1 + cost) as usize
    } else {
        (10 * (1 + cost)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_region_covers_everything() {
        let r = Regions::create(100, 1, 1, 1, 0);
        assert_eq!(r.reg_elem_size(0), 100);
        assert!(r.reg_num_list.iter().all(|&n| n == 1));
    }

    #[test]
    fn rep_distribution_default_11_regions() {
        // 11 regions, cost 1: regions 0..5 cheap (floor(11/2)=5 → 0..=4),
        // (11+15)/20 = 1 → the last region is 20×, regions 5..=9 are 2×.
        let reps: Vec<_> = (0..11).map(|r| rep_for(r, 11, 1)).collect();
        assert_eq!(reps, vec![1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 20]);
    }

    #[test]
    fn rep_distribution_21_regions() {
        let reps: Vec<_> = (0..21).map(|r| rep_for(r, 21, 1)).collect();
        assert_eq!(reps.iter().filter(|&&x| x == 1).count(), 10);
        assert_eq!(reps.iter().filter(|&&x| x == 20).count(), 1);
        assert_eq!(reps.iter().filter(|&&x| x == 2).count(), 10);
    }

    #[test]
    #[should_panic(expected = "balance")]
    fn oversized_balance_rejected() {
        let _ = Regions::create(100, 4, 40, 1, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = Regions::create(100, 4, 1, -1, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Regions::create(5000, 11, 1, 1, 0);
        let b = Regions::create(5000, 11, 1, 1, 0);
        assert_eq!(a.reg_num_list, b.reg_num_list);
        let c = Regions::create(5000, 11, 1, 1, 1);
        assert_ne!(
            a.reg_num_list, c.reg_num_list,
            "different seed should differ"
        );
    }

    #[test]
    fn all_regions_nonempty_for_realistic_sizes() {
        // 45³ elements over 11 regions: every region should receive work.
        let r = Regions::create(45 * 45 * 45, 11, 1, 1, 0);
        for i in 0..11 {
            assert!(r.reg_elem_size(i) > 0, "region {i} empty");
        }
    }

    proptest! {
        /// Every element lands in exactly one region, and the per-region
        /// lists agree with the per-element numbers.
        #[test]
        fn partition_is_exact(
            num_elem in 1usize..20_000,
            num_reg in 1usize..32,
            seed in 0u64..8,
        ) {
            let r = Regions::create(num_elem, num_reg, 1, 1, seed);
            let total: usize = (0..num_reg).map(|i| r.reg_elem_size(i)).sum();
            prop_assert_eq!(total, num_elem);
            let mut seen = vec![false; num_elem];
            for (ri, list) in r.reg_elem_list.iter().enumerate() {
                for &e in list {
                    prop_assert!(!seen[e], "element {} in two regions", e);
                    seen[e] = true;
                    prop_assert_eq!(r.reg_num_list[e] as usize, ri + 1);
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// `rep` is monotone non-decreasing in the region index and spans
        /// {1, 1+cost, 10(1+cost)}.
        #[test]
        fn rep_monotone(num_reg in 1usize..64, cost in 0i32..4) {
            let mut prev = 0;
            for r in 0..num_reg {
                let rep = rep_for(r, num_reg, cost);
                prop_assert!(rep >= prev);
                prop_assert!(
                    rep == 1
                        || rep == (1 + cost) as usize
                        || rep == (10 * (1 + cost)) as usize
                );
                prev = rep;
            }
        }
    }
}
