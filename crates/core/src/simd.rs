//! Explicit-width SIMD lane engine for the hot element kernels.
//!
//! Stable-Rust, zero-dependency data parallelism: [`Lanes<W>`] packs `W`
//! independent elements into one value and implements every arithmetic op
//! *elementwise*, so a lane-blocked kernel performs, per element, exactly
//! the same IEEE-754 operation sequence as the scalar loop — results are
//! bit-identical at every width (no reassociation, no horizontal
//! reductions). LLVM auto-vectorizes the fixed-length `[f64; W]` loops into
//! SSE/AVX code; correctness never depends on that happening.
//!
//! The shared per-element math of each ported kernel is written once,
//! generic over [`SimdReal`], and instantiated with `f64` (the `W = 1`
//! reference mode, also used for ragged tails) and with `Lanes<2|4|8>`.
//! Divergent branches are handled with per-lane selects
//! ([`SimdReal::select_lt`] etc.): both sides are computed and the untaken
//! lane's value discarded, which preserves bit-identity because the taken
//! side's operation sequence is unchanged.
//!
//! The active width is a process-global ([`set_active`]/[`active`]) that
//! the kernel entry points dispatch on internally, so driver call sites
//! need no signature changes and every driver (serial, OpenMP-style, task,
//! multi-domain) picks up `--simd` uniformly. Because all widths are
//! bit-identical, concurrently running tests that flip the global cannot
//! change any result.

// The elementwise loops index several arrays at once; iterator zips would
// obscure the per-lane operation.
#![allow(clippy::needless_range_loop)]

use crate::types::Real;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// `W` elements processed in lockstep. `W` must be a power of two ≤ 8 in
/// practice (2, 4, 8); `Lanes<1>` is legal and equivalent to `f64`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Lanes<const W: usize>(pub [Real; W]);

macro_rules! lanes_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> $trait for Lanes<W> {
            type Output = Self;
            #[inline]
            fn $method(self, rhs: Self) -> Self {
                let mut out = [0.0; W];
                for i in 0..W {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                Lanes(out)
            }
        }
    };
}
lanes_binop!(Add, add, +);
lanes_binop!(Sub, sub, -);
lanes_binop!(Mul, mul, *);
lanes_binop!(Div, div, /);

impl<const W: usize> Neg for Lanes<W> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = -self.0[i];
        }
        Lanes(out)
    }
}

impl<const W: usize> Lanes<W> {
    /// Load `W` consecutive values from `src[at..at + W]`.
    #[inline]
    pub fn load(src: &[Real], at: usize) -> Self {
        let mut out = [0.0; W];
        out.copy_from_slice(&src[at..at + W]);
        Lanes(out)
    }

    /// Store the lanes to `dst[at..at + W]`.
    #[inline]
    pub fn store(self, dst: &mut [Real], at: usize) {
        dst[at..at + W].copy_from_slice(&self.0);
    }

    /// Build from a per-lane function (the gather primitive).
    #[inline]
    pub fn gather(mut f: impl FnMut(usize) -> Real) -> Self {
        let mut out = [0.0; W];
        for (l, o) in out.iter_mut().enumerate() {
            *o = f(l);
        }
        Lanes(out)
    }
}

/// The value abstraction the generic kernel bodies are written against:
/// either a scalar `f64` or a [`Lanes<W>`] pack. Every operation is
/// elementwise, so `f64` and any `Lanes<W>` produce bit-identical
/// per-element results.
pub trait SimdReal:
    Copy
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Number of elements per value.
    const LANES: usize;
    /// Broadcast a scalar to every lane.
    fn splat(v: Real) -> Self;
    /// Per-lane `sqrt`.
    fn sqrt(self) -> Self;
    /// Per-lane `cbrt`.
    fn cbrt(self) -> Self;
    /// Per-lane `abs`.
    fn abs(self) -> Self;
    /// Per lane: `if self < rhs { t } else { f }`.
    fn select_lt(self, rhs: Self, t: Self, f: Self) -> Self;
    /// Per lane: `if self <= rhs { t } else { f }`.
    fn select_le(self, rhs: Self, t: Self, f: Self) -> Self;
    /// Per lane: `if self > rhs { t } else { f }`.
    fn select_gt(self, rhs: Self, t: Self, f: Self) -> Self;
    /// Per lane: `if self >= rhs { t } else { f }`.
    fn select_ge(self, rhs: Self, t: Self, f: Self) -> Self;
    /// All-zero value.
    #[inline]
    fn zero() -> Self {
        Self::splat(0.0)
    }
}

impl SimdReal for Real {
    const LANES: usize = 1;
    #[inline]
    fn splat(v: Real) -> Self {
        v
    }
    #[inline]
    fn sqrt(self) -> Self {
        Real::sqrt(self)
    }
    #[inline]
    fn cbrt(self) -> Self {
        Real::cbrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Real::abs(self)
    }
    #[inline]
    fn select_lt(self, rhs: Self, t: Self, f: Self) -> Self {
        if self < rhs {
            t
        } else {
            f
        }
    }
    #[inline]
    fn select_le(self, rhs: Self, t: Self, f: Self) -> Self {
        if self <= rhs {
            t
        } else {
            f
        }
    }
    #[inline]
    fn select_gt(self, rhs: Self, t: Self, f: Self) -> Self {
        if self > rhs {
            t
        } else {
            f
        }
    }
    #[inline]
    fn select_ge(self, rhs: Self, t: Self, f: Self) -> Self {
        if self >= rhs {
            t
        } else {
            f
        }
    }
}

macro_rules! lanes_select {
    ($method:ident, $op:tt) => {
        #[inline]
        fn $method(self, rhs: Self, t: Self, f: Self) -> Self {
            let mut out = [0.0; W];
            for i in 0..W {
                out[i] = if self.0[i] $op rhs.0[i] { t.0[i] } else { f.0[i] };
            }
            Lanes(out)
        }
    };
}

impl<const W: usize> SimdReal for Lanes<W> {
    const LANES: usize = W;
    #[inline]
    fn splat(v: Real) -> Self {
        Lanes([v; W])
    }
    #[inline]
    fn sqrt(self) -> Self {
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = self.0[i].sqrt();
        }
        Lanes(out)
    }
    #[inline]
    fn cbrt(self) -> Self {
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = self.0[i].cbrt();
        }
        Lanes(out)
    }
    #[inline]
    fn abs(self) -> Self {
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = self.0[i].abs();
        }
        Lanes(out)
    }
    lanes_select!(select_lt, <);
    lanes_select!(select_le, <=);
    lanes_select!(select_gt, >);
    lanes_select!(select_ge, >=);
}

/// The lane widths the kernels are instantiated at.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaneWidth {
    /// Scalar reference mode (the ground truth).
    W1,
    /// 2 lanes (one SSE2 register).
    W2,
    /// 4 lanes (one AVX2 register).
    W4,
    /// 8 lanes (one AVX-512 register, or two AVX2).
    W8,
}

impl LaneWidth {
    /// Every width, scalar first.
    pub const ALL: [LaneWidth; 4] = [Self::W1, Self::W2, Self::W4, Self::W8];

    /// The element count per lane group.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            Self::W1 => 1,
            Self::W2 => 2,
            Self::W4 => 4,
            Self::W8 => 8,
        }
    }

    /// Inverse of [`lanes`](Self::lanes).
    pub fn from_lanes(n: usize) -> Option<Self> {
        match n {
            1 => Some(Self::W1),
            2 => Some(Self::W2),
            4 => Some(Self::W4),
            8 => Some(Self::W8),
            _ => None,
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::W1 => write!(f, "scalar"),
            Self::W2 => write!(f, "w2"),
            Self::W4 => write!(f, "w4"),
            Self::W8 => write!(f, "w8"),
        }
    }
}

/// Process-global active width, encoded as the lane count. Default scalar.
static ACTIVE: AtomicU8 = AtomicU8::new(1);

/// Set the lane width every ported kernel dispatches to from now on.
/// Safe to call at any time: all widths produce bit-identical results, so
/// in-flight work cannot be perturbed — only its speed.
pub fn set_active(w: LaneWidth) {
    ACTIVE.store(w.lanes() as u8, Ordering::Relaxed);
}

/// The width the ported kernels currently dispatch to.
pub fn active() -> LaneWidth {
    LaneWidth::from_lanes(ACTIVE.load(Ordering::Relaxed) as usize).unwrap_or(LaneWidth::W1)
}

/// Cache-blocking budget (bytes of per-element working set the inner block
/// loop targets keeping resident). Default: half a typical 32 KiB L1D.
static L1_BUDGET: AtomicUsize = AtomicUsize::new(16 * 1024);

/// Override the block budget (bytes). The task driver derives this from the
/// per-phase busy counters in `taskrt::phases`: long mean task times mean
/// partitions far exceed L1 and blocking pays, short ones mean the
/// partition already fits and larger blocks reduce loop overhead. Purely a
/// performance knob — block size never changes results.
pub fn set_l1_budget(bytes: usize) {
    L1_BUDGET.store(bytes.clamp(4 * 1024, 512 * 1024), Ordering::Relaxed);
}

/// Current block budget in bytes.
pub fn l1_budget() -> usize {
    L1_BUDGET.load(Ordering::Relaxed)
}

/// Map the runtime's per-phase granularity signal (mean busy nanoseconds
/// per executed task, from `taskrt::phases`) to a block budget for
/// [`set_l1_budget`]. Short tasks stream so little data per invocation
/// that their partition already fits in cache — a large budget effectively
/// disables the extra blocking loop. Long tasks stream far past L1, so the
/// block budget drops back to the L1-resident default. Non-finite input
/// (no tasks executed yet) keeps the default.
pub fn budget_for_task_grain(mean_task_ns: f64) -> usize {
    if !mean_task_ns.is_finite() {
        16 * 1024
    } else if mean_task_ns < 20_000.0 {
        // ≲20 µs of busy time touches well under any L1: one block.
        512 * 1024
    } else if mean_task_ns < 200_000.0 {
        // Mid-grain tasks: tile at the full 32 KiB L1D.
        32 * 1024
    } else {
        // Coarse tasks stream megabytes: keep blocks L1-resident with
        // headroom for the stack and gather buffers.
        16 * 1024
    }
}

/// Elements per cache block for a kernel streaming `bytes_per_elem`, rounded
/// down to a multiple of the lane count `w` (so lane groups never straddle a
/// block boundary) and floored at one lane group.
pub fn block_len(bytes_per_elem: usize, w: usize) -> usize {
    let raw = l1_budget() / bytes_per_elem.max(1);
    let blocks = (raw / w.max(1)) * w.max(1);
    blocks.max(w.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_arithmetic_is_elementwise() {
        let a = Lanes([1.0, 2.0, 3.0, 4.0]);
        let b = Lanes([0.5, 0.25, 2.0, -1.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 5.0, 3.0]);
        assert_eq!((a - b).0, [0.5, 1.75, 1.0, 5.0]);
        assert_eq!((a * b).0, [0.5, 0.5, 6.0, -4.0]);
        assert_eq!((a / b).0, [2.0, 8.0, 1.5, -4.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn lanes_ops_match_scalar_bitwise() {
        // The core bit-identity property: each lane equals the scalar op.
        let xs = [1.75, -0.3, 1e-40, 7.7];
        let ys = [3.25, 0.7, 1e20, -0.1];
        let a = Lanes(xs);
        let b = Lanes(ys);
        for i in 0..4 {
            assert_eq!((a + b).0[i].to_bits(), (xs[i] + ys[i]).to_bits());
            assert_eq!((a * b).0[i].to_bits(), (xs[i] * ys[i]).to_bits());
            assert_eq!((a / b).0[i].to_bits(), (xs[i] / ys[i]).to_bits());
            assert_eq!(a.sqrt().0[i].to_bits(), xs[i].sqrt().to_bits());
            assert_eq!(a.cbrt().0[i].to_bits(), xs[i].cbrt().to_bits());
            assert_eq!(
                a.select_le(b, a, b).0[i].to_bits(),
                SimdReal::select_le(xs[i], ys[i], xs[i], ys[i]).to_bits()
            );
        }
    }

    #[test]
    fn selects_cover_all_comparisons() {
        let a = Lanes([1.0, 2.0]);
        let b = Lanes([2.0, 2.0]);
        let t = Lanes([10.0, 10.0]);
        let f = Lanes([20.0, 20.0]);
        assert_eq!(a.select_lt(b, t, f).0, [10.0, 20.0]);
        assert_eq!(a.select_le(b, t, f).0, [10.0, 10.0]);
        assert_eq!(a.select_gt(b, t, f).0, [20.0, 20.0]);
        assert_eq!(a.select_ge(b, t, f).0, [20.0, 10.0]);
    }

    #[test]
    fn load_store_gather_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let l = Lanes::<4>::load(&src, 1);
        assert_eq!(l.0, [2.0, 3.0, 4.0, 5.0]);
        let mut dst = [0.0; 6];
        l.store(&mut dst, 2);
        assert_eq!(dst, [0.0, 0.0, 2.0, 3.0, 4.0, 5.0]);
        let g = Lanes::<3>::gather(|i| src[2 * i]);
        assert_eq!(g.0, [1.0, 3.0, 5.0]);
    }

    #[test]
    fn width_global_roundtrip() {
        // Don't disturb other tests: restore the prior width.
        let prior = active();
        for w in LaneWidth::ALL {
            set_active(w);
            assert_eq!(active(), w);
            assert_eq!(LaneWidth::from_lanes(w.lanes()), Some(w));
        }
        set_active(prior);
        assert_eq!(LaneWidth::from_lanes(3), None);
    }

    #[test]
    fn block_len_is_lane_aligned_and_positive() {
        for w in [1usize, 2, 4, 8] {
            for bpe in [1usize, 64, 416, 1 << 20] {
                let b = block_len(bpe, w);
                assert!(b >= w, "block_len({bpe}, {w}) = {b}");
                assert_eq!(b % w, 0);
            }
        }
        let prior = l1_budget();
        set_l1_budget(8 * 1024);
        assert_eq!(l1_budget(), 8 * 1024);
        set_l1_budget(1); // clamped to the floor
        assert_eq!(l1_budget(), 4 * 1024);
        set_l1_budget(prior);
    }

    #[test]
    fn task_grain_budget_is_monotone_in_task_length() {
        // No signal yet ⇒ keep the default.
        assert_eq!(budget_for_task_grain(f64::INFINITY), 16 * 1024);
        assert_eq!(budget_for_task_grain(f64::NAN), 16 * 1024);
        // Fine tasks get the largest budget, coarse ones the smallest.
        let fine = budget_for_task_grain(5_000.0);
        let mid = budget_for_task_grain(50_000.0);
        let coarse = budget_for_task_grain(2_000_000.0);
        assert!(fine > mid && mid > coarse);
        // Every tier survives the set_l1_budget clamp unchanged.
        let prior = l1_budget();
        for b in [fine, mid, coarse] {
            set_l1_budget(b);
            assert_eq!(l1_budget(), b);
        }
        set_l1_budget(prior);
    }
}
