//! Serial LULESH binary: the golden-reference runner with the artifact's
//! CLI and CSV output format.

use lulesh_core::{serial, Domain, Opts, RunReport};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-serial"));
            std::process::exit(2);
        }
    };

    // The golden reference still honours `--simd`: every width is
    // bit-identical, so wider lanes only speed the reference up.
    lulesh_core::simd::set_active(opts.simd.static_width());

    let domain = Domain::build(opts.size, opts.num_reg, opts.balance, opts.cost, opts.seed);
    let t0 = Instant::now();
    let state = match serial::run(&domain, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    let report = RunReport::collect(&domain, &state, 1, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
