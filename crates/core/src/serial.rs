//! The serial reference driver: `LagrangeLeapFrog` composed from the
//! kernels in reference order, one chunk covering the whole mesh.
//!
//! This driver is the golden reference for the two parallel ports — they
//! must reproduce its results to the last bit (same kernels, same summation
//! orders).

use crate::domain::Domain;
use crate::kernels::{constraints, eos, hourglass, kinematics, monoq, nodal, stress};
use crate::params::SimState;
use crate::timestep::time_increment;
use crate::types::{LuleshError, Real};
use parutil::Chunk;

/// Whole-mesh scratch arrays reused across iterations (the reference
/// allocates/frees them every call; persistence changes no results).
#[derive(Debug)]
pub struct SerialScratch {
    /// Stress diagonal (`sigxx/yy/zz`), mesh length.
    pub sigxx: Vec<Real>,
    /// See [`Self::sigxx`].
    pub sigyy: Vec<Real>,
    /// See [`Self::sigxx`].
    pub sigzz: Vec<Real>,
    /// Jacobian determinants / absolute volumes, mesh length.
    pub determ: Vec<Real>,
    /// Per-corner stress forces, `8·num_elem`.
    pub fx_elem: Vec<Real>,
    /// See [`Self::fx_elem`].
    pub fy_elem: Vec<Real>,
    /// See [`Self::fx_elem`].
    pub fz_elem: Vec<Real>,
    /// Per-corner hourglass forces, `8·num_elem`.
    pub fx_hg: Vec<Real>,
    /// See [`Self::fx_hg`].
    pub fy_hg: Vec<Real>,
    /// See [`Self::fx_hg`].
    pub fz_hg: Vec<Real>,
    /// Hourglass volume derivatives, `8·num_elem`.
    pub dvdx: Vec<Real>,
    /// See [`Self::dvdx`].
    pub dvdy: Vec<Real>,
    /// See [`Self::dvdx`].
    pub dvdz: Vec<Real>,
    /// Hourglass corner coordinates, `8·num_elem`.
    pub x8n: Vec<Real>,
    /// See [`Self::x8n`].
    pub y8n: Vec<Real>,
    /// See [`Self::x8n`].
    pub z8n: Vec<Real>,
    /// Clamped new relative volumes, mesh length.
    pub vnewc: Vec<Real>,
    /// Region-length EOS scratch.
    pub eos: eos::EosScratch,
}

impl SerialScratch {
    /// Scratch sized for `num_elem` elements.
    pub fn new(num_elem: usize) -> Self {
        Self {
            sigxx: vec![0.0; num_elem],
            sigyy: vec![0.0; num_elem],
            sigzz: vec![0.0; num_elem],
            determ: vec![0.0; num_elem],
            fx_elem: vec![0.0; 8 * num_elem],
            fy_elem: vec![0.0; 8 * num_elem],
            fz_elem: vec![0.0; 8 * num_elem],
            fx_hg: vec![0.0; 8 * num_elem],
            fy_hg: vec![0.0; 8 * num_elem],
            fz_hg: vec![0.0; 8 * num_elem],
            dvdx: vec![0.0; 8 * num_elem],
            dvdy: vec![0.0; 8 * num_elem],
            dvdz: vec![0.0; 8 * num_elem],
            x8n: vec![0.0; 8 * num_elem],
            y8n: vec![0.0; 8 * num_elem],
            z8n: vec![0.0; 8 * num_elem],
            vnewc: vec![0.0; num_elem],
            eos: eos::EosScratch::default(),
        }
    }
}

fn elems(d: &Domain) -> Chunk {
    Chunk {
        begin: 0,
        end: d.num_elem(),
    }
}

fn nodes(d: &Domain) -> Chunk {
    Chunk {
        begin: 0,
        end: d.num_node(),
    }
}

/// `CalcForceForNodes`: the element-force half of `LagrangeNodal` (stress
/// and hourglass pipelines plus the nodal gathers). Separated out so the
/// multi-domain driver can exchange boundary-plane forces before the node
/// state advance.
pub fn calc_force_for_nodes(d: &Domain, s: &mut SerialScratch) -> Result<(), LuleshError> {
    stress::zero_forces(d, nodes(d));
    stress::init_stress_terms_for_elems(d, &mut s.sigxx, &mut s.sigyy, &mut s.sigzz, elems(d));
    stress::integrate_stress_for_elems(
        d,
        &s.sigxx,
        &s.sigyy,
        &s.sigzz,
        &mut s.determ,
        &mut s.fx_elem,
        &mut s.fy_elem,
        &mut s.fz_elem,
        elems(d),
    );
    stress::check_volume_error(&s.determ)?;
    stress::gather_forces_set(d, &s.fx_elem, &s.fy_elem, &s.fz_elem, nodes(d));

    hourglass::calc_hourglass_control_for_elems(
        d,
        &mut s.dvdx,
        &mut s.dvdy,
        &mut s.dvdz,
        &mut s.x8n,
        &mut s.y8n,
        &mut s.z8n,
        &mut s.determ,
        elems(d),
    )?;
    if d.params.hgcoef > 0.0 {
        hourglass::calc_fb_hourglass_force_for_elems(
            d,
            &s.determ,
            &s.x8n,
            &s.y8n,
            &s.z8n,
            &s.dvdx,
            &s.dvdy,
            &s.dvdz,
            d.params.hgcoef,
            &mut s.fx_hg,
            &mut s.fy_hg,
            &mut s.fz_hg,
            elems(d),
        );
        stress::gather_forces_add(d, &s.fx_hg, &s.fy_hg, &s.fz_hg, nodes(d));
    }
    Ok(())
}

/// Node state advance: acceleration, boundary conditions, velocity,
/// position (the second half of `LagrangeNodal`).
pub fn advance_nodes(d: &Domain, dt: Real) {
    nodal::calc_acceleration_for_nodes(d, nodes(d));
    nodal::apply_acceleration_boundary_conditions(
        d,
        Chunk {
            begin: 0,
            end: nodal::symm_list_len(d),
        },
    );
    nodal::calc_velocity_for_nodes(d, dt, d.params.u_cut, nodes(d));
    nodal::calc_position_for_nodes(d, dt, nodes(d));
}

/// `LagrangeNodal`: force calculation and node state advance.
pub fn lagrange_nodal(d: &Domain, s: &mut SerialScratch, dt: Real) -> Result<(), LuleshError> {
    calc_force_for_nodes(d, s)?;
    advance_nodes(d, dt);
    Ok(())
}

/// Element kinematics and monotonic-q gradients (the first half of
/// `LagrangeElements`). After this, the multi-domain driver exchanges the
/// ghost-plane velocity gradients.
pub fn calc_kinematics_and_gradients(d: &Domain, dt: Real) -> Result<(), LuleshError> {
    kinematics::calc_kinematics_for_elems(d, dt, elems(d));
    kinematics::calc_lagrange_elements_finish(d, elems(d))?;
    monoq::calc_monotonic_q_gradients_for_elems(d, elems(d));
    Ok(())
}

/// Monotonic-q limiter, material EOS and volume commit (the second half of
/// `LagrangeElements`).
pub fn apply_q_and_materials(d: &Domain, s: &mut SerialScratch) -> Result<(), LuleshError> {
    let p = d.params;
    for r in 0..d.num_reg() {
        monoq::calc_monotonic_q_region_for_elems(d, &d.regions.reg_elem_list[r], &p);
    }
    monoq::check_q_stop(d, p.qstop, elems(d))?;

    eos::fill_vnewc_clamped(d, &mut s.vnewc, p.eosvmin, p.eosvmax, elems(d));
    eos::check_eos_volume_bounds(d, p.eosvmin, p.eosvmax, elems(d))?;
    for r in 0..d.num_reg() {
        let rep = d.regions.rep(r);
        eos::eval_eos_for_elems(
            d,
            &s.vnewc,
            &d.regions.reg_elem_list[r],
            rep,
            &p,
            &mut s.eos,
        );
    }

    kinematics::update_volumes_for_elems(d, p.v_cut, elems(d));
    Ok(())
}

/// `LagrangeElements`: kinematics, artificial viscosity, EOS, volume commit.
pub fn lagrange_elements(d: &Domain, s: &mut SerialScratch, dt: Real) -> Result<(), LuleshError> {
    calc_kinematics_and_gradients(d, dt)?;
    apply_q_and_materials(d, s)
}

/// One `LagrangeLeapFrog` step: nodal phase, element phase, constraints.
pub fn lagrange_leap_frog(
    d: &Domain,
    s: &mut SerialScratch,
    state: &mut SimState,
) -> Result<(), LuleshError> {
    let dt = state.deltatime;
    lagrange_nodal(d, s, dt)?;
    lagrange_elements(d, s, dt)?;
    let (dtcourant, dthydro) =
        constraints::calc_time_constraints(d, d.params.qqc, d.params.dvovmax);
    state.dtcourant = dtcourant;
    state.dthydro = dthydro;
    Ok(())
}

/// Run the whole problem (or `max_cycles` iterations) serially. Returns the
/// final simulation state.
pub fn run(d: &Domain, max_cycles: u64) -> Result<SimState, LuleshError> {
    let mut state = SimState::new(d.initial_dt());
    let mut scratch = SerialScratch::new(d.num_elem());
    while state.time < d.params.stoptime && state.cycle < max_cycles {
        time_increment(&mut state, &d.params);
        lagrange_leap_frog(d, &mut scratch, &mut state)?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn single_step_runs_and_moves_energy() {
        let d = Domain::build(5, 1, 1, 1, 0);
        let state = run(&d, 1).unwrap();
        assert_eq!(state.cycle, 1);
        assert!(state.time > 0.0);
        // Energy must begin spreading from the origin element.
        assert!(d.e(0) > 0.0);
        // The origin element is compressed outward: neighbours gain q or p.
        let picked_up: usize = (0..d.num_elem())
            .filter(|&e| d.e(e) != 0.0 || d.p(e) != 0.0 || d.q(e) != 0.0)
            .count();
        assert!(picked_up >= 1);
    }

    #[test]
    fn several_steps_conserve_symmetry() {
        // The Sedov problem is symmetric in x/y/z; energies of transposed
        // elements on the z=0 plane must match (the reference's own
        // verification criterion).
        let d = Domain::build(8, 1, 1, 1, 0);
        run(&d, 20).unwrap();
        let n = d.size();
        let mut max_abs = 0.0f64;
        for j in 0..n {
            for k in j + 1..n {
                let diff = (d.e(j * n + k) - d.e(k * n + j)).abs();
                max_abs = max_abs.max(diff);
            }
        }
        assert!(max_abs < 1e-8, "symmetry violation {max_abs}");
    }

    #[test]
    fn region_count_does_not_change_physics() {
        // Regions alter iteration order per region but every element gets
        // the same EOS: results must agree across region counts closely.
        let d1 = Domain::build(6, 1, 1, 1, 0);
        let d11 = Domain::build(6, 7, 1, 1, 0);
        run(&d1, 15).unwrap();
        run(&d11, 15).unwrap();
        for e in 0..d1.num_elem() {
            let a = d1.e(e);
            let b = d11.e(e);
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "elem {e}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dt_remains_positive_and_bounded() {
        let d = Domain::build(6, 2, 1, 1, 0);
        let mut state = SimState::new(d.initial_dt());
        let mut scratch = SerialScratch::new(d.num_elem());
        for _ in 0..30 {
            time_increment(&mut state, &d.params);
            assert!(state.deltatime > 0.0);
            assert!(state.deltatime <= d.params.dtmax);
            lagrange_leap_frog(&d, &mut scratch, &mut state).unwrap();
        }
        assert!(
            state.dtcourant < 1.0e20,
            "constraints must bind once moving"
        );
    }
}
