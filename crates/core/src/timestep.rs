//! Time integration control (`TimeIncrement`): chooses the next timestep
//! from the Courant/hydro constraints with growth-rate limiting, and snaps
//! the final step onto `stoptime`.

use crate::params::{Params, SimState};
use crate::types::Real;

/// Advance `state.time`/`state.cycle` by one increment, updating
/// `state.deltatime` from the constraint values stored in the state.
pub fn time_increment(state: &mut SimState, p: &Params) {
    let mut targetdt = p.stoptime - state.time;

    if p.dtfixed <= 0.0 && state.cycle != 0 {
        let olddt = state.deltatime;

        // This will require a reduction in parallel.
        let mut gnewdt: Real = 1.0e20;
        if state.dtcourant < gnewdt {
            gnewdt = state.dtcourant / 2.0;
        }
        if state.dthydro < gnewdt {
            gnewdt = state.dthydro * 2.0 / 3.0;
        }

        let mut newdt = gnewdt;
        let ratio = newdt / olddt;
        if ratio >= 1.0 {
            if ratio < p.deltatimemultlb {
                newdt = olddt;
            } else if ratio > p.deltatimemultub {
                newdt = olddt * p.deltatimemultub;
            }
        }

        if newdt > p.dtmax {
            newdt = p.dtmax;
        }
        state.deltatime = newdt;
    }

    // Try to prevent very small scaling on the next cycle.
    if targetdt > state.deltatime && targetdt < 4.0 * state.deltatime / 3.0 {
        targetdt = 2.0 * state.deltatime / 3.0;
    }

    if targetdt < state.deltatime {
        state.deltatime = targetdt;
    }

    state.time += state.deltatime;
    state.cycle += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state(dt: Real) -> SimState {
        SimState::new(dt)
    }

    #[test]
    fn first_cycle_keeps_initial_dt() {
        let p = Params::default();
        let mut s = state(1e-7);
        time_increment(&mut s, &p);
        assert_eq!(s.deltatime, 1e-7);
        assert_eq!(s.time, 1e-7);
        assert_eq!(s.cycle, 1);
    }

    #[test]
    fn dt_grows_at_most_ub_per_cycle() {
        let p = Params::default();
        let mut s = state(1e-7);
        s.cycle = 1;
        s.dtcourant = 1.0; // wildly permissive constraints
        s.dthydro = 1.0;
        time_increment(&mut s, &p);
        assert!((s.deltatime - 1e-7 * p.deltatimemultub).abs() < 1e-20);
    }

    #[test]
    fn dt_within_lb_band_stays_constant() {
        let p = Params::default();
        let mut s = state(1e-7);
        s.cycle = 1;
        // Constraint allows 1.05× growth: below multlb (1.1) → keep olddt.
        s.dtcourant = 2.0 * 1.05e-7;
        s.dthydro = 1e20;
        time_increment(&mut s, &p);
        assert_eq!(s.deltatime, 1e-7);
    }

    #[test]
    fn dt_shrinks_when_constraint_tightens() {
        let p = Params::default();
        let mut s = state(1e-7);
        s.cycle = 1;
        s.dtcourant = 1e-7; // newdt = 5e-8 < olddt
        s.dthydro = 1e20;
        time_increment(&mut s, &p);
        assert_eq!(s.deltatime, 5e-8);
    }

    #[test]
    fn hydro_uses_two_thirds() {
        let p = Params::default();
        let mut s = state(1e-7);
        s.cycle = 1;
        s.dtcourant = 1e20;
        s.dthydro = 1.2e-7;
        time_increment(&mut s, &p);
        assert!((s.deltatime - 0.8e-7).abs() < 1e-21);
    }

    #[test]
    fn final_step_lands_exactly_on_stoptime() {
        let p = Params::default();
        let mut s = state(1e-3);
        s.time = p.stoptime - 5e-4; // half a dt left
        time_increment(&mut s, &p);
        assert!((s.time - p.stoptime).abs() < 1e-18);
    }

    #[test]
    fn near_end_avoids_tiny_last_step() {
        let p = Params::default();
        let mut s = state(1e-3);
        // Remaining time is between dt and 4/3·dt: take 2/3·dt instead.
        s.time = p.stoptime - 1.2e-3;
        time_increment(&mut s, &p);
        assert!((s.deltatime - 2.0e-3 / 3.0).abs() < 1e-15);
    }

    proptest! {
        /// dt never exceeds dtmax, never grows more than ×ub, and time
        /// advances monotonically.
        #[test]
        fn dt_bounds_hold(
            dt0 in 1e-9f64..1e-3,
            courant in 1e-9f64..1.0,
            hydro in 1e-9f64..1.0,
            cycles in 1u64..50,
        ) {
            let p = Params::default();
            let mut s = state(dt0);
            let mut last_time = 0.0;
            for _ in 0..cycles {
                let old_dt = s.deltatime;
                s.dtcourant = courant;
                s.dthydro = hydro;
                time_increment(&mut s, &p);
                prop_assert!(s.deltatime <= p.dtmax + 1e-18);
                prop_assert!(s.deltatime <= old_dt * p.deltatimemultub * (1.0 + 1e-12));
                prop_assert!(s.time > last_time);
                prop_assert!(s.time <= p.stoptime + 1e-15);
                last_time = s.time;
                if s.time >= p.stoptime {
                    break;
                }
            }
        }
    }
}
