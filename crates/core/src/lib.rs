//! # lulesh-core
//!
//! A complete Rust port of the LULESH 2.0 proxy application (Livermore
//! Unstructured Lagrange Explicit Shock Hydrodynamics): the hexahedral mesh
//! of the spherical Sedov blast-wave problem, all leapfrog physics kernels,
//! the region/material-cost model, and a serial reference driver.
//!
//! This crate is the physics substrate of the SC'24 paper reproduction
//! *"Speeding-Up LULESH on HPX"* (Kalkhof & Koch). The parallel ports live
//! in the sibling crates `lulesh-omp` (OpenMP-style fork-join) and
//! `lulesh-task` (the paper's many-task implementation); both drive the
//! kernels defined here and must match this crate's serial results
//! bit-for-bit.
//!
//! ## Quick start
//!
//! ```
//! use lulesh_core::{Domain, serial};
//!
//! // A small Sedov problem: 8³ elements, 4 regions.
//! let domain = Domain::build(8, 4, 1, 1, 0);
//! let state = serial::run(&domain, 10).expect("stable run");
//! assert_eq!(state.cycle, 10);
//! assert!(lulesh_core::validate::final_origin_energy(&domain) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod domain;
pub mod kernels;
pub mod mesh;
pub mod opts;
pub mod params;
pub mod regions;
pub mod report;
pub mod serial;
pub mod simd;
pub mod timestep;
pub mod types;
pub mod validate;

pub use domain::Domain;
pub use opts::{Opts, PartitionMode, PinMode, SimdMode, TransportMode};
pub use params::{Params, SimState};
pub use regions::Regions;
pub use report::RunReport;
pub use types::{Index, LuleshError, Real};
