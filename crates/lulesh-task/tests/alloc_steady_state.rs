//! Steady-state allocation regression test for the task bodies.
//!
//! The per-worker scratch pools (NUMA PR) replace the per-task `vec!`
//! temporaries of the stress / hourglass / EOS bodies. This test pins
//! that down with a counting global allocator keyed off
//! [`taskrt::in_task_body`]: once the pools are warm (first cycle),
//! task bodies must perform **zero** heap allocations — so a 12-cycle
//! run records exactly as many flagged allocations as a 3-cycle run.
//!
//! One worker thread on purpose: with several workers, *which* worker
//! first executes each body type (and therefore when its pool slot
//! warms up) depends on stealing order, which would make the strict
//! equality flaky. A single worker warms every buffer in cycle one,
//! deterministically, while still running everything through the real
//! task bodies.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lulesh_core::Domain;
use lulesh_task::{PartitionPlan, TaskLulesh};

/// Counts allocations made while a worker is inside a task's user
/// closure (the region `taskrt::in_task_body` flags). Control-thread
/// graph construction and runtime bookkeeping are deliberately not
/// counted — the paper's T6 concern is kernel-body allocation only.
struct CountingAlloc;

static TASK_BODY_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if taskrt::in_task_body() {
            TASK_BODY_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if taskrt::in_task_body() {
            TASK_BODY_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if taskrt::in_task_body() {
            TASK_BODY_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Flagged-allocation count of a fresh `cycles`-cycle run.
fn flagged_allocs(cycles: u64) -> u64 {
    let rt = TaskLulesh::new(1);
    let d = Arc::new(Domain::build(8, 4, 1, 1, 0));
    let plan = PartitionPlan::fixed(64, 64);
    let before = TASK_BODY_ALLOCS.load(Ordering::Relaxed);
    let state = rt.run(&d, plan, cycles).expect("stable run");
    assert_eq!(state.cycle, cycles);
    TASK_BODY_ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn task_bodies_stop_allocating_once_pools_are_warm() {
    let short = flagged_allocs(3);
    let long = flagged_allocs(12);
    // Warm-up (cycle 1 growing the pooled buffers) is allowed to
    // allocate; every cycle after that must not. Identical counts for 3
    // and 12 cycles means the per-cycle allocation rate is exactly zero.
    assert_eq!(
        long,
        short,
        "task bodies allocated {} extra times over 9 extra cycles",
        long - short
    );
    // Self-check that the flag plumbing works at all: warming the pools
    // *does* allocate inside task bodies, so a zero count here would
    // mean the counter (or the flag) is broken, not that the code is
    // allocation-free.
    assert!(short > 0, "counting allocator saw no task-body allocations");
}
