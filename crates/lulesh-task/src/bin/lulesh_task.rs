//! Many-task LULESH binary — the paper's implementation. CLI matches the
//! artifact (`--s`, `--r`, `--i`, `--q`, `--hpx:threads`/`--threads`),
//! CSV output format `size,regions,iterations,threads,runtime,result`,
//! plus `--partition auto|fixed:N|table` selecting the partition policy.

use lulesh_core::simd::{self, LaneWidth};
use lulesh_core::{Domain, Opts, PartitionMode, RunReport, SimdMode};
use lulesh_task::{
    first_touch_domain, AutoTuneConfig, Features, PartitionPlan, PartitionPolicy, TaskLulesh,
};
use obs::Tracer;
use std::sync::Arc;
use std::time::Instant;
use taskrt::topology::Topology;
use taskrt::RuntimeConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-task"));
            std::process::exit(2);
        }
    };

    let mut domain = Domain::build(opts.size, opts.num_reg, opts.balance, opts.cost, opts.seed);
    // `--simd auto` needs the online tuner, so it implies `--partition
    // auto` with width co-tuning; any other mode pins the width up front
    // and leaves the partition policy alone.
    let tune_width = opts.simd == SimdMode::Auto;
    simd::set_active(if tune_width {
        LaneWidth::W1 // the tuner's baseline window is the scalar reference
    } else {
        opts.simd.static_width()
    });
    let policy = if tune_width {
        PartitionPolicy::Auto(AutoTuneConfig {
            tune_width: true,
            ..AutoTuneConfig::default()
        })
    } else {
        match opts.partition {
            PartitionMode::Table => {
                PartitionPolicy::Fixed(PartitionPlan::for_size_threads(opts.size, opts.threads))
            }
            PartitionMode::Fixed(n) => PartitionPolicy::Fixed(PartitionPlan::fixed(n, n)),
            PartitionMode::Auto => PartitionPolicy::Auto(AutoTuneConfig::default()),
        }
    };

    // Resolve `--pin` against the live topology. Unknown node ids and
    // single-node hosts degrade to warnings — the same command line must
    // work across differently-sized machines.
    let pin = opts.pin.enabled().then(|| {
        let topo = Topology::detect();
        let res = topo.resolve_nodes(opts.pin.requested_nodes());
        for id in &res.unknown {
            eprintln!("pinning: node{id} not present on this host, ignoring");
        }
        if res.nodes.is_empty() || topo.num_nodes() < 2 {
            eprintln!(
                "pinning: single NUMA node on this host; workers get CPU \
                 affinity but placement and locality-aware stealing are moot"
            );
        }
        (topo, res.nodes)
    });

    // First-touch: re-place the domain arrays so each node's partition
    // block faults on the node whose workers will compute it.
    if let Some((topo, nodes)) = &pin {
        let ft_plan = match policy {
            PartitionPolicy::Fixed(p) => p,
            PartitionPolicy::Auto(_) => PartitionPlan::for_size_threads(opts.size, opts.threads),
        };
        first_touch_domain(&mut domain, topo, nodes, ft_plan);
    }
    let domain = Arc::new(domain);

    // One lane per worker plus a control lane for iteration spans.
    let tracer =
        (opts.trace.is_some() || opts.metrics.is_some()).then(|| Tracer::shared(opts.threads + 1));
    let mut config = RuntimeConfig::new(opts.threads);
    if let Some(t) = &tracer {
        config = config.tracer(Arc::clone(t), 0);
    }
    if let Some((topo, nodes)) = pin {
        config = config.pin(topo, nodes);
    }
    let runner = TaskLulesh::from_runtime_config(config, Features::default());
    runner.reset_counters();
    let t0 = Instant::now();
    let state = match runner.run_policy(&domain, policy, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    // The tuner's one-line verdict is the primary output of an auto run;
    // print it even under --q (scripts grep for it).
    if let Some(r) = runner.auto_report() {
        let gain = if r.initial_cost_ns > 0.0 && r.best_cost_ns.is_finite() {
            100.0 * (1.0 - r.best_cost_ns / r.initial_cost_ns)
        } else {
            0.0
        };
        eprintln!(
            "autotune: {} after {} windows ({} moves): nodal={} elements={} \
             simd={} (start {}x{} {}, {gain:.1}% faster per iteration)",
            if r.converged {
                "converged"
            } else {
                "exploring"
            },
            r.windows,
            r.moves,
            r.best.nodal,
            r.best.elements,
            r.best_width,
            r.initial.nodal,
            r.initial.elements,
            r.initial_width,
        );
    }

    let report = RunReport::collect(&domain, &state, opts.threads, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
        eprintln!("Productive-time ratio = {:.4}", runner.utilization());
        let g = runner.graph_stats();
        let final_plan = match (runner.auto_report(), policy) {
            (Some(r), _) => r.best,
            (None, PartitionPolicy::Fixed(p)) => p,
            (None, PartitionPolicy::Auto(_)) => unreachable!(),
        };
        eprintln!(
            "Task graph per iteration: {} tasks, {} sync points (partition {}x{})",
            g.tasks, g.barriers, final_plan.nodal, final_plan.elements
        );
        if runner.is_pinned() {
            let rs = runner.runtime_stats();
            let per_node: Vec<String> = runner
                .node_steal_stats()
                .iter()
                .map(|s| format!("node{}: {} ({} remote)", s.node, s.steals, s.remote_steals))
                .collect();
            eprintln!(
                "NUMA: workers on nodes {:?}; steals {} ({} remote) [{}]{}",
                runner.worker_nodes(),
                rs.steals,
                rs.remote_steals,
                per_node.join(", "),
                if runner.pin_failures() > 0 {
                    format!("; {} workers failed to pin", runner.pin_failures())
                } else {
                    String::new()
                }
            );
        }
    }
    if let Some(t) = &tracer {
        let spans = t.drain();
        // Pinned runs publish the worker→node map as thread_name metadata
        // so trace viewers group lanes by NUMA node.
        let lane_names: Vec<(usize, String)> = if runner.is_pinned() {
            runner
                .worker_nodes()
                .iter()
                .enumerate()
                .map(|(w, n)| (w, format!("worker{w}@node{n}")))
                .chain(std::iter::once((opts.threads, "control".to_string())))
                .collect()
        } else {
            Vec::new()
        };
        if let Err(e) = obs::write_reports_with_lanes(
            &spans,
            opts.trace.as_deref(),
            opts.metrics.as_deref(),
            &lane_names,
        ) {
            eprintln!("failed to write trace/metrics: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
