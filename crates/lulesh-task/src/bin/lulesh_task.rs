//! Many-task LULESH binary — the paper's implementation. CLI matches the
//! artifact (`--s`, `--r`, `--i`, `--q`, `--hpx:threads`/`--threads`),
//! CSV output format `size,regions,iterations,threads,runtime,result`,
//! plus `--partition auto|fixed:N|table` selecting the partition policy.

use lulesh_core::{Domain, Opts, PartitionMode, RunReport};
use lulesh_task::{AutoTuneConfig, Features, PartitionPlan, PartitionPolicy, TaskLulesh};
use obs::Tracer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-task"));
            std::process::exit(2);
        }
    };

    let domain = Arc::new(Domain::build(
        opts.size,
        opts.num_reg,
        opts.balance,
        opts.cost,
        opts.seed,
    ));
    let policy = match opts.partition {
        PartitionMode::Table => {
            PartitionPolicy::Fixed(PartitionPlan::for_size_threads(opts.size, opts.threads))
        }
        PartitionMode::Fixed(n) => PartitionPolicy::Fixed(PartitionPlan::fixed(n, n)),
        PartitionMode::Auto => PartitionPolicy::Auto(AutoTuneConfig::default()),
    };
    // One lane per worker plus a control lane for iteration spans.
    let tracer =
        (opts.trace.is_some() || opts.metrics.is_some()).then(|| Tracer::shared(opts.threads + 1));
    let runner = match &tracer {
        Some(t) => TaskLulesh::with_tracer(opts.threads, Features::default(), Arc::clone(t), 0),
        None => TaskLulesh::new(opts.threads),
    };
    runner.reset_counters();
    let t0 = Instant::now();
    let state = match runner.run_policy(&domain, policy, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    // The tuner's one-line verdict is the primary output of an auto run;
    // print it even under --q (scripts grep for it).
    if let Some(r) = runner.auto_report() {
        let gain = if r.initial_cost_ns > 0.0 && r.best_cost_ns.is_finite() {
            100.0 * (1.0 - r.best_cost_ns / r.initial_cost_ns)
        } else {
            0.0
        };
        eprintln!(
            "autotune: {} after {} windows ({} moves): nodal={} elements={} \
             (start {}x{}, {gain:.1}% faster per iteration)",
            if r.converged {
                "converged"
            } else {
                "exploring"
            },
            r.windows,
            r.moves,
            r.best.nodal,
            r.best.elements,
            r.initial.nodal,
            r.initial.elements,
        );
    }

    let report = RunReport::collect(&domain, &state, opts.threads, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
        eprintln!("Productive-time ratio = {:.4}", runner.utilization());
        let g = runner.graph_stats();
        let final_plan = match (runner.auto_report(), policy) {
            (Some(r), _) => r.best,
            (None, PartitionPolicy::Fixed(p)) => p,
            (None, PartitionPolicy::Auto(_)) => unreachable!(),
        };
        eprintln!(
            "Task graph per iteration: {} tasks, {} sync points (partition {}x{})",
            g.tasks, g.barriers, final_plan.nodal, final_plan.elements
        );
    }
    if let Some(t) = &tracer {
        let spans = t.drain();
        if let Err(e) = obs::write_reports(&spans, opts.trace.as_deref(), opts.metrics.as_deref()) {
            eprintln!("failed to write trace/metrics: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
