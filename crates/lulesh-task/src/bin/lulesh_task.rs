//! Many-task LULESH binary — the paper's implementation. CLI matches the
//! artifact (`--s`, `--r`, `--i`, `--q`, `--hpx:threads`/`--threads`),
//! CSV output format `size,regions,iterations,threads,runtime,result`.

use lulesh_core::{Domain, Opts, RunReport};
use lulesh_task::{Features, PartitionPlan, TaskLulesh};
use obs::Tracer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-task"));
            std::process::exit(2);
        }
    };

    let domain = Arc::new(Domain::build(
        opts.size,
        opts.num_reg,
        opts.balance,
        opts.cost,
        opts.seed,
    ));
    let plan = PartitionPlan::for_size(opts.size);
    // One lane per worker plus a control lane for iteration spans.
    let tracer =
        (opts.trace.is_some() || opts.metrics.is_some()).then(|| Tracer::shared(opts.threads + 1));
    let runner = match &tracer {
        Some(t) => TaskLulesh::with_tracer(opts.threads, Features::default(), Arc::clone(t), 0),
        None => TaskLulesh::new(opts.threads),
    };
    runner.reset_counters();
    let t0 = Instant::now();
    let state = match runner.run(&domain, plan, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    let report = RunReport::collect(&domain, &state, opts.threads, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
        eprintln!("Productive-time ratio = {:.4}", runner.utilization());
        let g = runner.graph_stats();
        eprintln!(
            "Task graph per iteration: {} tasks, {} sync points (partition {}x{})",
            g.tasks, g.barriers, plan.nodal, plan.elements
        );
    }
    if let Some(t) = &tracer {
        let spans = t.drain();
        if let Err(e) = obs::write_reports(&spans, opts.trace.as_deref(), opts.metrics.as_deref()) {
            eprintln!("failed to write trace/metrics: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
