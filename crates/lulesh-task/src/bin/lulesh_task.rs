//! Many-task LULESH binary — the paper's implementation. CLI matches the
//! artifact (`--s`, `--r`, `--i`, `--q`, `--hpx:threads`/`--threads`),
//! CSV output format `size,regions,iterations,threads,runtime,result`.

use lulesh_core::{Domain, Opts, RunReport};
use lulesh_task::{PartitionPlan, TaskLulesh};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", Opts::usage("lulesh-task"));
            std::process::exit(2);
        }
    };

    let domain = Arc::new(Domain::build(
        opts.size,
        opts.num_reg,
        opts.balance,
        opts.cost,
        opts.seed,
    ));
    let plan = PartitionPlan::for_size(opts.size);
    let runner = TaskLulesh::new(opts.threads);
    runner.reset_counters();
    let t0 = Instant::now();
    let state = match runner.run(&domain, plan, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    let report = RunReport::collect(&domain, &state, opts.threads, elapsed);
    if !opts.quiet {
        eprintln!("{}", report.verbose());
        eprintln!("Productive-time ratio = {:.4}", runner.utilization());
        let g = runner.graph_stats();
        eprintln!(
            "Task graph per iteration: {} tasks, {} sync points (partition {}x{})",
            g.tasks, g.barriers, plan.nodal, plan.elements
        );
    }
    println!("{}", RunReport::CSV_HEADER);
    println!("{}", report.csv_row());
}
