//! Online partition-size auto-tuning (replacing the paper's offline
//! Table I sweep).
//!
//! The paper tunes partition sizes once, offline, per problem size and
//! machine (Table I). EXPERIMENTS.md shows that table is wrong by ~4× on
//! our simulated machine — so instead of trusting any static table, this
//! module closes the loop at runtime: every `window` leapfrog iterations
//! the driver hands the tuner one [`WindowSample`] (wall time per
//! iteration plus the mean per-task busy time from the runtime's always-on
//! per-phase counters), and the tuner hill-climbs the `nodal`/`elements`
//! partition sizes over powers of two.
//!
//! The search is plain coordinate descent with hysteresis:
//!
//! 1. measure the starting (static) plan as the baseline;
//! 2. probe one neighbour at a time — double or halve one dimension —
//!    and keep a move only if it beats the best cost by more than
//!    `hysteresis`; an accepted move re-probes the same direction
//!    (momentum) before trying the others;
//! 3. converge when a whole round of probes yields no improvement (or a
//!    round/move budget runs out).
//!
//! Because the tuner starts *from* the static plan and only ever accepts
//! strict improvements, the converged plan can never be meaningfully worse
//! than `PartitionPlan::for_size` — the "never regress vs. static"
//! guarantee is structural, not empirical. Two guard rails from the task
//! inefficiency patterns literature (Schulz et al., PAPERS.md): partition
//! sizes are capped by the thread floor ([`partition_cap`]) so the pool is
//! never starved (too coarse), and finer probes are skipped when mean task
//! duration would drop below `min_task_ns` (too fine — per-task overhead
//! eats the parallelism win).
//!
//! The state machine is pure (no clocks, no runtime handles): the real
//! driver feeds it measured wall times while `bench::autotune_sim` feeds
//! it simulator estimates, so the exact same controller is validated
//! against exhaustive search in the simulator and deployed on the real
//! runtime.

use crate::plan::{partition_cap, PartitionPlan, MIN_PARTITION};
use lulesh_core::simd::LaneWidth;

/// The noise-rejection primitive both closed-loop controllers share: the
/// partition autotuner accepts a move only when it [`clears`]
/// (HysteresisGate::clears) the relative-improvement threshold, and
/// `resil`'s cross-rank balance controller triggers a migration only when
/// the imbalance signal stays above threshold for a full streak of
/// consecutive observations — one-shot noise spikes move nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisGate {
    /// The trigger threshold the observed signal must exceed.
    pub threshold: f64,
    /// Consecutive over-threshold observations required to fire.
    pub streak: u32,
    above: u32,
}

impl HysteresisGate {
    /// A gate firing after `streak` consecutive observations above
    /// `threshold`.
    pub fn new(threshold: f64, streak: u32) -> Self {
        Self {
            threshold,
            streak: streak.max(1),
            above: 0,
        }
    }

    /// One-shot form: does `trial` beat `baseline` by a relative margin
    /// greater than `threshold`? (`baseline = ∞` accepts anything — the
    /// first real measurement always becomes the incumbent.)
    pub fn clears(threshold: f64, baseline: f64, trial: f64) -> bool {
        1.0 - trial / baseline > threshold
    }

    /// Feed one observation; `true` when the signal has now been above
    /// threshold for a full streak. Firing resets the streak counter, so
    /// a persistent condition re-fires only after another full streak —
    /// the caller gets a built-in cooldown instead of a fire-every-step
    /// storm.
    pub fn observe(&mut self, value: f64) -> bool {
        if value > self.threshold {
            self.above += 1;
        } else {
            self.above = 0;
        }
        if self.above >= self.streak {
            self.above = 0;
            true
        } else {
            false
        }
    }
}

/// Tuning knobs for [`AutoTuner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTuneConfig {
    /// Leapfrog iterations per measurement window.
    pub window: u32,
    /// Windows to discard before the baseline measurement (cache warmup,
    /// first-touch page faults).
    pub warmup_windows: u32,
    /// Minimum relative improvement for accepting a move (e.g. 0.02 =
    /// 2%). Also the noise floor: anything smaller is treated as a tie.
    pub hysteresis: f64,
    /// Upper clamp on either partition size (the thread floor may clamp
    /// lower).
    pub max_partition: usize,
    /// Skip finer probes when the current mean task duration is below
    /// twice this (halving the partition would land tasks under it).
    pub min_task_ns: f64,
    /// Accepted-move budget; exceeded ⇒ converge on the best seen.
    pub max_moves: u32,
    /// Probe-round budget; exceeded ⇒ converge on the best seen. Bounds
    /// total tuning time even under measurement noise.
    pub max_rounds: u32,
    /// Co-tune the kernel lane width with the partition sizes
    /// (`--simd auto`). The search then walks a 2-D space — partition
    /// plan × width — starting from scalar, so the baseline window doubles
    /// as the scalar reference measurement. Off by default: a fixed
    /// `--simd` width must never be perturbed by the tuner.
    pub tune_width: bool,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        Self {
            window: 6,
            warmup_windows: 1,
            hysteresis: 0.02,
            max_partition: 16384,
            min_task_ns: 2_000.0,
            max_moves: 16,
            max_rounds: 8,
            tune_width: false,
        }
    }
}

/// One point of the tuning space: a partition plan plus the kernel lane
/// width active while measuring it. Width stays [`LaneWidth::W1`]
/// throughout unless [`AutoTuneConfig::tune_width`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunePoint {
    /// The two partition sizes.
    pub plan: PartitionPlan,
    /// The kernel lane width.
    pub width: LaneWidth,
}

/// One measurement window's aggregate signal. The driver builds it from
/// wall time and the runtime's per-phase counters; the simulator builds it
/// from its cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Wall nanoseconds per leapfrog iteration over the window (the cost
    /// being minimized).
    pub wall_per_iter_ns: f64,
    /// Mean busy nanoseconds per executed task over the window (the
    /// granularity guard signal).
    pub mean_task_ns: f64,
}

/// Final summary of a tuning run, for logs and EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoTuneReport {
    /// The static plan the search started from.
    pub initial: PartitionPlan,
    /// Best plan found (== `initial` if nothing beat it).
    pub best: PartitionPlan,
    /// Lane width the search started from (scalar under width tuning).
    pub initial_width: LaneWidth,
    /// Best lane width found (== `initial_width` when width tuning is off).
    pub best_width: LaneWidth,
    /// Baseline cost of the initial plan (ns per iteration).
    pub initial_cost_ns: f64,
    /// Cost of the best plan (ns per iteration).
    pub best_cost_ns: f64,
    /// Measurement windows consumed (including warmup).
    pub windows: u32,
    /// Accepted moves.
    pub moves: u32,
    /// Whether the search finished (vs. the run ending mid-probe).
    pub converged: bool,
    /// Every `(point, cost)` measured, in order.
    pub history: Vec<(TunePoint, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    Nodal,
    Elements,
    Width,
}

/// +1 ⇒ coarser (double), −1 ⇒ finer (halve).
type Dir = i8;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Warmup(u32),
    Baseline,
    Probe(Dim, Dir),
    Converged,
}

/// The online partition-size controller. Drive it with
/// [`plan`](Self::plan) → run a window → [`record_window`](Self::record_window),
/// until [`converged`](Self::converged).
#[derive(Debug)]
pub struct AutoTuner {
    cfg: AutoTuneConfig,
    /// Thread-floor cap on either partition size (see [`partition_cap`]).
    cap: usize,
    state: State,
    /// Point currently being measured.
    trial: TunePoint,
    /// Best point accepted so far and its cost/granularity signal.
    best: TunePoint,
    best_cost: f64,
    best_task_ns: f64,
    initial: TunePoint,
    initial_cost: f64,
    /// Probes left in the current round.
    pending: Vec<(Dim, Dir)>,
    improved_this_round: bool,
    rounds: u32,
    moves: u32,
    windows: u32,
    history: Vec<(TunePoint, f64)>,
}

fn pow2_clamp(v: usize, lo: usize, hi: usize) -> usize {
    v.next_power_of_two().clamp(lo, hi)
}

impl AutoTuner {
    /// A tuner for a loop of `num_elem` elements on `threads` workers,
    /// starting from `start` (normally the static plan). The start plan is
    /// rounded to powers of two inside the tuner's bounds.
    pub fn new(start: PartitionPlan, threads: usize, num_elem: usize, cfg: AutoTuneConfig) -> Self {
        assert!(cfg.window >= 1, "window must be at least one iteration");
        let cap = partition_cap(num_elem, threads).min(cfg.max_partition);
        // Width tuning always starts scalar: the baseline window is then
        // the scalar reference measurement the final report is judged
        // against, and the climb (w2 → w4 → w8) rides probe momentum.
        let start = TunePoint {
            plan: PartitionPlan {
                nodal: pow2_clamp(start.nodal, MIN_PARTITION, cap),
                elements: pow2_clamp(start.elements, MIN_PARTITION, cap),
            },
            width: LaneWidth::W1,
        };
        Self {
            cfg,
            cap,
            state: if cfg.warmup_windows > 0 {
                State::Warmup(cfg.warmup_windows)
            } else {
                State::Baseline
            },
            trial: start,
            best: start,
            best_cost: f64::INFINITY,
            best_task_ns: f64::INFINITY,
            initial: start,
            initial_cost: f64::INFINITY,
            pending: Vec::new(),
            improved_this_round: false,
            rounds: 0,
            moves: 0,
            windows: 0,
            history: Vec::new(),
        }
    }

    /// The configuration this tuner runs with.
    pub fn config(&self) -> &AutoTuneConfig {
        &self.cfg
    }

    /// The plan the driver should use for the next window.
    pub fn plan(&self) -> PartitionPlan {
        self.trial.plan
    }

    /// The lane width the driver should activate for the next window
    /// (always scalar unless [`AutoTuneConfig::tune_width`] is on).
    pub fn width(&self) -> LaneWidth {
        self.trial.width
    }

    /// `true` once the search has settled; [`plan`](Self::plan) then
    /// returns the best plan permanently.
    pub fn converged(&self) -> bool {
        self.state == State::Converged
    }

    /// Best plan seen so far.
    pub fn best(&self) -> PartitionPlan {
        self.best.plan
    }

    /// Best lane width seen so far.
    pub fn best_width(&self) -> LaneWidth {
        self.best.width
    }

    /// Feed one window's measurement of the current [`plan`](Self::plan).
    pub fn record_window(&mut self, sample: WindowSample) {
        self.windows += 1;
        match self.state {
            State::Converged => {}
            State::Warmup(left) => {
                self.state = if left > 1 {
                    State::Warmup(left - 1)
                } else {
                    State::Baseline
                };
            }
            State::Baseline => {
                self.history.push((self.trial, sample.wall_per_iter_ns));
                self.best_cost = sample.wall_per_iter_ns;
                self.best_task_ns = sample.mean_task_ns;
                self.initial_cost = sample.wall_per_iter_ns;
                self.start_round();
                self.advance();
            }
            State::Probe(dim, dir) => {
                self.history.push((self.trial, sample.wall_per_iter_ns));
                if HysteresisGate::clears(
                    self.cfg.hysteresis,
                    self.best_cost,
                    sample.wall_per_iter_ns,
                ) {
                    self.best = self.trial;
                    self.best_cost = sample.wall_per_iter_ns;
                    self.best_task_ns = sample.mean_task_ns;
                    self.moves += 1;
                    self.improved_this_round = true;
                    // Momentum: keep pushing the direction that just paid
                    // off before returning to the round's other probes.
                    self.pending.push((dim, dir));
                }
                self.advance();
            }
        }
    }

    /// Summary of the search so far.
    pub fn report(&self) -> AutoTuneReport {
        AutoTuneReport {
            initial: self.initial.plan,
            best: self.best.plan,
            initial_width: self.initial.width,
            best_width: self.best.width,
            initial_cost_ns: self.initial_cost,
            best_cost_ns: self.best_cost,
            windows: self.windows,
            moves: self.moves,
            converged: self.converged(),
            history: self.history.clone(),
        }
    }

    /// Queue a fresh probe round: both directions of every dimension,
    /// popped back-to-front. Width probes (when enabled) go last so they
    /// pop first — widening is usually the biggest single win, and finding
    /// it early re-baselines the partition probes onto the faster kernels.
    fn start_round(&mut self) {
        self.rounds += 1;
        self.improved_this_round = false;
        self.pending = vec![
            (Dim::Elements, -1),
            (Dim::Elements, 1),
            (Dim::Nodal, -1),
            (Dim::Nodal, 1),
        ];
        if self.cfg.tune_width {
            self.pending.push((Dim::Width, -1));
            self.pending.push((Dim::Width, 1));
        }
    }

    /// Move to the next viable probe, starting new rounds as long as the
    /// last one improved, otherwise converge on the best plan.
    fn advance(&mut self) {
        loop {
            if self.moves >= self.cfg.max_moves {
                return self.settle();
            }
            while let Some((dim, dir)) = self.pending.pop() {
                if let Some(candidate) = self.step(dim, dir) {
                    self.trial = candidate;
                    self.state = State::Probe(dim, dir);
                    return;
                }
            }
            if !self.improved_this_round || self.rounds >= self.cfg.max_rounds {
                return self.settle();
            }
            self.start_round();
        }
    }

    fn settle(&mut self) {
        self.trial = self.best;
        self.state = State::Converged;
    }

    /// The neighbour of `best` one power-of-two step along `dim`, or
    /// `None` when the step leaves the bounds or trips the granularity
    /// guard.
    fn step(&self, dim: Dim, dir: Dir) -> Option<TunePoint> {
        let mut point = self.best;
        if dim == Dim::Width {
            // Widths walk the same power-of-two ladder as partitions,
            // bounded by scalar below and W8 above. No granularity guard:
            // width changes cost per element, not elements per task.
            let lanes = point.width.lanes();
            let next = if dir > 0 { lanes * 2 } else { lanes / 2 };
            point.width = LaneWidth::from_lanes(next)?;
            return Some(point);
        }
        let cur = match dim {
            Dim::Nodal => point.plan.nodal,
            Dim::Elements => point.plan.elements,
            Dim::Width => unreachable!(),
        };
        let next = if dir > 0 {
            if cur >= self.cap {
                return None;
            }
            cur * 2
        } else {
            if cur <= MIN_PARTITION {
                return None;
            }
            // Too-fine guard: halving the partition roughly halves the
            // mean task duration; refuse to probe below the overhead
            // floor.
            if self.best_task_ns < 2.0 * self.cfg.min_task_ns {
                return None;
            }
            cur / 2
        };
        match dim {
            Dim::Nodal => point.plan.nodal = next,
            Dim::Elements => point.plan.elements = next,
            Dim::Width => unreachable!(),
        }
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the tuner against a synthetic cost function until it
    /// converges; returns (best plan, windows used).
    fn run_to_convergence(
        mut tuner: AutoTuner,
        cost: impl Fn(PartitionPlan) -> f64,
        task_ns: impl Fn(PartitionPlan) -> f64,
        max_windows: u32,
    ) -> (PartitionPlan, u32) {
        let mut windows = 0;
        while !tuner.converged() && windows < max_windows {
            let p = tuner.plan();
            tuner.record_window(WindowSample {
                wall_per_iter_ns: cost(p),
                mean_task_ns: task_ns(p),
            });
            windows += 1;
        }
        assert!(tuner.converged(), "tuner failed to converge");
        (tuner.best(), windows)
    }

    /// V-shaped (in log space) cost with the optimum at (512, 256).
    fn v_cost(p: PartitionPlan) -> f64 {
        let d = |v: usize, opt: f64| ((v as f64).log2() - opt).abs();
        1_000_000.0 * (1.0 + d(p.nodal, 9.0) + d(p.elements, 8.0))
    }

    fn coarse_tasks(p: PartitionPlan) -> f64 {
        // Mean task duration proportional to partition size, comfortably
        // above the granularity floor everywhere.
        50.0 * (p.nodal + p.elements) as f64
    }

    fn cfg() -> AutoTuneConfig {
        AutoTuneConfig {
            warmup_windows: 0,
            hysteresis: 0.01,
            ..AutoTuneConfig::default()
        }
    }

    #[test]
    fn descends_to_the_optimum_of_a_convex_landscape() {
        let start = PartitionPlan::fixed(8192, 8192);
        let tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        let (best, _) = run_to_convergence(tuner, v_cost, coarse_tasks, 200);
        assert_eq!(best, PartitionPlan::fixed(512, 256));
    }

    #[test]
    fn climbs_as_well_as_descends() {
        let start = PartitionPlan::fixed(16, 16);
        let tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        let (best, _) = run_to_convergence(tuner, v_cost, coarse_tasks, 200);
        assert_eq!(best, PartitionPlan::fixed(512, 256));
    }

    #[test]
    fn never_settles_on_a_plan_worse_than_the_start() {
        // Adversarial landscape: every neighbour of the start is worse.
        // The tuner must hand back the start plan itself.
        let start = PartitionPlan::fixed(1024, 1024);
        let cost = |p: PartitionPlan| {
            if p == PartitionPlan::fixed(1024, 1024) {
                1_000_000.0
            } else {
                2_000_000.0
            }
        };
        let tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        let (best, _) = run_to_convergence(tuner, cost, coarse_tasks, 200);
        assert_eq!(best, start);
    }

    #[test]
    fn respects_the_thread_floor_cap() {
        // 4096 elements on 16 threads ⇒ cap 256; even with a cost that
        // rewards coarsening forever, the tuner must stop at the cap.
        let start = PartitionPlan::fixed(64, 64);
        let cost = |p: PartitionPlan| 1e9 / (p.nodal + p.elements) as f64;
        let tuner = AutoTuner::new(start, 16, 4096, cfg());
        let (best, _) = run_to_convergence(tuner, cost, coarse_tasks, 200);
        assert_eq!(best, PartitionPlan::fixed(256, 256));
    }

    #[test]
    fn granularity_guard_blocks_probing_into_overhead_dominated_sizes() {
        // Tasks are already tiny (1 µs < 2 × min_task_ns): even though the
        // cost function rewards finer partitions, the tuner must refuse to
        // probe finer at all.
        let start = PartitionPlan::fixed(1024, 1024);
        let cost = |p: PartitionPlan| (p.nodal + p.elements) as f64;
        let tiny_tasks = |_: PartitionPlan| 1_000.0;
        let tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        let (best, _) = run_to_convergence(tuner, cost, tiny_tasks, 200);
        assert_eq!(best, start, "finer probes must be vetoed by the guard");
    }

    #[test]
    fn converges_within_the_window_budget_even_with_noise() {
        // Hostile signal: cost "improves" on every single probe, so the
        // search never naturally runs dry. The round/move budgets must
        // still force convergence within the deterministic worst case.
        let start = PartitionPlan::fixed(512, 512);
        let c = cfg();
        let worst_case = c.warmup_windows + 1 + 4 * c.max_rounds + c.max_moves;
        let tuner = AutoTuner::new(start, 2, 1 << 20, c);
        let mut cost = 1e9;
        let mut windows = 0;
        let mut tuner = tuner;
        while !tuner.converged() {
            assert!(windows <= worst_case, "exceeded worst-case window budget");
            cost *= 0.9;
            tuner.record_window(WindowSample {
                wall_per_iter_ns: cost,
                mean_task_ns: 1e6,
            });
            windows += 1;
        }
    }

    /// Width-aware driver for the 2-D search tests.
    fn run_to_convergence_2d(
        mut tuner: AutoTuner,
        cost: impl Fn(PartitionPlan, LaneWidth) -> f64,
        max_windows: u32,
    ) -> (PartitionPlan, LaneWidth) {
        let mut windows = 0;
        while !tuner.converged() && windows < max_windows {
            let c = cost(tuner.plan(), tuner.width());
            tuner.record_window(WindowSample {
                wall_per_iter_ns: c,
                mean_task_ns: coarse_tasks(tuner.plan()),
            });
            windows += 1;
        }
        assert!(tuner.converged(), "tuner failed to converge");
        (tuner.best(), tuner.best_width())
    }

    /// Synthetic width speedup peaking at w4 (w8 slightly worse — the
    /// lanes spill): 1.0, 0.60, 0.45, 0.50.
    fn width_scale(w: LaneWidth) -> f64 {
        match w {
            LaneWidth::W1 => 1.0,
            LaneWidth::W2 => 0.60,
            LaneWidth::W4 => 0.45,
            LaneWidth::W8 => 0.50,
        }
    }

    #[test]
    fn two_d_search_finds_both_optima() {
        // Separable landscape: partition optimum (512, 256), width optimum
        // w4. Coordinate descent must land on both.
        let start = PartitionPlan::fixed(8192, 8192);
        let tuner = AutoTuner::new(
            start,
            4,
            1 << 20,
            AutoTuneConfig {
                tune_width: true,
                ..cfg()
            },
        );
        let (best, width) = run_to_convergence_2d(tuner, |p, w| v_cost(p) * width_scale(w), 300);
        assert_eq!(best, PartitionPlan::fixed(512, 256));
        assert_eq!(width, LaneWidth::W4);
    }

    #[test]
    fn width_stays_scalar_when_width_tuning_is_off() {
        let start = PartitionPlan::fixed(8192, 8192);
        let tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        // Reward wider widths heavily; with tune_width off the tuner must
        // never even probe one.
        let (_, width) =
            run_to_convergence_2d(tuner, |p, w| v_cost(p) * (1.0 / w.lanes() as f64), 300);
        assert_eq!(width, LaneWidth::W1);
    }

    #[test]
    fn width_never_settles_worse_than_scalar() {
        // Pathological machine: every vector width is slower. The tuner
        // must keep the scalar baseline.
        let start = PartitionPlan::fixed(512, 256);
        let tuner = AutoTuner::new(
            start,
            4,
            1 << 20,
            AutoTuneConfig {
                tune_width: true,
                ..cfg()
            },
        );
        let (best, width) = run_to_convergence_2d(
            tuner,
            |p, w| v_cost(p) * if w == LaneWidth::W1 { 1.0 } else { 3.0 },
            300,
        );
        assert_eq!(best, PartitionPlan::fixed(512, 256));
        assert_eq!(width, LaneWidth::W1);
    }

    #[test]
    fn report_records_the_width_climb() {
        let start = PartitionPlan::fixed(512, 256);
        let mut tuner = AutoTuner::new(
            start,
            4,
            1 << 20,
            AutoTuneConfig {
                tune_width: true,
                ..cfg()
            },
        );
        while !tuner.converged() {
            let c = v_cost(tuner.plan()) * width_scale(tuner.width());
            tuner.record_window(WindowSample {
                wall_per_iter_ns: c,
                mean_task_ns: coarse_tasks(tuner.plan()),
            });
        }
        let r = tuner.report();
        assert_eq!(r.initial_width, LaneWidth::W1, "the baseline is scalar");
        assert_eq!(r.best_width, LaneWidth::W4);
        // The history must show more than one width actually measured.
        let widths: std::collections::BTreeSet<_> =
            r.history.iter().map(|(p, _)| p.width.lanes()).collect();
        assert!(widths.len() >= 2, "no width was ever probed: {widths:?}");
    }

    #[test]
    fn report_tracks_the_search() {
        let start = PartitionPlan::fixed(8192, 8192);
        let mut tuner = AutoTuner::new(start, 4, 1 << 20, cfg());
        while !tuner.converged() {
            let p = tuner.plan();
            tuner.record_window(WindowSample {
                wall_per_iter_ns: v_cost(p),
                mean_task_ns: coarse_tasks(p),
            });
        }
        let r = tuner.report();
        assert!(r.converged);
        assert_eq!(r.best, PartitionPlan::fixed(512, 256));
        assert!(r.best_cost_ns <= r.initial_cost_ns);
        assert!(r.moves >= 2, "descent from 8192² needs several moves");
        assert_eq!(r.windows as usize, r.history.len());
        // History costs of the best plan must match the reported best.
        let min_seen = r
            .history
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_seen, r.best_cost_ns);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let start = PartitionPlan::fixed(512, 512);
        let mut tuner = AutoTuner::new(
            start,
            4,
            1 << 20,
            AutoTuneConfig {
                warmup_windows: 2,
                ..cfg()
            },
        );
        // Garbage warmup samples must not become the baseline.
        for _ in 0..2 {
            tuner.record_window(WindowSample {
                wall_per_iter_ns: 1.0, // absurdly fast; would poison the baseline
                mean_task_ns: 1e6,
            });
        }
        assert_eq!(tuner.plan(), start, "still measuring the start plan");
        tuner.record_window(WindowSample {
            wall_per_iter_ns: 1e6,
            mean_task_ns: 1e6,
        });
        let r = tuner.report();
        assert_eq!(r.initial_cost_ns, 1e6, "baseline comes after warmup");
    }
}
