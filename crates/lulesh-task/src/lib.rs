//! # lulesh-task — the paper's many-task LULESH
//!
//! The contribution of Kalkhof & Koch (SC'24), rebuilt on the
//! HPX-substitute [`taskrt`] runtime. Per iteration of the leapfrog the
//! driver **pre-creates the whole task graph** with futures and
//! continuations, applying the paper's tricks:
//!
//! * **T1 — manual partitioning**: each loop becomes `⌈N/P⌉` tasks of `P`
//!   iterations, with `P` from [`PartitionPlan`] (Table I).
//! * **T2 — continuation chains across loops** (`Features::chain_continuations`):
//!   kernels with only element-/node-local dependencies chain per
//!   partition instead of synchronizing globally.
//! * **T3 — kernel merging** (`Features::merge_kernels`): consecutive small
//!   loops share one task body (loops kept separate inside, preserving the
//!   reference's computational structure).
//! * **T4 — independent chains in parallel** (`Features::parallel_force_chains`,
//!   `Features::parallel_region_eos`): stress ∥ hourglass force chains, and
//!   all per-region EOS chains concurrently.
//! * **T6 — task-local temporaries**: merged tasks keep their scratch on
//!   their own stack/heap; only the per-corner force arrays and `vnewc`
//!   stay global (they cross task boundaries by design).
//!
//! Six synchronization points per iteration (five `when_all` barriers
//! inside the graph plus the iteration-end join), exactly where element-
//! and node-indexed phases meet. The paper reports seven; our port needs
//! one fewer because the acceleration boundary condition is fused into the
//! per-partition node chains (it is node-local when expressed via index
//! arithmetic) and the volume commit overlaps the dt-constraint scan. See
//! EXPERIMENTS.md for the accounting.
//!
//! Turning every feature off yields the Fig-5 "naive" task port (barrier
//! after every loop, global scratch), which the ablation bench compares
//! against. Results are bit-identical to the serial reference in *all*
//! feature combinations; the tests assert it.

#![warn(missing_docs)]

pub mod autotune;
mod plan;

pub use autotune::{
    AutoTuneConfig, AutoTuneReport, AutoTuner, HysteresisGate, TunePoint, WindowSample,
};
pub use plan::{partition_cap, PartitionPlan, MAX_LANE_WIDTH, MIN_PARTITION};

use lulesh_core::domain::Domain;
use lulesh_core::kernels::{constraints, eos, hourglass, kinematics, monoq, nodal, stress};
use lulesh_core::params::SimState;
use lulesh_core::timestep::time_increment;
use lulesh_core::types::{LuleshError, Real};
use obs::{SpanKind, Tracer};
use parking_lot::Mutex;
use parutil::{chunks_of, AlignedBuf, CachePadded, Chunk, SharedVec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use taskrt::topology::{self, Topology};
use taskrt::{Future, NodeStealStat, PhaseStat, Runtime, RuntimeConfig};

/// How the driver picks partition sizes for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionPolicy {
    /// One fixed plan for the whole run.
    Fixed(PartitionPlan),
    /// Online auto-tuning, starting from the thread-aware static plan
    /// ([`PartitionPlan::for_size_threads`]).
    Auto(AutoTuneConfig),
}

/// Σ busy / Σ tasks over a per-phase snapshot.
fn phase_totals(stats: &[PhaseStat]) -> (u64, u64) {
    stats
        .iter()
        .fold((0, 0), |(b, t), p| (b + p.busy_ns, t + p.tasks))
}

/// Re-place the domain's floating-point arrays for NUMA first-touch.
///
/// [`Domain::build`] initializes every array on the build thread, so all
/// pages land on that thread's node. This pass re-allocates each array
/// with [`SharedVec::zeroed`] (untouched zero pages) and copies the data
/// back in from one pinned OS thread per requested node, each writing the
/// contiguous block of `plan`-sized partitions its node's workers will
/// predominantly compute (node `j` of `m` gets partition block
/// `[j·k/m, (j+1)·k/m)` — the same block split [`Topology::assign_workers`]
/// uses for worker placement). Work stealing means the worker→partition
/// mapping is not exact, so this is a placement *hint*: values are copied
/// bit-for-bit and results are unchanged whether or not it runs.
///
/// No-op when fewer than two of `nodes` exist in `topo` (one memory
/// domain: placement is moot).
pub fn first_touch_domain(d: &mut Domain, topo: &Topology, nodes: &[usize], plan: PartitionPlan) {
    let node_cpus: Vec<Vec<usize>> = nodes
        .iter()
        .filter_map(|&id| topo.nodes.iter().find(|n| n.id == id))
        .map(|n| n.cpus.clone())
        .filter(|c| !c.is_empty())
        .collect();
    if node_cpus.len() < 2 {
        return;
    }
    let np = plan.nodal.max(1);
    let ep = plan.elements.max(1);
    macro_rules! touch {
        ($($field:ident: $part:expr),* $(,)?) => {
            $(first_touch_vec(&mut d.$field, $part, &node_cpus);)*
        };
    }
    touch!(
        // Nodal arrays: partitioned by `plan.nodal` in LagrangeNodal.
        m_x: np, m_y: np, m_z: np,
        m_xd: np, m_yd: np, m_zd: np,
        m_xdd: np, m_ydd: np, m_zdd: np,
        m_fx: np, m_fy: np, m_fz: np,
        m_nodal_mass: np,
        // Element arrays: partitioned by `plan.elements` in LagrangeElements.
        m_e: ep, m_p: ep, m_q: ep, m_ql: ep, m_qq: ep,
        m_v: ep, m_volo: ep, m_delv: ep, m_vdov: ep,
        m_arealg: ep, m_ss: ep, m_elem_mass: ep, m_vnew: ep,
        m_dxx: ep, m_dyy: ep, m_dzz: ep,
        // Gradient arrays (empty in single-domain runs, element-length plus
        // comm planes otherwise): element partitioning is the closest fit.
        m_delv_xi: ep, m_delv_eta: ep, m_delv_zeta: ep,
        m_delx_xi: ep, m_delx_eta: ep, m_delx_zeta: ep,
    );
}

/// One array of [`first_touch_domain`]: move the data aside, re-allocate
/// untouched zero pages, and copy each node's partition block back in from
/// a thread pinned to that node.
fn first_touch_vec(v: &mut SharedVec<Real>, part: usize, node_cpus: &[Vec<usize>]) {
    let n = v.len();
    if n == 0 {
        return;
    }
    let mut old = std::mem::replace(v, SharedVec::zeroed(n));
    let src: &[Real] = old.as_mut_slice();
    let dst: &SharedVec<Real> = v;
    let k = n.div_ceil(part);
    let m = node_cpus.len();
    std::thread::scope(|s| {
        for (j, cpus) in node_cpus.iter().enumerate() {
            let lo = (j * k / m * part).min(n);
            let hi = ((j + 1) * k / m * part).min(n);
            if lo >= hi {
                continue;
            }
            let seg = &src[lo..hi];
            s.spawn(move || {
                // Best-effort: an unpinnable thread still copies correctly,
                // it just places the pages wherever it lands.
                let _ = topology::pin_current_thread(cpus);
                // SAFETY: node blocks are disjoint and nothing else holds
                // the freshly allocated `dst` yet.
                unsafe { dst.slice_mut(lo, hi) }.copy_from_slice(seg);
            });
        }
    });
}

/// A communication step injected into the iteration graph (multi-domain
/// halo exchange). Runs as a task of its own between two phases.
pub type Hook = Arc<dyn Fn() + Send + Sync>;

/// Comm/compute-overlapped force exchange: the force gather is split into
/// boundary-plane and interior partitions, the boundary planes are sent as
/// soon as their gathers finish, and the receive+combine runs as a
/// continuation of the send — concurrent with the interior gathers. The
/// single join before the node update is the only barrier, so network
/// latency hides behind interior compute (the HPX parcelport overlap the
/// paper's future-work section points at).
#[derive(Clone)]
pub struct OverlapForces {
    /// Node-index ranges whose gathered forces are communicated (the
    /// boundary planes). The complement is "interior" and overlaps with
    /// the exchange.
    pub boundary: Vec<std::ops::Range<usize>>,
    /// Posts the boundary planes to the neighbours. Runs once the boundary
    /// gathers finish; must not block on the network (parcelnet sends are
    /// buffered), or a single-worker rank could deadlock.
    pub send: Hook,
    /// Receives the neighbours' planes and combines them into the boundary
    /// nodes — a continuation of `send`, concurrent with interior gathers.
    pub recv_combine: Hook,
}

/// Injection points for inter-domain communication (the `multidom` crate's
/// task-parallel driver): the same three synchronization points the
/// reference's MPI version communicates at.
#[derive(Default, Clone)]
pub struct IterationHooks {
    /// After the force barrier, before the node chains (`CommSBN`: halo-sum
    /// of interface-plane forces).
    pub after_forces: Option<Hook>,
    /// After the kinematics/gradients barrier, before the q-limiter tasks
    /// (`CommMonoQ`: ghost-plane gradient exchange).
    pub after_gradients: Option<Hook>,
    /// Overlapped force exchange; when set it takes precedence over
    /// `after_forces`.
    pub overlap_forces: Option<OverlapForces>,
}

/// Toggles for the paper's optimization tricks (all on by default; the
/// ablation bench switches them off one at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// T2: chain kernels per partition via continuations instead of a
    /// global barrier after every kernel.
    pub chain_continuations: bool,
    /// T3: merge consecutive kernels into single task bodies.
    pub merge_kernels: bool,
    /// T4a: run the stress and hourglass force chains concurrently.
    pub parallel_force_chains: bool,
    /// T4b: run the per-region EOS chains concurrently.
    pub parallel_region_eos: bool,
}

impl Default for Features {
    fn default() -> Self {
        Self {
            chain_continuations: true,
            merge_kernels: true,
            parallel_force_chains: true,
            parallel_region_eos: true,
        }
    }
}

impl Features {
    /// The Fig-5 baseline: partitioned tasks but a barrier after every
    /// loop, no merging, no extra concurrency.
    pub fn naive() -> Self {
        Self {
            chain_continuations: false,
            merge_kernels: false,
            parallel_force_chains: false,
            parallel_region_eos: false,
        }
    }
}

/// Per-worker reusable kernel temporaries (trick T6 plus NUMA-friendly
/// reuse): the merged stress/hourglass bodies and the EOS tasks used to
/// allocate fresh `Vec`s per task, which kept data task-local but paid an
/// allocator round-trip per task *and* let pages migrate with the
/// allocator's whims. Each worker now owns one warm scratch slot — still
/// local to the executing thread (and, pinned, to its NUMA node), but
/// allocation-free once the capacities have grown to steady state. Buffers
/// are reset to the exact state a fresh `vec![0.0; len]` would have, so
/// results stay bit-identical.
#[derive(Default)]
struct KernelScratch {
    sigxx: AlignedBuf<Real>,
    sigyy: AlignedBuf<Real>,
    sigzz: AlignedBuf<Real>,
    determ: AlignedBuf<Real>,
    dvdx: AlignedBuf<Real>,
    dvdy: AlignedBuf<Real>,
    dvdz: AlignedBuf<Real>,
    x8n: AlignedBuf<Real>,
    y8n: AlignedBuf<Real>,
    z8n: AlignedBuf<Real>,
    eos: eos::EosScratch,
}

/// `buf` := `len` zeros, reusing capacity (equivalent to `vec![0.0; len]`
/// without the allocation once warmed up).
fn reset_buf(buf: &mut AlignedBuf<Real>, len: usize) {
    buf.reset_zeroed(len);
}

/// Mesh-length scratch shared between tasks. The per-corner force arrays
/// cross the element→node gather boundary and are inherently global; the
/// remaining arrays are used only when `merge_kernels` is off (the merged
/// tasks keep those temporaries task-local — trick T6).
struct TaskScratch {
    fx_elem: SharedVec<Real>,
    fy_elem: SharedVec<Real>,
    fz_elem: SharedVec<Real>,
    fx_hg: SharedVec<Real>,
    fy_hg: SharedVec<Real>,
    fz_hg: SharedVec<Real>,
    vnewc: SharedVec<Real>,
    // Unmerged-mode scratch (reference-style global temporaries).
    sigxx: SharedVec<Real>,
    sigyy: SharedVec<Real>,
    sigzz: SharedVec<Real>,
    determ: SharedVec<Real>,
    dvdx: SharedVec<Real>,
    dvdy: SharedVec<Real>,
    dvdz: SharedVec<Real>,
    x8n: SharedVec<Real>,
    y8n: SharedVec<Real>,
    z8n: SharedVec<Real>,
    volume_error: AtomicBool,
    qstop_error: AtomicBool,
    /// (dtcourant, dthydro) running minima for the current iteration.
    dt_mins: Mutex<(Real, Real)>,
    /// Per-worker kernel scratch slots (`threads + 1`: one per worker plus
    /// one for off-worker callers). A worker runs one task at a time, so
    /// its slot's mutex is uncontended — it exists only to keep the API
    /// safe.
    pool: Vec<CachePadded<Mutex<KernelScratch>>>,
}

impl TaskScratch {
    /// `merged == false` (the unmerged ablation) additionally allocates the
    /// reference-style global temporaries; merged tasks keep those
    /// task-local (trick T6), so the default path skips ~80 bytes/element
    /// of dead allocation.
    fn new(num_elem: usize, merged: bool, workers: usize) -> Self {
        // `zeroed`, not `from_elem`: leaves the pages untouched so the
        // first task to write a partition faults its pages on the node
        // running it (NUMA first-touch).
        let e = |n| SharedVec::<Real>::zeroed(n);
        let g = |n| if merged { e(0) } else { e(n) };
        Self {
            pool: (0..workers + 1)
                .map(|_| CachePadded(Mutex::new(KernelScratch::default())))
                .collect(),
            fx_elem: e(8 * num_elem),
            fy_elem: e(8 * num_elem),
            fz_elem: e(8 * num_elem),
            fx_hg: e(8 * num_elem),
            fy_hg: e(8 * num_elem),
            fz_hg: e(8 * num_elem),
            vnewc: e(num_elem),
            sigxx: g(num_elem),
            sigyy: g(num_elem),
            sigzz: g(num_elem),
            determ: g(num_elem),
            dvdx: g(8 * num_elem),
            dvdy: g(8 * num_elem),
            dvdz: g(8 * num_elem),
            x8n: g(8 * num_elem),
            y8n: g(8 * num_elem),
            z8n: g(8 * num_elem),
            volume_error: AtomicBool::new(false),
            qstop_error: AtomicBool::new(false),
            dt_mins: Mutex::new((1.0e20, 1.0e20)),
        }
    }

    fn reset_iteration(&self) {
        self.volume_error.store(false, Ordering::Relaxed);
        self.qstop_error.store(false, Ordering::Relaxed);
        *self.dt_mins.lock() = (1.0e20, 1.0e20);
    }

    /// The calling thread's kernel scratch slot: workers use their own
    /// slot, anything else shares the last one.
    fn kernel_scratch(&self) -> parking_lot::MutexGuard<'_, KernelScratch> {
        let last = self.pool.len() - 1;
        let i = taskrt::worker_index().unwrap_or(last).min(last);
        self.pool[i].0.lock()
    }
}

/// One task body.
type Stage = Box<dyn FnOnce() + Send + 'static>;

/// A group of independent items (partitions), each a chain of stages.
/// Within a group all items have the same number of stages.
struct Group {
    items: Vec<Vec<Stage>>,
}

impl Group {
    fn new() -> Self {
        Self { items: Vec::new() }
    }

    fn push(&mut self, stages: Vec<Stage>) {
        debug_assert!(
            self.items.is_empty() || self.items[0].len() == stages.len(),
            "groups must be stage-uniform"
        );
        self.items.push(stages);
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Statistics about one iteration's graph, used by the graph explorer
/// example and the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Total tasks created this iteration.
    pub tasks: usize,
    /// Synchronization points (`when_all` joins), iteration-end included.
    pub barriers: usize,
}

/// The many-task LULESH runner.
pub struct TaskLulesh {
    rt: Runtime,
    /// Optimization toggles.
    pub features: Features,
    stats: std::cell::Cell<GraphStats>,
    /// Report from the most recent `Auto`-policy run.
    auto_report: std::cell::RefCell<Option<AutoTuneReport>>,
}

impl TaskLulesh {
    /// Runner with `threads` workers and all paper optimizations on.
    pub fn new(threads: usize) -> Self {
        Self::with_features(threads, Features::default())
    }

    /// Runner with explicit feature toggles.
    pub fn with_features(threads: usize, features: Features) -> Self {
        Self {
            rt: Runtime::new(threads),
            features,
            stats: Default::default(),
            auto_report: Default::default(),
        }
    }

    /// Runner with span tracing attached: worker `i` records onto `tracer`
    /// lane `lane_base + i`; driver-level spans (the per-iteration region)
    /// go on the control lane `lane_base + threads`.
    pub fn with_tracer(
        threads: usize,
        features: Features,
        tracer: Arc<Tracer>,
        lane_base: usize,
    ) -> Self {
        Self {
            rt: Runtime::with_tracer(threads, tracer, lane_base),
            features,
            stats: Default::default(),
            auto_report: Default::default(),
        }
    }

    /// Runner built from an explicit [`RuntimeConfig`] — the full-control
    /// constructor used by the binaries to combine tracing with NUMA
    /// pinning (`--pin`).
    pub fn from_runtime_config(config: RuntimeConfig, features: Features) -> Self {
        Self {
            rt: config.build(),
            features,
            stats: Default::default(),
            auto_report: Default::default(),
        }
    }

    /// The attached tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.rt.tracer()
    }

    /// Node id each worker is assigned to (all zeros when unpinned).
    pub fn worker_nodes(&self) -> &[usize] {
        self.rt.worker_nodes()
    }

    /// Whether the workers were pinned to CPUs at startup.
    pub fn is_pinned(&self) -> bool {
        self.rt.is_pinned()
    }

    /// Number of workers whose `sched_setaffinity` call failed (pinning
    /// is best-effort; failures degrade to unpinned workers).
    pub fn pin_failures(&self) -> usize {
        self.rt.pin_failures()
    }

    /// Per-NUMA-node steal counters (local + remote) since the last
    /// counter reset.
    pub fn node_steal_stats(&self) -> Vec<NodeStealStat> {
        self.rt.node_steal_stats()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.rt.threads()
    }

    /// Productive-time ratio since the last counter reset (HPX idle-rate
    /// counter; Figure 11's HPX series).
    pub fn utilization(&self) -> f64 {
        self.rt.utilization_since_reset()
    }

    /// Reset the runtime performance counters.
    pub fn reset_counters(&self) {
        self.rt.reset_counters()
    }

    /// Raw runtime counter snapshot.
    pub fn runtime_stats(&self) -> taskrt::RuntimeStats {
        self.rt.stats()
    }

    /// Task/barrier counts of the most recently built iteration graph.
    pub fn graph_stats(&self) -> GraphStats {
        self.stats.get()
    }

    /// Per-phase busy/task aggregates from the runtime's always-on
    /// counters (the auto-tuner's timing signal when tracing is off).
    pub fn phase_stats(&self) -> Vec<PhaseStat> {
        self.rt.phase_stats()
    }

    /// The [`AutoTuneReport`] of the most recent
    /// [`PartitionPolicy::Auto`] run; `None` after fixed-plan runs.
    pub fn auto_report(&self) -> Option<AutoTuneReport> {
        self.auto_report.borrow().clone()
    }

    /// Run for at most `max_cycles` iterations (or to `stoptime`).
    pub fn run(
        &self,
        d: &Arc<Domain>,
        plan: PartitionPlan,
        max_cycles: u64,
    ) -> Result<SimState, LuleshError> {
        self.run_policy(d, PartitionPolicy::Fixed(plan), max_cycles)
    }

    /// [`run`](Self::run) with a partition *policy* instead of a fixed
    /// plan (`--partition auto`).
    pub fn run_policy(
        &self,
        d: &Arc<Domain>,
        policy: PartitionPolicy,
        max_cycles: u64,
    ) -> Result<SimState, LuleshError> {
        self.run_policy_with_hooks(
            d,
            policy,
            max_cycles,
            &IterationHooks::default(),
            |c, h, err| match err {
                Some(e) => Err(e),
                None => Ok((c, h)),
            },
        )
    }

    /// [`run`](Self::run) with inter-domain communication hooks and a dt
    /// reduction. `reduce_dt` receives this domain's constraint minima plus
    /// its local error (if the iteration tripped one) and returns the
    /// global minima, or the error any participating domain reported — the
    /// multi-domain allreduce. It is called **every** iteration, error or
    /// not, so peers blocked in the reduction always get a message (a rank
    /// returning early on its own error would deadlock the others).
    pub fn run_with_hooks(
        &self,
        d: &Arc<Domain>,
        plan: PartitionPlan,
        max_cycles: u64,
        hooks: &IterationHooks,
        reduce_dt: impl Fn(Real, Real, Option<LuleshError>) -> Result<(Real, Real), LuleshError>,
    ) -> Result<SimState, LuleshError> {
        self.run_policy_with_hooks(
            d,
            PartitionPolicy::Fixed(plan),
            max_cycles,
            hooks,
            reduce_dt,
        )
    }

    /// [`run_with_hooks`](Self::run_with_hooks) generalized over the
    /// partition policy. Under [`PartitionPolicy::Auto`] the driver times
    /// each window of `window` iterations, reads the runtime's per-phase
    /// busy/task aggregates for the granularity signal, and lets the
    /// [`AutoTuner`] pick the next window's plan; the final
    /// [`AutoTuneReport`] is retrievable via
    /// [`auto_report`](Self::auto_report). Partition sizes never affect
    /// the physics, so mid-run resizes are invisible to the results.
    pub fn run_policy_with_hooks(
        &self,
        d: &Arc<Domain>,
        policy: PartitionPolicy,
        max_cycles: u64,
        hooks: &IterationHooks,
        reduce_dt: impl Fn(Real, Real, Option<LuleshError>) -> Result<(Real, Real), LuleshError>,
    ) -> Result<SimState, LuleshError> {
        let mut tuner = match policy {
            PartitionPolicy::Fixed(_) => None,
            PartitionPolicy::Auto(cfg) => {
                let threads = self.rt.threads();
                let start = PartitionPlan::for_size_threads(d.size(), threads);
                Some(AutoTuner::new(start, threads, d.num_elem(), cfg))
            }
        };
        let mut plan = match (&tuner, policy) {
            (Some(t), _) => t.plan(),
            (None, PartitionPolicy::Fixed(p)) => p,
            (None, PartitionPolicy::Auto(_)) => unreachable!(),
        };
        let mut win_iters: u32 = 0;
        let mut win_t0 = Instant::now();
        let mut win_base = phase_totals(&self.rt.phase_stats());

        let mut state = SimState::new(d.initial_dt());
        let scratch = Arc::new(TaskScratch::new(
            d.num_elem(),
            self.features.merge_kernels,
            self.rt.threads(),
        ));
        while state.time < d.params.stoptime && state.cycle < max_cycles {
            time_increment(&mut state, &d.params);
            scratch.reset_iteration();

            // Pre-create the entire iteration graph, then join once.
            let iter_start = self.rt.tracer().map(|t| (Arc::clone(t), t.now_ns()));
            let end = self.build_iteration(d, &scratch, plan, state.deltatime, hooks);
            end.get();
            if let Some((tracer, start)) = iter_start {
                // One region span per leapfrog iteration on the control
                // lane, bracketing the whole graph: build + execute + join.
                tracer.record_interval(
                    self.rt.current_lane(),
                    SpanKind::Region,
                    "iteration",
                    start,
                    tracer.now_ns(),
                );
            }

            let local_err = if scratch.volume_error.load(Ordering::Relaxed) {
                Some(LuleshError::VolumeError)
            } else if scratch.qstop_error.load(Ordering::Relaxed) {
                Some(LuleshError::QStopError)
            } else {
                None
            };
            let (c, h) = *scratch.dt_mins.lock();
            let (c, h) = reduce_dt(c, h, local_err)?;
            state.dtcourant = c;
            state.dthydro = h;

            if let Some(t) = tuner.as_mut() {
                win_iters += 1;
                if win_iters >= t.config().window && !t.converged() {
                    let wall = win_t0.elapsed().as_nanos() as f64 / f64::from(win_iters);
                    let now = phase_totals(&self.rt.phase_stats());
                    let d_busy = now.0.saturating_sub(win_base.0);
                    let d_tasks = now.1.saturating_sub(win_base.1);
                    let mean_task_ns = if d_tasks > 0 {
                        d_busy as f64 / d_tasks as f64
                    } else {
                        f64::INFINITY
                    };
                    t.record_window(WindowSample {
                        wall_per_iter_ns: wall,
                        mean_task_ns,
                    });
                    plan = t.plan();
                    if t.config().tune_width {
                        // `--simd auto`: the next window runs at the
                        // tuner's width. Safe mid-run — every width is
                        // bit-identical, so only speed changes.
                        lulesh_core::simd::set_active(t.width());
                    }
                    // Re-derive the kernels' cache-block budget from the
                    // same per-phase busy counters that feed the
                    // granularity guard.
                    lulesh_core::simd::set_l1_budget(lulesh_core::simd::budget_for_task_grain(
                        mean_task_ns,
                    ));
                    win_iters = 0;
                    win_t0 = Instant::now();
                    win_base = now;
                }
            }
        }
        self.auto_report.replace(tuner.map(|t| t.report()));
        Ok(state)
    }

    /// Spawn a group: every item becomes a chain of its stages (T2 on) or a
    /// layered sequence with a barrier between stages (T2 off). `starts`
    /// must hold one future per item, or be empty to spawn immediately.
    /// `label` names the kernel phase on every task's trace span.
    fn run_group(
        &self,
        label: &'static str,
        starts: Vec<Future<()>>,
        group: Group,
        tasks: &mut usize,
        barriers: &mut usize,
    ) -> Vec<Future<()>> {
        let k = group.len();
        debug_assert!(starts.is_empty() || starts.len() == k);

        if self.features.chain_continuations {
            // Per-item chains.
            let mut finals = Vec::with_capacity(k);
            let mut starts = starts.into_iter();
            for stages in group.items {
                let mut stages = stages.into_iter();
                let first = stages.next().expect("group items are non-empty");
                let mut fut = match starts.next() {
                    Some(s) => s.then_labeled(&self.rt, label, move |_| first()),
                    None => self.rt.spawn_labeled(label, first),
                };
                *tasks += 1;
                for stage in stages {
                    fut = fut.then_labeled(&self.rt, label, move |_| stage());
                    *tasks += 1;
                }
                finals.push(fut);
            }
            finals
        } else {
            // Layered: global barrier between consecutive stages (Fig 5).
            let n_stages = group.items.first().map_or(0, |s| s.len());
            // Transpose into stage-major order.
            let mut layers: Vec<Vec<Stage>> =
                (0..n_stages).map(|_| Vec::with_capacity(k)).collect();
            for stages in group.items {
                for (l, s) in stages.into_iter().enumerate() {
                    layers[l].push(s);
                }
            }
            let mut starts = starts;
            let mut futs: Vec<Future<()>> = Vec::new();
            for (l, layer) in layers.into_iter().enumerate() {
                if l > 0 {
                    let barrier = self
                        .rt
                        .when_all_unit_labeled("barrier-stage", std::mem::take(&mut futs));
                    *barriers += 1;
                    starts = barrier.fork(k);
                }
                futs = if starts.is_empty() {
                    layer
                        .into_iter()
                        .map(|s| {
                            *tasks += 1;
                            self.rt.spawn_labeled(label, s)
                        })
                        .collect()
                } else {
                    std::mem::take(&mut starts)
                        .into_iter()
                        .zip(layer)
                        .map(|(f, s)| {
                            *tasks += 1;
                            f.then_labeled(&self.rt, label, move |_| s())
                        })
                        .collect()
                };
            }
            futs
        }
    }

    /// Fan a barrier out over several independent groups and return every
    /// item's final future (the fork/drain boilerplate shared by phases D,
    /// E and F). Each group carries its phase label.
    fn run_groups_from(
        &self,
        barrier: Future<()>,
        groups: Vec<(&'static str, Group)>,
        tasks: &mut usize,
        barriers: &mut usize,
    ) -> Vec<Future<()>> {
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        let mut starts = barrier.fork(total);
        let mut finals = Vec::with_capacity(total);
        for (label, g) in groups {
            let s: Vec<_> = starts.drain(..g.len()).collect();
            finals.extend(self.run_group(label, s, g, tasks, barriers));
        }
        finals
    }

    /// Build the full task graph for one `LagrangeLeapFrog` iteration and
    /// return the iteration-end future.
    fn build_iteration(
        &self,
        d: &Arc<Domain>,
        sc: &Arc<TaskScratch>,
        plan: PartitionPlan,
        dt: Real,
        hooks: &IterationHooks,
    ) -> Future<()> {
        let num_elem = d.num_elem();
        let num_node = d.num_node();
        let f = self.features;
        let mut tasks = 0usize;
        let mut barriers = 0usize;

        // ---------------- Phase A: element force chains ----------------
        let mut stress_group = Group::new();
        for c in chunks_of(num_elem, plan.nodal) {
            stress_group.push(stress_stages(d, sc, c, f.merge_kernels));
        }
        let mut hg_group = Group::new();
        for c in chunks_of(num_elem, plan.nodal) {
            hg_group.push(hourglass_stages(d, sc, c, f.merge_kernels));
        }

        let b1 = if f.parallel_force_chains {
            let mut finals = self.run_group(
                "stress",
                Vec::new(),
                stress_group,
                &mut tasks,
                &mut barriers,
            );
            finals.extend(self.run_group(
                "hourglass",
                Vec::new(),
                hg_group,
                &mut tasks,
                &mut barriers,
            ));
            self.rt.when_all_unit_labeled("barrier-forces", finals)
        } else {
            // Reference-like ordering: all stress, barrier, all hourglass.
            let sf = self.run_group(
                "stress",
                Vec::new(),
                stress_group,
                &mut tasks,
                &mut barriers,
            );
            let sb = self.rt.when_all_unit_labeled("barrier-stress-hg", sf);
            barriers += 1;
            let k = hg_group.len();
            let hf = self.run_group("hourglass", sb.fork(k), hg_group, &mut tasks, &mut barriers);
            self.rt.when_all_unit_labeled("barrier-forces", hf)
        };
        barriers += 1;

        // ---------------- Phase B: node chains ----------------
        let b2 = if let Some(ov) = &hooks.overlap_forces {
            // Comm/compute overlap: boundary gathers feed the send task the
            // moment they finish; the receive+combine continuation runs
            // while the interior gathers are still in flight. One join
            // before the node update replaces the gather barrier.
            let interior = complement(&ov.boundary, num_node);
            let mut bgather = Group::new();
            for r in &ov.boundary {
                for c in chunks_in(r.clone(), plan.nodal) {
                    bgather.push(vec![node_gather_stage(d, sc, c)]);
                }
            }
            let mut igather = Group::new();
            for r in &interior {
                for c in chunks_in(r.clone(), plan.nodal) {
                    igather.push(vec![node_gather_stage(d, sc, c)]);
                }
            }
            let kb = bgather.len();
            let ki = igather.len();
            let mut starts = b1.fork(kb + ki);
            let bstarts: Vec<_> = starts.drain(..kb).collect();
            let gfb = self.run_group("node-gather", bstarts, bgather, &mut tasks, &mut barriers);
            let gfi = self.run_group("node-gather", starts, igather, &mut tasks, &mut barriers);

            let bg = self.rt.when_all_unit_labeled("barrier-gather", gfb);
            barriers += 1;
            let send = Arc::clone(&ov.send);
            tasks += 1;
            let sent = bg.then_kind(&self.rt, "halo-send", SpanKind::Halo, move |_| send());
            let recv = Arc::clone(&ov.recv_combine);
            tasks += 1;
            let received = sent.then_kind(&self.rt, "halo-recv", SpanKind::Halo, move |_| recv());

            let mut joined = gfi;
            joined.push(received);
            let all = self.rt.when_all_unit_labeled("barrier-halo", joined);
            barriers += 1;

            let mut update_group = Group::new();
            for c in chunks_of(num_node, plan.nodal) {
                update_group.push(node_update_stages(d, c, dt, f.merge_kernels));
            }
            let k = update_group.len();
            let uf = self.run_group(
                "node-update",
                all.fork(k),
                update_group,
                &mut tasks,
                &mut barriers,
            );
            let b2 = self.rt.when_all_unit_labeled("barrier-nodes", uf);
            barriers += 1;
            b2
        } else {
            match &hooks.after_forces {
                None => {
                    let mut node_group = Group::new();
                    for c in chunks_of(num_node, plan.nodal) {
                        node_group.push(node_stages(d, sc, c, dt, f.merge_kernels));
                    }
                    let k = node_group.len();
                    let bf =
                        self.run_group("node", b1.fork(k), node_group, &mut tasks, &mut barriers);
                    let b2 = self.rt.when_all_unit_labeled("barrier-nodes", bf);
                    barriers += 1;
                    b2
                }
                Some(hook) => {
                    // Multi-domain: the halo force sum needs the gathered nodal
                    // forces, so phase B splits at the gather (reference order:
                    // gather, CommSBN, then the node update) — one extra
                    // barrier, exactly like the MPI version.
                    let mut gather_group = Group::new();
                    for c in chunks_of(num_node, plan.nodal) {
                        gather_group.push(vec![node_gather_stage(d, sc, c)]);
                    }
                    let k = gather_group.len();
                    let gf = self.run_group(
                        "node-gather",
                        b1.fork(k),
                        gather_group,
                        &mut tasks,
                        &mut barriers,
                    );
                    let bg = self.rt.when_all_unit_labeled("barrier-gather", gf);
                    barriers += 1;
                    let hook = Arc::clone(hook);
                    tasks += 1;
                    let hooked =
                        bg.then_kind(&self.rt, "halo-forces", SpanKind::Halo, move |_| hook());

                    let mut update_group = Group::new();
                    for c in chunks_of(num_node, plan.nodal) {
                        update_group.push(node_update_stages(d, c, dt, f.merge_kernels));
                    }
                    let k = update_group.len();
                    let uf = self.run_group(
                        "node-update",
                        hooked.fork(k),
                        update_group,
                        &mut tasks,
                        &mut barriers,
                    );
                    let b2 = self.rt.when_all_unit_labeled("barrier-nodes", uf);
                    barriers += 1;
                    b2
                }
            }
        };

        // ---------------- Phase C: element kinematics chains ----------------
        let mut kin_group = Group::new();
        for c in chunks_of(num_elem, plan.elements) {
            kin_group.push(kinematics_stages(d, sc, c, dt, f.merge_kernels));
        }
        let k = kin_group.len();
        let cf = self.run_group(
            "kinematics",
            b2.fork(k),
            kin_group,
            &mut tasks,
            &mut barriers,
        );
        let b3 = self.rt.when_all_unit_labeled("barrier-kinematics", cf);
        barriers += 1;

        // Inter-domain gradient-ghost exchange (multi-domain runs).
        let b3 = match &hooks.after_gradients {
            Some(hook) => {
                let hook = Arc::clone(hook);
                tasks += 1;
                b3.then_kind(&self.rt, "halo-gradients", SpanKind::Halo, move |_| hook())
            }
            None => b3,
        };

        // ---------------- Phase D: monotonic Q + vnewc prep ----------------
        let mut d_groups: Vec<(&'static str, Group)> = Vec::new();
        let mut q_group = Group::new();
        for r in 0..d.num_reg() {
            let reg_len = d.regions.reg_elem_list[r].len();
            for c in chunks_of(reg_len, plan.elements) {
                let dd = Arc::clone(d);
                q_group.push(vec![Box::new(move || {
                    let elems = &dd.regions.reg_elem_list[r][c.begin..c.end];
                    monoq::calc_monotonic_q_region_for_elems(&dd, elems, &dd.params);
                }) as Stage]);
            }
        }
        d_groups.push(("monoq", q_group));

        let mut vnewc_group = Group::new();
        for c in chunks_of(num_elem, plan.elements) {
            vnewc_group.push(vnewc_stages(d, sc, c, f.merge_kernels));
        }
        d_groups.push(("vnewc", vnewc_group));

        let mut qstop_group = Group::new();
        for c in chunks_of(num_elem, plan.elements) {
            let dd = Arc::clone(d);
            let ss = Arc::clone(sc);
            qstop_group.push(vec![Box::new(move || {
                if monoq::check_q_stop(&dd, dd.params.qstop, c).is_err() {
                    ss.qstop_error.store(true, Ordering::Relaxed);
                }
            }) as Stage]);
        }
        d_groups.push(("qstop", qstop_group));

        let d_finals = self.run_groups_from(b3, d_groups, &mut tasks, &mut barriers);
        let b4 = self.rt.when_all_unit_labeled("barrier-q", d_finals);
        barriers += 1;

        // ---------------- Phase E: per-region EOS ----------------
        let mut region_groups: Vec<(&'static str, Group)> = Vec::new();
        for r in 0..d.num_reg() {
            let mut g = Group::new();
            let reg_len = d.regions.reg_elem_list[r].len();
            let rep = d.regions.rep(r);
            for c in chunks_of(reg_len, plan.elements) {
                let dd = Arc::clone(d);
                let ss = Arc::clone(sc);
                g.push(vec![Box::new(move || {
                    // SAFETY: vnewc was fully written in phase D (barrier
                    // b4) and is read-only during EOS.
                    let vnewc = unsafe { ss.vnewc.as_slice() };
                    let elems = &dd.regions.reg_elem_list[r][c.begin..c.end];
                    // Thread-local EOS temporaries: the paper's locality
                    // trick T6 keeps these out of the global arrays; the
                    // per-worker pool keeps T6's locality (the scratch
                    // lives on the executing worker — and, pinned, on its
                    // NUMA node) while dropping the per-task allocation.
                    // `reset` restores the exact `EosScratch::new` state,
                    // so results are bit-identical.
                    let mut ks = ss.kernel_scratch();
                    ks.eos.reset(elems.len());
                    eos::eval_eos_for_elems(&dd, vnewc, elems, rep, &dd.params, &mut ks.eos);
                }) as Stage]);
            }
            region_groups.push(("eos", g));
        }

        let b5 = if f.parallel_region_eos {
            let finals = self.run_groups_from(b4, region_groups, &mut tasks, &mut barriers);
            self.rt.when_all_unit_labeled("barrier-eos", finals)
        } else {
            // Sequential regions: barrier between consecutive regions.
            // Empty regions are skipped so they don't sever the chain.
            let mut barrier = b4;
            let mut first = true;
            for (label, g) in region_groups {
                if g.len() == 0 {
                    continue;
                }
                if !first {
                    barriers += 1;
                }
                first = false;
                let k = g.len();
                let finals = self.run_group(label, barrier.fork(k), g, &mut tasks, &mut barriers);
                barrier = self.rt.when_all_unit_labeled("barrier-eos-region", finals);
            }
            barrier
        };
        barriers += 1;

        // ---------------- Phase F: volume commit + dt constraints ----------------
        let mut f_groups: Vec<(&'static str, Group)> = Vec::new();
        let mut upd_group = Group::new();
        for c in chunks_of(num_elem, plan.elements) {
            let dd = Arc::clone(d);
            upd_group.push(vec![Box::new(move || {
                kinematics::update_volumes_for_elems(&dd, dd.params.v_cut, c);
            }) as Stage]);
        }
        f_groups.push(("volume", upd_group));

        let mut con_group = Group::new();
        for r in 0..d.num_reg() {
            let reg_len = d.regions.reg_elem_list[r].len();
            for c in chunks_of(reg_len, plan.elements) {
                let dd = Arc::clone(d);
                let ss = Arc::clone(sc);
                con_group.push(vec![Box::new(move || {
                    let elems = &dd.regions.reg_elem_list[r][c.begin..c.end];
                    let cc =
                        constraints::calc_courant_constraint_for_elems(&dd, elems, dd.params.qqc);
                    let hh =
                        constraints::calc_hydro_constraint_for_elems(&dd, elems, dd.params.dvovmax);
                    if cc.is_some() || hh.is_some() {
                        let mut mins = ss.dt_mins.lock();
                        if let Some(c) = cc {
                            mins.0 = mins.0.min(c);
                        }
                        if let Some(h) = hh {
                            mins.1 = mins.1.min(h);
                        }
                    }
                }) as Stage]);
            }
        }
        f_groups.push(("constraints", con_group));

        let f_finals = self.run_groups_from(b5, f_groups, &mut tasks, &mut barriers);
        let end = self.rt.when_all_unit_labeled("barrier-end", f_finals);
        barriers += 1; // the iteration-end join

        self.stats.set(GraphStats { tasks, barriers });
        end
    }
}

// ----------------------------------------------------------------------
// Stage builders. Each returns the chain of task bodies for one partition;
// `merged` selects one fused body (task-local temporaries, T3+T6) vs. the
// reference's separate kernels communicating via global scratch.
// ----------------------------------------------------------------------

fn stress_stages(d: &Arc<Domain>, sc: &Arc<TaskScratch>, c: Chunk, merged: bool) -> Vec<Stage> {
    if merged {
        let d = Arc::clone(d);
        let sc = Arc::clone(sc);
        vec![Box::new(move || {
            let len = c.len();
            // Worker-local warm scratch instead of per-task `vec!`s: same
            // zeroed state, no allocation at steady state.
            let mut ks = sc.kernel_scratch();
            let ks = &mut *ks;
            reset_buf(&mut ks.sigxx, len);
            reset_buf(&mut ks.sigyy, len);
            reset_buf(&mut ks.sigzz, len);
            reset_buf(&mut ks.determ, len);
            stress::init_stress_terms_for_elems(&d, &mut ks.sigxx, &mut ks.sigyy, &mut ks.sigzz, c);
            // SAFETY: per-corner slots of this chunk belong to this task.
            let (fx, fy, fz) = unsafe {
                (
                    sc.fx_elem.slice_mut(8 * c.begin, 8 * c.end),
                    sc.fy_elem.slice_mut(8 * c.begin, 8 * c.end),
                    sc.fz_elem.slice_mut(8 * c.begin, 8 * c.end),
                )
            };
            stress::integrate_stress_for_elems(
                &d,
                &ks.sigxx,
                &ks.sigyy,
                &ks.sigzz,
                &mut ks.determ,
                fx,
                fy,
                fz,
                c,
            );
            if stress::check_volume_error(&ks.determ).is_err() {
                sc.volume_error.store(true, Ordering::Relaxed);
            }
        })]
    } else {
        let d1 = Arc::clone(d);
        let s1 = Arc::clone(sc);
        let d2 = Arc::clone(d);
        let s2 = Arc::clone(sc);
        vec![
            Box::new(move || {
                // SAFETY: chunk-disjoint writes.
                let (sx, sy, sz) = unsafe {
                    (
                        s1.sigxx.slice_mut(c.begin, c.end),
                        s1.sigyy.slice_mut(c.begin, c.end),
                        s1.sigzz.slice_mut(c.begin, c.end),
                    )
                };
                stress::init_stress_terms_for_elems(&d1, sx, sy, sz, c);
            }),
            Box::new(move || {
                // SAFETY: chunk-disjoint; sig* of this chunk written by the
                // previous stage of this same item.
                let mut ks = s2.kernel_scratch();
                let ks = &mut *ks;
                reset_buf(&mut ks.determ, c.len());
                unsafe {
                    stress::integrate_stress_for_elems(
                        &d2,
                        s2.sigxx.slice(c.begin, c.end),
                        s2.sigyy.slice(c.begin, c.end),
                        s2.sigzz.slice(c.begin, c.end),
                        &mut ks.determ,
                        s2.fx_elem.slice_mut(8 * c.begin, 8 * c.end),
                        s2.fy_elem.slice_mut(8 * c.begin, 8 * c.end),
                        s2.fz_elem.slice_mut(8 * c.begin, 8 * c.end),
                        c,
                    );
                }
                if stress::check_volume_error(&ks.determ).is_err() {
                    s2.volume_error.store(true, Ordering::Relaxed);
                }
            }),
        ]
    }
}

fn hourglass_stages(d: &Arc<Domain>, sc: &Arc<TaskScratch>, c: Chunk, merged: bool) -> Vec<Stage> {
    if merged {
        let d = Arc::clone(d);
        let sc = Arc::clone(sc);
        vec![Box::new(move || {
            let len = c.len();
            // Worker-local warm scratch instead of per-task `vec!`s: same
            // zeroed state, no allocation at steady state.
            let mut ks = sc.kernel_scratch();
            let ks = &mut *ks;
            reset_buf(&mut ks.dvdx, 8 * len);
            reset_buf(&mut ks.dvdy, 8 * len);
            reset_buf(&mut ks.dvdz, 8 * len);
            reset_buf(&mut ks.x8n, 8 * len);
            reset_buf(&mut ks.y8n, 8 * len);
            reset_buf(&mut ks.z8n, 8 * len);
            reset_buf(&mut ks.determ, len);
            if hourglass::calc_hourglass_control_for_elems(
                &d,
                &mut ks.dvdx,
                &mut ks.dvdy,
                &mut ks.dvdz,
                &mut ks.x8n,
                &mut ks.y8n,
                &mut ks.z8n,
                &mut ks.determ,
                c,
            )
            .is_err()
            {
                sc.volume_error.store(true, Ordering::Relaxed);
                return;
            }
            if d.params.hgcoef > 0.0 {
                // SAFETY: this chunk's per-corner slots belong to this task.
                let (fx, fy, fz) = unsafe {
                    (
                        sc.fx_hg.slice_mut(8 * c.begin, 8 * c.end),
                        sc.fy_hg.slice_mut(8 * c.begin, 8 * c.end),
                        sc.fz_hg.slice_mut(8 * c.begin, 8 * c.end),
                    )
                };
                hourglass::calc_fb_hourglass_force_for_elems(
                    &d,
                    &ks.determ,
                    &ks.x8n,
                    &ks.y8n,
                    &ks.z8n,
                    &ks.dvdx,
                    &ks.dvdy,
                    &ks.dvdz,
                    d.params.hgcoef,
                    fx,
                    fy,
                    fz,
                    c,
                );
            }
        })]
    } else {
        let d1 = Arc::clone(d);
        let s1 = Arc::clone(sc);
        let d2 = Arc::clone(d);
        let s2 = Arc::clone(sc);
        vec![
            Box::new(move || {
                // SAFETY: chunk-disjoint writes to the global geometry scratch.
                let r = unsafe {
                    hourglass::calc_hourglass_control_for_elems(
                        &d1,
                        s1.dvdx.slice_mut(8 * c.begin, 8 * c.end),
                        s1.dvdy.slice_mut(8 * c.begin, 8 * c.end),
                        s1.dvdz.slice_mut(8 * c.begin, 8 * c.end),
                        s1.x8n.slice_mut(8 * c.begin, 8 * c.end),
                        s1.y8n.slice_mut(8 * c.begin, 8 * c.end),
                        s1.z8n.slice_mut(8 * c.begin, 8 * c.end),
                        s1.determ.slice_mut(c.begin, c.end),
                        c,
                    )
                };
                if r.is_err() {
                    s1.volume_error.store(true, Ordering::Relaxed);
                }
            }),
            Box::new(move || {
                // Note: deliberately NOT gated on the global volume_error
                // flag — that flag is set concurrently by other chunks, and
                // gating on it would make this stage's output
                // schedule-dependent. On an error iteration the values may
                // be garbage (like every other driver's), but the run
                // aborts at the iteration-end check either way.
                if d2.params.hgcoef > 0.0 {
                    // SAFETY: geometry of this chunk written by the previous
                    // stage of this item; force slots chunk-disjoint.
                    unsafe {
                        hourglass::calc_fb_hourglass_force_for_elems(
                            &d2,
                            s2.determ.slice(c.begin, c.end),
                            s2.x8n.slice(8 * c.begin, 8 * c.end),
                            s2.y8n.slice(8 * c.begin, 8 * c.end),
                            s2.z8n.slice(8 * c.begin, 8 * c.end),
                            s2.dvdx.slice(8 * c.begin, 8 * c.end),
                            s2.dvdy.slice(8 * c.begin, 8 * c.end),
                            s2.dvdz.slice(8 * c.begin, 8 * c.end),
                            d2.params.hgcoef,
                            s2.fx_hg.slice_mut(8 * c.begin, 8 * c.end),
                            s2.fy_hg.slice_mut(8 * c.begin, 8 * c.end),
                            s2.fz_hg.slice_mut(8 * c.begin, 8 * c.end),
                            c,
                        );
                    }
                }
            }),
        ]
    }
}

/// Chunks covering an arbitrary sub-range (the boundary/interior split of
/// the overlapped force gather).
fn chunks_in(r: std::ops::Range<usize>, size: usize) -> impl Iterator<Item = Chunk> {
    let base = r.start;
    chunks_of(r.len(), size).map(move |c| Chunk {
        begin: c.begin + base,
        end: c.end + base,
    })
}

/// The complement of `ranges` within `0..n` (the interior partition).
fn complement(ranges: &[std::ops::Range<usize>], n: usize) -> Vec<std::ops::Range<usize>> {
    let mut rs = ranges.to_vec();
    rs.sort_by_key(|r| r.start);
    let mut out = Vec::new();
    let mut pos = 0;
    for r in rs {
        if r.start > pos {
            out.push(pos..r.start);
        }
        pos = pos.max(r.end);
    }
    if pos < n {
        out.push(pos..n);
    }
    out
}

fn node_gather_stage(d: &Arc<Domain>, sc: &Arc<TaskScratch>, c: Chunk) -> Stage {
    let d = Arc::clone(d);
    let sc = Arc::clone(sc);
    Box::new(move || {
        // SAFETY: all per-corner forces are complete (phase barrier) and
        // read-only here.
        unsafe {
            stress::gather_forces_sum2(
                &d,
                sc.fx_elem.as_slice(),
                sc.fy_elem.as_slice(),
                sc.fz_elem.as_slice(),
                sc.fx_hg.as_slice(),
                sc.fy_hg.as_slice(),
                sc.fz_hg.as_slice(),
                c,
            );
        }
    })
}

fn node_update_stages(d: &Arc<Domain>, c: Chunk, dt: Real, merged: bool) -> Vec<Stage> {
    if merged {
        let d = Arc::clone(d);
        vec![Box::new(move || {
            nodal::calc_acceleration_for_nodes(&d, c);
            nodal::apply_acceleration_bc_by_node_range(&d, c);
            nodal::calc_velocity_for_nodes(&d, dt, d.params.u_cut, c);
            nodal::calc_position_for_nodes(&d, dt, c);
        })]
    } else {
        let d1 = Arc::clone(d);
        let d2 = Arc::clone(d);
        let d3 = Arc::clone(d);
        let d4 = Arc::clone(d);
        vec![
            Box::new(move || nodal::calc_acceleration_for_nodes(&d1, c)),
            Box::new(move || nodal::apply_acceleration_bc_by_node_range(&d2, c)),
            Box::new(move || nodal::calc_velocity_for_nodes(&d3, dt, d3.params.u_cut, c)),
            Box::new(move || nodal::calc_position_for_nodes(&d4, dt, c)),
        ]
    }
}

fn node_stages(
    d: &Arc<Domain>,
    sc: &Arc<TaskScratch>,
    c: Chunk,
    dt: Real,
    merged: bool,
) -> Vec<Stage> {
    let gather = node_gather_stage(d, sc, c);
    let updates = node_update_stages(d, c, dt, merged);
    if merged {
        // One fused task: gather + the whole node update.
        let update = updates.into_iter().next().expect("merged update stage");
        vec![Box::new(move || {
            gather();
            update();
        })]
    } else {
        let mut stages = vec![gather];
        stages.extend(updates);
        stages
    }
}

fn kinematics_stages(
    d: &Arc<Domain>,
    sc: &Arc<TaskScratch>,
    c: Chunk,
    dt: Real,
    merged: bool,
) -> Vec<Stage> {
    if merged {
        let d = Arc::clone(d);
        let sc = Arc::clone(sc);
        vec![Box::new(move || {
            kinematics::calc_kinematics_for_elems(&d, dt, c);
            if kinematics::calc_lagrange_elements_finish(&d, c).is_err() {
                sc.volume_error.store(true, Ordering::Relaxed);
            }
            monoq::calc_monotonic_q_gradients_for_elems(&d, c);
        })]
    } else {
        let d1 = Arc::clone(d);
        let d2 = Arc::clone(d);
        let s2 = Arc::clone(sc);
        let d3 = Arc::clone(d);
        vec![
            Box::new(move || kinematics::calc_kinematics_for_elems(&d1, dt, c)),
            Box::new(move || {
                if kinematics::calc_lagrange_elements_finish(&d2, c).is_err() {
                    s2.volume_error.store(true, Ordering::Relaxed);
                }
            }),
            Box::new(move || monoq::calc_monotonic_q_gradients_for_elems(&d3, c)),
        ]
    }
}

fn vnewc_stages(d: &Arc<Domain>, sc: &Arc<TaskScratch>, c: Chunk, merged: bool) -> Vec<Stage> {
    let fill = {
        let d = Arc::clone(d);
        let sc = Arc::clone(sc);
        move || {
            // SAFETY: chunk-disjoint writes.
            let v = unsafe { sc.vnewc.slice_mut(c.begin, c.end) };
            eos::fill_vnewc_clamped(&d, v, d.params.eosvmin, d.params.eosvmax, c);
        }
    };
    let check = {
        let d = Arc::clone(d);
        let sc = Arc::clone(sc);
        move || {
            if eos::check_eos_volume_bounds(&d, d.params.eosvmin, d.params.eosvmax, c).is_err() {
                sc.volume_error.store(true, Ordering::Relaxed);
            }
        }
    };
    if merged {
        vec![Box::new(move || {
            fill();
            check();
        })]
    } else {
        vec![Box::new(fill), Box::new(check)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lulesh_core::serial;
    use lulesh_core::validate::max_field_difference;

    fn run_task(
        size: usize,
        regs: usize,
        threads: usize,
        cycles: u64,
        features: Features,
        plan: PartitionPlan,
    ) -> (Arc<Domain>, SimState) {
        let d = Arc::new(Domain::build(size, regs, 1, 1, 0));
        let runner = TaskLulesh::with_features(threads, features);
        let st = runner.run(&d, plan, cycles).unwrap();
        (d, st)
    }

    fn serial_ref(size: usize, regs: usize, cycles: u64) -> Domain {
        let d = Domain::build(size, regs, 1, 1, 0);
        serial::run(&d, cycles).unwrap();
        d
    }

    #[test]
    fn matches_serial_default_features() {
        let ds = serial_ref(6, 3, 10);
        let (dt, _) = run_task(
            6,
            3,
            4,
            10,
            Features::default(),
            PartitionPlan::fixed(32, 32),
        );
        assert_eq!(
            max_field_difference(&ds, &dt),
            0.0,
            "bitwise agreement expected"
        );
    }

    #[test]
    fn matches_serial_naive_features() {
        let ds = serial_ref(6, 3, 10);
        let (dt, _) = run_task(6, 3, 4, 10, Features::naive(), PartitionPlan::fixed(32, 32));
        assert_eq!(max_field_difference(&ds, &dt), 0.0);
    }

    #[test]
    fn matches_serial_each_feature_off() {
        let ds = serial_ref(5, 4, 8);
        for (name, features) in [
            (
                "no-chains",
                Features {
                    chain_continuations: false,
                    ..Features::default()
                },
            ),
            (
                "no-merge",
                Features {
                    merge_kernels: false,
                    ..Features::default()
                },
            ),
            (
                "no-par-force",
                Features {
                    parallel_force_chains: false,
                    ..Features::default()
                },
            ),
            (
                "no-par-eos",
                Features {
                    parallel_region_eos: false,
                    ..Features::default()
                },
            ),
        ] {
            let (dt, _) = run_task(5, 4, 3, 8, features, PartitionPlan::fixed(16, 16));
            assert_eq!(max_field_difference(&ds, &dt), 0.0, "feature set {name}");
        }
    }

    #[test]
    fn matches_serial_single_thread() {
        let ds = serial_ref(5, 2, 12);
        let (dt, _) = run_task(
            5,
            2,
            1,
            12,
            Features::default(),
            PartitionPlan::fixed(64, 64),
        );
        assert_eq!(max_field_difference(&ds, &dt), 0.0);
    }

    #[test]
    fn partition_size_does_not_change_results() {
        let ds = serial_ref(6, 5, 10);
        for p in [8, 37, 100, 4096] {
            let (dt, _) = run_task(6, 5, 2, 10, Features::default(), PartitionPlan::fixed(p, p));
            assert_eq!(max_field_difference(&ds, &dt), 0.0, "partition {p}");
        }
    }

    #[test]
    fn state_matches_serial() {
        let d = Domain::build(5, 2, 1, 1, 0);
        let st_s = serial::run(&d, 1_000_000).unwrap();
        let (_, st_t) = run_task(
            5,
            2,
            2,
            1_000_000,
            Features::default(),
            PartitionPlan::fixed(64, 64),
        );
        assert_eq!(st_s.cycle, st_t.cycle);
        assert_eq!(st_s.time, st_t.time);
        assert_eq!(st_s.dtcourant, st_t.dtcourant);
        assert_eq!(st_s.dthydro, st_t.dthydro);
    }

    #[test]
    fn graph_stats_reported() {
        let d = Arc::new(Domain::build(6, 3, 1, 1, 0));
        let runner = TaskLulesh::new(2);
        runner.run(&d, PartitionPlan::fixed(32, 32), 1).unwrap();
        let g = runner.graph_stats();
        assert!(g.tasks > 20, "expected a real graph, got {} tasks", g.tasks);
        // Five internal barriers + the iteration-end join; one fewer than
        // the paper's seven (see module docs).
        assert_eq!(g.barriers, 6);
    }

    #[test]
    fn naive_features_have_more_barriers() {
        let d = Arc::new(Domain::build(5, 3, 1, 1, 0));
        let opt = TaskLulesh::new(2);
        opt.run(&d, PartitionPlan::fixed(32, 32), 1).unwrap();
        let d2 = Arc::new(Domain::build(5, 3, 1, 1, 0));
        let naive = TaskLulesh::with_features(2, Features::naive());
        naive.run(&d2, PartitionPlan::fixed(32, 32), 1).unwrap();
        assert!(
            naive.graph_stats().barriers > opt.graph_stats().barriers,
            "naive {} vs optimized {}",
            naive.graph_stats().barriers,
            opt.graph_stats().barriers
        );
    }

    #[test]
    fn traced_run_has_six_sync_points_per_iteration() {
        // Satellite check for the paper's sync-point accounting: the claim
        // of six synchronization points per leapfrog iteration is verified
        // at *runtime* from emitted barrier spans, not from GraphStats
        // bookkeeping (which could drift from what actually executes).
        let iterations = 4u64;
        let threads = 3usize;
        let tracer = Tracer::shared(threads + 1);
        let d = Arc::new(Domain::build(5, 3, 1, 1, 0));
        let runner = TaskLulesh::with_tracer(threads, Features::default(), Arc::clone(&tracer), 0);
        let st = runner
            .run(&d, PartitionPlan::fixed(32, 32), iterations)
            .unwrap();
        assert_eq!(st.cycle, iterations);

        let spans = tracer.drain();
        let barrier_spans = spans.iter().filter(|s| s.kind == SpanKind::Barrier).count();
        assert_eq!(
            barrier_spans as u64,
            6 * iterations,
            "default features must execute exactly 6 sync points per iteration"
        );
        let iter_spans = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Region && s.label == "iteration")
            .count();
        assert_eq!(iter_spans as u64, iterations);
        // Every graph task got a span, and the labels are the kernel set.
        assert!(spans.iter().filter(|s| s.kind == SpanKind::Task).all(|s| {
            matches!(
                s.label,
                "stress"
                    | "hourglass"
                    | "node"
                    | "node-gather"
                    | "node-update"
                    | "kinematics"
                    | "monoq"
                    | "vnewc"
                    | "qstop"
                    | "eos"
                    | "volume"
                    | "constraints"
            )
        }));
    }

    #[test]
    fn traced_matches_untraced_results() {
        // Tracing must be observational only: bit-identical physics.
        let ds = serial_ref(5, 2, 6);
        let tracer = Tracer::shared(3);
        let d = Arc::new(Domain::build(5, 2, 1, 1, 0));
        let runner = TaskLulesh::with_tracer(2, Features::default(), tracer, 0);
        runner.run(&d, PartitionPlan::fixed(32, 32), 6).unwrap();
        assert_eq!(max_field_difference(&ds, &d), 0.0);
    }

    #[test]
    fn utilization_reported() {
        let d = Arc::new(Domain::build(5, 2, 1, 1, 0));
        let runner = TaskLulesh::new(2);
        runner.reset_counters();
        runner.run(&d, PartitionPlan::fixed(64, 64), 5).unwrap();
        let u = runner.utilization();
        // Raw (unclamped) ratio with ε slack for clock-read skew.
        assert!(u > 0.0 && u <= 1.05, "utilization {u}");
        assert!(runner.runtime_stats().tasks > 0);
    }

    #[test]
    fn auto_policy_matches_serial_while_resizing() {
        // The tuner resizes partitions mid-run; physics must stay
        // bit-identical to the serial reference regardless.
        let ds = serial_ref(6, 5, 24);
        let d = Arc::new(Domain::build(6, 5, 1, 1, 0));
        let runner = TaskLulesh::new(3);
        let cfg = AutoTuneConfig {
            window: 2,
            warmup_windows: 1,
            min_task_ns: 0.0, // tiny test tasks: let the tuner actually probe finer
            ..AutoTuneConfig::default()
        };
        let st = runner
            .run_policy(&d, PartitionPolicy::Auto(cfg), 24)
            .unwrap();
        assert_eq!(max_field_difference(&ds, &d), 0.0);
        assert!(st.cycle > 0);
        let report = runner.auto_report().expect("auto run leaves a report");
        assert!(report.windows >= 3, "windows {}", report.windows);
        let plans: std::collections::BTreeSet<_> = report
            .history
            .iter()
            .map(|(p, _)| (p.plan.nodal, p.plan.elements))
            .collect();
        assert!(
            plans.len() >= 2,
            "tuner never actually tried a different plan: {plans:?}"
        );
    }

    #[test]
    fn fixed_policy_runs_leave_no_auto_report() {
        let d = Arc::new(Domain::build(5, 2, 1, 1, 0));
        let runner = TaskLulesh::new(2);
        runner
            .run_policy(&d, PartitionPolicy::Fixed(PartitionPlan::fixed(64, 64)), 3)
            .unwrap();
        assert!(runner.auto_report().is_none());
    }

    #[test]
    fn phase_stats_cover_the_kernel_phases() {
        let d = Arc::new(Domain::build(6, 3, 1, 1, 0));
        let runner = TaskLulesh::new(2);
        runner.run(&d, PartitionPlan::fixed(64, 64), 2).unwrap();
        let phases = runner.phase_stats();
        let labels: Vec<_> = phases.iter().map(|p| p.label).collect();
        for expected in ["stress", "hourglass", "kinematics", "eos"] {
            assert!(labels.contains(&expected), "missing phase {expected}");
        }
        assert!(phases.iter().all(|p| p.tasks > 0));
    }
}
