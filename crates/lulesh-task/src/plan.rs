//! Partition-size policy (the paper's Table I plus its tuning rules).
//!
//! The partition size `P` is the number of elements/nodes each task
//! iterates over (paper §IV, Fig 5). Table I records the sizes the authors
//! found best per problem size; `PartitionPlan::for_size` reproduces that
//! table and falls back to a bounded heuristic for sizes the paper did not
//! evaluate (e.g. the small meshes used in tests).

/// Partition sizes for the two leapfrog phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Partition size for `LagrangeNodal()` (force + node-update tasks).
    pub nodal: usize,
    /// Partition size for `LagrangeElements()` (kinematics/Q/EOS tasks).
    pub elements: usize,
}

impl PartitionPlan {
    /// Fixed sizes (Table I of the paper).
    pub const TABLE_I: [(usize, PartitionPlan); 6] = [
        (
            45,
            PartitionPlan {
                nodal: 2048,
                elements: 2048,
            },
        ),
        (
            60,
            PartitionPlan {
                nodal: 4096,
                elements: 2048,
            },
        ),
        (
            75,
            PartitionPlan {
                nodal: 8192,
                elements: 4096,
            },
        ),
        (
            90,
            PartitionPlan {
                nodal: 8192,
                elements: 4096,
            },
        ),
        (
            120,
            PartitionPlan {
                nodal: 8192,
                elements: 2048,
            },
        ),
        (
            150,
            PartitionPlan {
                nodal: 8192,
                elements: 2048,
            },
        ),
    ];

    /// The plan for a given problem size: Table I when listed, otherwise a
    /// heuristic that keeps roughly 32–128 tasks per loop, clamped to
    /// [64, 8192].
    pub fn for_size(size: usize) -> Self {
        for (s, plan) in Self::TABLE_I {
            if s == size {
                return plan;
            }
        }
        let num_elem = size * size * size;
        let p = (num_elem / 64).next_power_of_two().clamp(64, 8192);
        PartitionPlan {
            nodal: p,
            elements: p,
        }
    }

    /// An explicit plan (used by the Table-I sweep bench and tests).
    pub fn fixed(nodal: usize, elements: usize) -> Self {
        assert!(nodal > 0 && elements > 0);
        PartitionPlan { nodal, elements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        assert_eq!(
            PartitionPlan::for_size(45),
            PartitionPlan {
                nodal: 2048,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(60),
            PartitionPlan {
                nodal: 4096,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(75),
            PartitionPlan {
                nodal: 8192,
                elements: 4096
            }
        );
        assert_eq!(
            PartitionPlan::for_size(90),
            PartitionPlan {
                nodal: 8192,
                elements: 4096
            }
        );
        assert_eq!(
            PartitionPlan::for_size(120),
            PartitionPlan {
                nodal: 8192,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(150),
            PartitionPlan {
                nodal: 8192,
                elements: 2048
            }
        );
    }

    #[test]
    fn heuristic_for_unlisted_sizes() {
        let p = PartitionPlan::for_size(8); // 512 elements
        assert!(p.nodal >= 64 && p.nodal <= 8192);
        let big = PartitionPlan::for_size(200); // 8M elements
        assert_eq!(big.nodal, 8192, "clamped at the Table I maximum");
    }

    #[test]
    fn heuristic_gives_multiple_tasks_for_moderate_meshes() {
        // A 20³ mesh (8000 elements) should split into several tasks.
        let p = PartitionPlan::for_size(20);
        assert!(
            8000 / p.elements >= 2,
            "partition {} too coarse",
            p.elements
        );
    }

    #[test]
    #[should_panic]
    fn fixed_rejects_zero() {
        let _ = PartitionPlan::fixed(0, 128);
    }
}
