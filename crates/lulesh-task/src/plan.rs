//! Partition-size policy (the paper's Table I plus its tuning rules).
//!
//! The partition size `P` is the number of elements/nodes each task
//! iterates over (paper §IV, Fig 5). Table I records the sizes the authors
//! found best per problem size; `PartitionPlan::for_size` reproduces that
//! table and falls back to a bounded heuristic for sizes the paper did not
//! evaluate (e.g. the small meshes used in tests).

/// Smallest partition size any policy (static floor or auto-tuner) will
/// produce. Below this the per-task overhead dwarfs the kernel work on any
/// machine we model. Must stay ≥ [`MAX_LANE_WIDTH`] so even the smallest
/// partition feeds the lane-blocked kernels one full lane group.
pub const MIN_PARTITION: usize = 8;

/// Widest kernel lane width any driver activates (`lulesh_core::simd`'s
/// `LaneWidth::W8`). The partition floor is tied to it: a partition
/// narrower than the widest lane group would force every task down the
/// ragged-tail path and waste the vector units.
pub const MAX_LANE_WIDTH: usize = 8;

/// Largest power-of-two partition size that still yields at least
/// `threads` tasks over a loop of `items`, floored at [`MIN_PARTITION`].
/// This is the task-count floor shared by [`PartitionPlan::for_size_threads`]
/// and the auto-tuner: with fewer tasks than workers, some cores are
/// guaranteed idle no matter how the scheduler places work.
pub fn partition_cap(items: usize, threads: usize) -> usize {
    let per = (items / threads.max(1)).max(MIN_PARTITION);
    // Largest power of two ≤ per.
    1 << (usize::BITS - 1 - per.leading_zeros())
}

/// Partition sizes for the two leapfrog phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Partition size for `LagrangeNodal()` (force + node-update tasks).
    pub nodal: usize,
    /// Partition size for `LagrangeElements()` (kinematics/Q/EOS tasks).
    pub elements: usize,
}

impl PartitionPlan {
    /// Fixed sizes (Table I of the paper).
    pub const TABLE_I: [(usize, PartitionPlan); 6] = [
        (
            45,
            PartitionPlan {
                nodal: 2048,
                elements: 2048,
            },
        ),
        (
            60,
            PartitionPlan {
                nodal: 4096,
                elements: 2048,
            },
        ),
        (
            75,
            PartitionPlan {
                nodal: 8192,
                elements: 4096,
            },
        ),
        (
            90,
            PartitionPlan {
                nodal: 8192,
                elements: 4096,
            },
        ),
        (
            120,
            PartitionPlan {
                nodal: 8192,
                elements: 2048,
            },
        ),
        (
            150,
            PartitionPlan {
                nodal: 8192,
                elements: 2048,
            },
        ),
    ];

    /// The plan for a given problem size: Table I when listed, otherwise a
    /// heuristic that keeps roughly 32–128 tasks per loop, clamped to
    /// [64, 8192]. Thread-count blind — prefer
    /// [`for_size_threads`](Self::for_size_threads) when the worker count
    /// is known.
    pub fn for_size(size: usize) -> Self {
        for (s, plan) in Self::TABLE_I {
            if s == size {
                return plan;
            }
        }
        let num_elem = size * size * size;
        let p = (num_elem / 64).next_power_of_two().clamp(64, 8192);
        PartitionPlan {
            nodal: p,
            elements: p,
        }
    }

    /// [`for_size`](Self::for_size) with the task count floored at the
    /// runtime's thread count: each partition size is capped at
    /// [`partition_cap`] so a small mesh on a wide pool still produces at
    /// least one task per worker. At the paper's 24 threads the cap leaves
    /// every Table I entry unchanged.
    pub fn for_size_threads(size: usize, threads: usize) -> Self {
        let plan = Self::for_size(size);
        let cap = partition_cap(size * size * size, threads);
        PartitionPlan {
            nodal: plan.nodal.min(cap),
            elements: plan.elements.min(cap),
        }
    }

    /// An explicit plan (used by the Table-I sweep bench and tests).
    pub fn fixed(nodal: usize, elements: usize) -> Self {
        assert!(nodal > 0 && elements > 0);
        PartitionPlan { nodal, elements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        assert_eq!(
            PartitionPlan::for_size(45),
            PartitionPlan {
                nodal: 2048,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(60),
            PartitionPlan {
                nodal: 4096,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(75),
            PartitionPlan {
                nodal: 8192,
                elements: 4096
            }
        );
        assert_eq!(
            PartitionPlan::for_size(90),
            PartitionPlan {
                nodal: 8192,
                elements: 4096
            }
        );
        assert_eq!(
            PartitionPlan::for_size(120),
            PartitionPlan {
                nodal: 8192,
                elements: 2048
            }
        );
        assert_eq!(
            PartitionPlan::for_size(150),
            PartitionPlan {
                nodal: 8192,
                elements: 2048
            }
        );
    }

    #[test]
    fn heuristic_for_unlisted_sizes() {
        let p = PartitionPlan::for_size(8); // 512 elements
        assert!(p.nodal >= 64 && p.nodal <= 8192);
        let big = PartitionPlan::for_size(200); // 8M elements
        assert_eq!(big.nodal, 8192, "clamped at the Table I maximum");
    }

    #[test]
    fn heuristic_gives_multiple_tasks_for_moderate_meshes() {
        // A 20³ mesh (8000 elements) should split into several tasks.
        let p = PartitionPlan::for_size(20);
        assert!(
            8000 / p.elements >= 2,
            "partition {} too coarse",
            p.elements
        );
    }

    #[test]
    #[should_panic]
    fn fixed_rejects_zero() {
        let _ = PartitionPlan::fixed(0, 128);
    }

    #[test]
    fn thread_floor_guarantees_a_task_per_worker() {
        // Regression: `for_size` is thread-count blind — an 8³ mesh (512
        // elements) got partition 64, i.e. 8 tasks, starving a 16-wide
        // pool. The thread-aware variant must cap the partition size so
        // every worker gets at least one task.
        for threads in [1, 2, 4, 8, 16, 32] {
            for size in [5usize, 8, 12, 20, 45] {
                let num_elem = size * size * size;
                let p = PartitionPlan::for_size_threads(size, threads);
                let tasks = num_elem.div_ceil(p.elements);
                assert!(
                    tasks >= threads.min(num_elem / MIN_PARTITION).max(1),
                    "size {size} × {threads} threads: partition {} gives \
                     only {tasks} tasks",
                    p.elements
                );
                assert!(p.nodal >= MIN_PARTITION && p.elements >= MIN_PARTITION);
            }
        }
    }

    #[test]
    fn thread_floor_leaves_table_i_unchanged_at_paper_width() {
        for (size, plan) in PartitionPlan::TABLE_I {
            assert_eq!(
                PartitionPlan::for_size_threads(size, 24),
                plan,
                "24-thread cap must not disturb Table I for size {size}"
            );
        }
    }

    #[test]
    fn partition_floor_covers_the_widest_lane_group() {
        const { assert!(MIN_PARTITION >= MAX_LANE_WIDTH) }
        assert_eq!(
            MAX_LANE_WIDTH,
            lulesh_core::simd::LaneWidth::W8.lanes(),
            "plan's width ceiling must track core::simd's widest mode"
        );
    }

    #[test]
    fn partition_cap_is_power_of_two_floor() {
        assert_eq!(partition_cap(512, 16), 32);
        assert_eq!(partition_cap(216, 3), 64); // 72 → 64
        assert_eq!(partition_cap(1000, 1), 512);
        // Tiny loops bottom out at MIN_PARTITION, never 0.
        assert_eq!(partition_cap(4, 8), MIN_PARTITION);
    }
}
