//! Cache-line-aligned owned scratch buffers.
//!
//! [`AlignedBuf`] is the pool-friendly counterpart of
//! [`SharedVec`](crate::SharedVec): a growable `Vec<T>`-like buffer whose
//! allocation always starts on a 64-byte boundary (see
//! [`CACHE_LINE`](crate::shared_slice::CACHE_LINE)), so lane-group loads in
//! the SIMD kernels never straddle a cache line. It is restricted to
//! [`ZeroBits`] element types because the kernels only ever need
//! "`len` zeros, reusing capacity" semantics — that keeps every reset a
//! single `memset` and makes the buffer trivially panic-safe.

use crate::shared_slice::{ZeroBits, CACHE_LINE};
use std::alloc::Layout;

/// A 64-byte-aligned, zero-fill-resettable scratch buffer.
///
/// Dereferences to `[T]`, so call sites that used to take `&mut Vec<T>`
/// slices keep working unchanged. Capacity only grows; `reset_zeroed` on a
/// warmed-up buffer is allocation-free (the property the per-worker
/// `KernelScratch` pools rely on).
pub struct AlignedBuf<T: ZeroBits> {
    /// Aligned allocation of `cap` elements, dangling when `cap == 0`.
    ptr: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: `AlignedBuf` owns its allocation and hands out references only
// through `&self`/`&mut self`, so the usual container rules apply.
unsafe impl<T: ZeroBits + Send> Send for AlignedBuf<T> {}
unsafe impl<T: ZeroBits + Sync> Sync for AlignedBuf<T> {}

fn buf_layout<T>(cap: usize) -> Layout {
    Layout::array::<T>(cap)
        .and_then(|l| l.align_to(CACHE_LINE))
        .expect("layout overflow")
}

impl<T: ZeroBits> AlignedBuf<T> {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Self {
            ptr: std::ptr::NonNull::dangling().as_ptr(),
            len: 0,
            cap: 0,
        }
    }

    /// `len` zeros, allocated up front.
    pub fn zeroed(len: usize) -> Self {
        let mut b = Self::new();
        b.reset_zeroed(len);
        b
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no live elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer (64-byte aligned whenever capacity is non-zero).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr as *const T
    }

    /// Ensure capacity for `n` elements; contents unspecified afterwards.
    fn reserve_exact(&mut self, n: usize) {
        if n <= self.cap {
            return;
        }
        let layout = buf_layout::<T>(n);
        // SAFETY: non-zero-sized layout (`n > cap >= 0`, `T` is a ZeroBits
        // numeric, so not a ZST); the old allocation (if any) is freed with
        // the identically computed layout for its capacity.
        unsafe {
            let ptr = std::alloc::alloc(layout) as *mut T;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            if self.cap > 0 {
                std::alloc::dealloc(self.ptr as *mut u8, buf_layout::<T>(self.cap));
            }
            self.ptr = ptr;
        }
        self.cap = n;
    }

    /// Make the buffer exactly `n` zeros, reusing capacity when possible
    /// (equivalent to `buf.clear(); buf.resize(n, 0)` on a `Vec`).
    pub fn reset_zeroed(&mut self, n: usize) {
        self.reserve_exact(n);
        // SAFETY: `n <= cap`, allocation owned; all-zero bytes are a valid
        // `T` per the `ZeroBits` bound.
        unsafe { std::ptr::write_bytes(self.ptr, 0u8, n) };
        self.len = n;
    }

    /// Resize to `n` elements, keeping the current prefix and zero-filling
    /// any growth (equivalent to `buf.resize(n, 0)` on a `Vec`).
    pub fn resize_zeroed(&mut self, n: usize) {
        if n <= self.len {
            self.len = n;
            return;
        }
        if n > self.cap {
            let old_ptr = self.ptr;
            let old_cap = self.cap;
            let keep = self.len;
            let layout = buf_layout::<T>(n);
            // SAFETY: fresh zeroed allocation; prefix copied from the old
            // buffer before it is freed with its own recomputed layout.
            unsafe {
                let ptr = std::alloc::alloc_zeroed(layout) as *mut T;
                if ptr.is_null() {
                    std::alloc::handle_alloc_error(layout);
                }
                std::ptr::copy_nonoverlapping(old_ptr as *const T, ptr, keep);
                if old_cap > 0 {
                    std::alloc::dealloc(old_ptr as *mut u8, buf_layout::<T>(old_cap));
                }
                self.ptr = ptr;
            }
            self.cap = n;
        } else {
            // SAFETY: the grown region `len..n` is within capacity.
            unsafe { std::ptr::write_bytes(self.ptr.add(self.len), 0u8, n - self.len) };
        }
        self.len = n;
    }
}

impl<T: ZeroBits> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ZeroBits> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: owned allocation, layout recomputed from capacity;
            // `T: ZeroBits` is `Copy`, so no element drops are needed.
            unsafe { std::alloc::dealloc(self.ptr as *mut u8, buf_layout::<T>(self.cap)) };
        }
    }
}

impl<T: ZeroBits> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut b = Self::new();
        b.reserve_exact(self.len);
        // SAFETY: both allocations hold at least `len` elements.
        unsafe { std::ptr::copy_nonoverlapping(self.ptr as *const T, b.ptr, self.len) };
        b.len = self.len;
        b
    }
}

impl<T: ZeroBits> std::ops::Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `len` initialized elements, exclusive ownership rules.
        unsafe { std::slice::from_raw_parts(self.ptr as *const T, self.len) }
    }
}

impl<T: ZeroBits> std::ops::DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T: ZeroBits + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_aligned_after_growth() {
        let mut b = AlignedBuf::<f64>::new();
        assert!(b.is_empty());
        for n in [1usize, 3, 7, 64, 65, 1000] {
            b.reset_zeroed(n);
            assert_eq!(b.len(), n);
            assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0, "reset_zeroed({n})");
            assert!(b.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn reset_reuses_capacity_and_rezeroes() {
        let mut b = AlignedBuf::<f64>::zeroed(100);
        let p = b.as_ptr();
        b.iter_mut().for_each(|v| *v = 7.0);
        b.reset_zeroed(40);
        assert_eq!(b.as_ptr(), p, "no reallocation when shrinking");
        assert_eq!(b.len(), 40);
        assert!(b.iter().all(|&v| v == 0.0), "stale contents re-zeroed");
    }

    #[test]
    fn resize_keeps_prefix_and_zero_fills_growth() {
        let mut b = AlignedBuf::<u64>::zeroed(4);
        b.copy_from_slice(&[1, 2, 3, 4]);
        b.resize_zeroed(2);
        b.resize_zeroed(6); // regrow within capacity: tail must be re-zeroed
        assert_eq!(&b[..], &[1, 2, 0, 0, 0, 0]);
        b[5] = 9;
        b.resize_zeroed(100); // regrow across a reallocation
        assert_eq!(&b[..6], &[1, 2, 0, 0, 0, 9]);
        assert!(b[6..].iter().all(|&v| v == 0));
        assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn clone_copies_contents_into_aligned_storage() {
        let mut b = AlignedBuf::<f64>::zeroed(5);
        b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let c = b.clone();
        assert_eq!(&c[..], &b[..]);
        assert_eq!(c.as_ptr() as usize % CACHE_LINE, 0);
        let empty = AlignedBuf::<f64>::default().clone();
        assert!(empty.is_empty());
    }
}
