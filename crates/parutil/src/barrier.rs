//! A sense-reversing barrier.
//!
//! The OpenMP-substitute pool synchronizes its worker threads at the end of
//! every parallel loop — exactly the synchronization cost the paper's HPX
//! port removes. A centralized sense-reversing barrier with bounded spinning
//! before parking keeps that cost low and, more importantly for Figure 11,
//! lets us *measure* the time threads spend in it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// How long a thread spins before parking. Spinning keeps barrier latency
/// in the sub-microsecond range for balanced loads; parking keeps idle
/// threads off the CPU for imbalanced ones. Kept short and interleaved
/// with `yield_now` so oversubscribed hosts (more threads than cores)
/// hand the CPU to the threads still doing work instead of burning their
/// scheduler quantum.
const SPIN_ROUNDS: u32 = 256;

/// A reusable barrier for a fixed set of `n` participants.
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    mutex: parking_lot::Mutex<()>,
    condvar: parking_lot::Condvar,
}

impl SenseBarrier {
    /// Create a barrier for `n` participants. `n` must be nonzero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            mutex: parking_lot::Mutex::new(()),
            condvar: parking_lot::Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` participants have called `wait`. Returns `true`
    /// for exactly one participant per round (the last to arrive), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            // Last arrival: reset and release everyone.
            self.count.store(0, Ordering::Release);
            {
                let _g = self.mutex.lock();
                self.sense.store(my_sense, Ordering::Release);
            }
            self.condvar.notify_all();
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < SPIN_ROUNDS {
                    if spins.is_multiple_of(32) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                } else {
                    let mut g = self.mutex.lock();
                    if self.sense.load(Ordering::Acquire) != my_sense {
                        self.condvar.wait_for(&mut g, Duration::from_millis(1));
                    }
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_leader_every_time() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_do_not_interleave() {
        // Each thread increments a phase counter; after every barrier all
        // participants must observe the same phase total.
        const T: usize = 4;
        const ROUNDS: usize = 50;
        let b = Arc::new(SenseBarrier::new(T));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let b = Arc::clone(&b);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        total.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        let seen = total.load(Ordering::SeqCst);
                        assert_eq!(seen as usize, T * (round + 1));
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const T: usize = 3;
        const ROUNDS: usize = 20;
        let b = Arc::new(SenseBarrier::new(T));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), ROUNDS as u64);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
