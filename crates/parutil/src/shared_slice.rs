//! Disjoint-write shared slices.
//!
//! Every parallel loop in LULESH has the shape "for i in `lo..hi`: write
//! `out[i]` (or `out[f(i)]` with `f` injective across concurrently running
//! partitions) reading any number of other arrays". Rust's borrow checker
//! cannot see that two tasks write disjoint index sets of the same `Vec`, so
//! this module provides the single, contained `unsafe` primitive the rest of
//! the workspace builds on.
//!
//! # Safety contract
//!
//! [`SharedSlice::get_mut`] and the `write`/`add` helpers require that no two
//! threads concurrently touch the same index with at least one of them
//! writing. The LULESH drivers uphold this structurally:
//!
//! * dense kernels write only indices inside their own partition
//!   (`chunk_range` guarantees partitions are disjoint and exhaustive);
//! * element-indexed scratch (e.g. `fx_elem[8*k..8*k+8]`) is written by the
//!   task owning element `k` only;
//! * region-indexed writes (`EvalEOSForElems`) are disjoint because every
//!   element belongs to exactly one region (asserted by
//!   `lulesh_core::regions` tests).
//!
//! With `debug_assertions` enabled, [`SharedVec`] can optionally record
//! writers per index and panic on overlap (see [`SharedVec::with_overlap_checks`]),
//! which the integration tests use to validate the drivers' partitioning.

use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Allocation alignment (bytes) for [`SharedVec`] and
/// [`AlignedBuf`](crate::aligned::AlignedBuf) storage: one x86-64 cache
/// line, which is also ≥ the widest vector register (AVX-512 = 64 B), so
/// lane-group loads starting at a multiple of the lane width never straddle
/// a cache line.
pub const CACHE_LINE: usize = 64;

/// Array layout for `n` elements of `T`, padded up to [`CACHE_LINE`]
/// alignment. Must be recomputed identically at dealloc time.
fn aligned_array_layout<T>(n: usize) -> Layout {
    Layout::array::<UnsafeCell<T>>(n)
        .and_then(|l| l.align_to(CACHE_LINE))
        .expect("layout overflow")
}

/// A `&[T]`-like view that permits unsynchronized writes to *disjoint*
/// indices from multiple threads.
///
/// Construction from `&mut [T]` is safe (exclusive borrow proves unique
/// ownership for the lifetime); all aliased access goes through `unsafe`
/// methods that carry the disjointness contract.
#[derive(Copy, Clone)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: `SharedSlice` is a raw view. Sending/sharing it is safe; all
// dereferences are `unsafe` and carry the disjoint-access contract. `Sync`
// additionally requires `T: Sync` because the contract permits concurrent
// *reads* of the same index from several threads (`&T` crosses threads).
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap an exclusively borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements in the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No thread may be concurrently writing index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        debug_assert!(
            i < self.len,
            "SharedSlice::get out of bounds: {i} >= {}",
            self.len
        );
        &*self.ptr.add(i)
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// No other thread may concurrently access index `i` at all.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(
            i < self.len,
            "SharedSlice::get_mut out of bounds: {i} >= {}",
            self.len
        );
        &mut *self.ptr.add(i)
    }

    /// Write `v` to element `i`.
    ///
    /// # Safety
    /// Same as [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        *self.get_mut(i) = v;
    }

    /// View a sub-range as a plain mutable slice.
    ///
    /// # Safety
    /// The caller must guarantee that no other thread accesses any index in
    /// `lo..hi` while the returned slice is alive.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }

    /// View a sub-range as a plain shared slice.
    ///
    /// # Safety
    /// No thread may concurrently write any index in `lo..hi`.
    #[inline]
    pub unsafe fn slice(&self, lo: usize, hi: usize) -> &[T] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts(self.ptr.add(lo), hi - lo)
    }
}

impl<'a, T: Copy + std::ops::AddAssign> SharedSlice<'a, T> {
    /// `self[i] += v`.
    ///
    /// # Safety
    /// Same as [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn add(&self, i: usize, v: T) {
        *self.get_mut(i) += v;
    }
}

/// An owning array with interior mutability for disjoint parallel writes.
///
/// This is the storage type used by the LULESH `Domain`: tasks hold an
/// `Arc<Domain>` and write disjoint partitions of each field. Optional
/// overlap checking (debug builds) turns contract violations into panics.
pub struct SharedVec<T> {
    /// 64-byte-aligned allocation of `len` cells ([`aligned_array_layout`]),
    /// or dangling when `len == 0`. Owned: freed (and elements dropped) in
    /// `Drop` with the identically recomputed layout.
    ptr: *mut UnsafeCell<T>,
    len: usize,
    /// Writer tags per index; allocated only when overlap checking is on.
    check: Option<Box<[AtomicU32]>>,
}

// SAFETY: same argument as `SharedSlice` — access is gated by `unsafe`
// methods that carry the disjointness contract; `Sync` requires `T: Sync`
// because the contract permits concurrent same-index reads.
unsafe impl<T: Send> Send for SharedVec<T> {}
unsafe impl<T: Send + Sync> Sync for SharedVec<T> {}

impl<T: Clone> SharedVec<T> {
    /// Allocate `n` elements, each initialized to `v`.
    ///
    /// Note: this *writes* every element on the calling thread, so all
    /// pages fault here. For NUMA first-touch placement use
    /// [`zeroed`](SharedVec::zeroed), which leaves the pages untouched
    /// until their first writer.
    pub fn from_elem(v: T, n: usize) -> Self {
        // Clone into a Vec first so a panicking `clone` can never unwind
        // across a partially initialized aligned allocation.
        Self::from_vec(vec![v; n])
    }
}

/// Marker for types whose all-zero byte pattern is a valid value (the
/// numeric primitives LULESH stores). Gate for
/// [`SharedVec::zeroed`]'s untouched-pages allocation.
pub trait ZeroBits: Copy {}
macro_rules! zero_bits {
    ($($t:ty),*) => { $(impl ZeroBits for $t {})* };
}
zero_bits!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ZeroBits> SharedVec<T> {
    /// Allocate `n` zero elements via `alloc_zeroed` **without touching
    /// the memory**: for large arrays the allocator hands back fresh
    /// zero pages that are physically faulted only on first write, so
    /// whichever thread first writes an index places its page on that
    /// thread's NUMA node (first-touch). `from_elem(0, n)` by contrast
    /// writes — and therefore places — everything on the calling thread.
    pub fn zeroed(n: usize) -> Self {
        if n == 0 {
            return Self::from_vec(Vec::new());
        }
        let layout = aligned_array_layout::<T>(n);
        // SAFETY: `layout` is non-zero-sized (`n > 0`, `T: Copy` numeric);
        // all-zero bytes are a valid `T` per the `ZeroBits` bound, and
        // `UnsafeCell<T>` is `repr(transparent)`. `Drop` recomputes this
        // same layout for the dealloc.
        let ptr = unsafe {
            let ptr = std::alloc::alloc_zeroed(layout) as *mut UnsafeCell<T>;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            ptr
        };
        Self {
            ptr,
            len: n,
            check: None,
        }
    }
}

impl<T> SharedVec<T> {
    /// Take ownership of a `Vec`, moving its elements into a fresh
    /// 64-byte-aligned allocation.
    pub fn from_vec(mut v: Vec<T>) -> Self {
        let n = v.len();
        if n == 0 {
            return Self {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
                check: None,
            };
        }
        let layout = aligned_array_layout::<T>(n);
        // SAFETY: non-zero-sized layout; the elements are *moved* out of the
        // Vec with a bitwise copy and the Vec's length is zeroed before it
        // drops, so each value has exactly one owner. `UnsafeCell<T>` is
        // `repr(transparent)`, so writing `T` through the cell pointer is
        // layout-correct. `Drop` recomputes this layout for the dealloc.
        let ptr = unsafe {
            let ptr = std::alloc::alloc(layout) as *mut UnsafeCell<T>;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            std::ptr::copy_nonoverlapping(v.as_ptr(), ptr as *mut T, n);
            v.set_len(0);
            ptr
        };
        Self {
            ptr,
            len: n,
            check: None,
        }
    }

    /// Base pointer of the allocation (64-byte aligned for `len > 0`).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr as *const T
    }

    /// Enable per-index writer tracking (costs one `AtomicU32` per element).
    /// Used by tests to validate that drivers never overlap writes.
    pub fn with_overlap_checks(mut self) -> Self {
        let n = self.len;
        self.check = Some((0..n).map(|_| AtomicU32::new(u32::MAX)).collect());
        self
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw pointer to cell `i`'s value (bounds-checked in debug builds).
    #[inline]
    fn cell(&self, i: usize) -> *mut T {
        debug_assert!(i < self.len);
        // SAFETY: `i < len`, and the allocation outlives `&self`.
        unsafe { (*self.ptr.add(i)).get() }
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No thread may be concurrently writing index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        &*self.cell(i)
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// No other thread may concurrently access index `i`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.cell(i)
    }

    /// Write `v` into element `i`, recording the writer when overlap checks
    /// are enabled.
    ///
    /// # Safety
    /// Same as [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn write_tagged(&self, i: usize, v: T, writer: u32) {
        if let Some(check) = &self.check {
            let prev = check[i].swap(writer, Ordering::Relaxed);
            assert!(
                prev == u32::MAX || prev == writer,
                "overlapping write to index {i}: writers {prev} and {writer}"
            );
        }
        *self.cell(i) = v;
    }

    /// Write `v` into element `i`.
    ///
    /// # Safety
    /// Same as [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        *self.cell(i) = v;
    }

    /// Reset overlap-check writer tags (call between parallel phases).
    pub fn clear_tags(&self) {
        if let Some(check) = &self.check {
            for c in check.iter() {
                c.store(u32::MAX, Ordering::Relaxed);
            }
        }
    }

    /// View the whole array as a shared slice.
    ///
    /// # Safety
    /// No thread may concurrently write any index.
    #[inline]
    pub unsafe fn as_slice(&self) -> &[T] {
        std::slice::from_raw_parts(self.ptr as *const T, self.len())
    }

    /// View a sub-range as a plain mutable slice.
    ///
    /// # Safety
    /// No other thread may access any index in `lo..hi` while alive.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len());
        std::slice::from_raw_parts_mut(self.ptr.add(lo) as *mut T, hi - lo)
    }

    /// View a sub-range as a plain shared slice.
    ///
    /// # Safety
    /// No thread may concurrently write any index in `lo..hi` while alive.
    #[inline]
    pub unsafe fn slice(&self, lo: usize, hi: usize) -> &[T] {
        debug_assert!(lo <= hi && hi <= self.len());
        std::slice::from_raw_parts(self.ptr.add(lo) as *const T, hi - lo)
    }

    /// Exclusive view over the whole array (requires `&mut self`, safe).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr as *mut T, self.len()) }
    }
}

impl<T> Drop for SharedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        // SAFETY: `ptr`/`len` describe an owned, initialized allocation made
        // with exactly this layout; `&mut self` proves no aliases remain.
        unsafe {
            std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                self.ptr as *mut T,
                self.len,
            ));
            std::alloc::dealloc(self.ptr as *mut u8, aligned_array_layout::<T>(self.len));
        }
    }
}

impl<T: Copy + std::ops::AddAssign> SharedVec<T> {
    /// `self[i] += v`.
    ///
    /// # Safety
    /// Same as [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn add(&self, i: usize, v: T) {
        *self.cell(i) += v;
    }
}

impl<T: Copy> SharedVec<T> {
    /// Read element `i` by value (a raw-pointer read; no reference to the
    /// cell is materialized, so the only possible UB is a genuine data race
    /// on index `i` itself).
    ///
    /// # Safety
    /// No thread may be concurrently writing index `i`.
    #[inline]
    pub unsafe fn load(&self, i: usize) -> T {
        (self.cell(i) as *const T).read()
    }

    /// Copy the contents out into a `Vec`.
    ///
    /// Requires `&mut self`, so it is safe: no concurrent access possible.
    pub fn to_vec(&mut self) -> Vec<T> {
        self.as_mut_slice().to_vec()
    }

    /// Fill every element with `v` (safe: exclusive access).
    pub fn fill(&mut self, v: T) {
        self.as_mut_slice().fill(v);
    }
}

impl<T: Clone> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        // SAFETY: `clone` takes `&self`; callers must not clone while a
        // parallel phase is writing. All workspace call sites clone between
        // phases (single-threaded control code). Cloning into a Vec first
        // keeps a panicking `clone` away from a half-initialized allocation.
        let v: Vec<T> = (0..self.len())
            .map(|i| unsafe { self.get(i) }.clone())
            .collect();
        Self::from_vec(v)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedVec(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_slice_basic_rw() {
        let mut v = vec![0i64; 16];
        let s = SharedSlice::new(&mut v);
        unsafe {
            s.write(3, 42);
            s.add(3, 1);
            assert_eq!(*s.get(3), 43);
        }
        assert_eq!(v[3], 43);
    }

    #[test]
    fn shared_vec_disjoint_parallel_writes() {
        let sv = Arc::new(SharedVec::from_elem(0usize, 1000));
        let mut handles = vec![];
        for t in 0..4 {
            let sv = Arc::clone(&sv);
            handles.push(std::thread::spawn(move || {
                for i in (t * 250)..((t + 1) * 250) {
                    // SAFETY: each thread writes its own quarter.
                    unsafe { sv.write(i, i * 2) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut sv = Arc::try_unwrap(sv).ok().unwrap();
        for (i, v) in sv.to_vec().into_iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn overlap_checker_accepts_disjoint() {
        let sv = SharedVec::from_elem(0u8, 8).with_overlap_checks();
        unsafe {
            sv.write_tagged(0, 1, 0);
            sv.write_tagged(1, 1, 1);
            sv.write_tagged(0, 2, 0); // same writer again: fine
        }
    }

    #[test]
    #[should_panic(expected = "overlapping write")]
    fn overlap_checker_rejects_overlap() {
        let sv = SharedVec::from_elem(0u8, 8).with_overlap_checks();
        unsafe {
            sv.write_tagged(0, 1, 0);
            sv.write_tagged(0, 2, 1);
        }
    }

    #[test]
    fn clear_tags_resets_writers() {
        let sv = SharedVec::from_elem(0u8, 4).with_overlap_checks();
        unsafe { sv.write_tagged(2, 9, 7) };
        sv.clear_tags();
        unsafe { sv.write_tagged(2, 9, 8) }; // no panic after reset
    }

    #[test]
    fn slice_mut_roundtrip() {
        let mut sv = SharedVec::from_vec((0..10i32).collect());
        unsafe {
            let sub = sv.slice_mut(2, 5);
            sub.copy_from_slice(&[7, 8, 9]);
        }
        assert_eq!(sv.to_vec(), vec![0, 1, 7, 8, 9, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn zeroed_is_all_zero_and_writable() {
        let mut sv = SharedVec::<f64>::zeroed(1000);
        assert_eq!(sv.len(), 1000);
        assert!(sv.as_mut_slice().iter().all(|&v| v == 0.0));
        unsafe { sv.write(999, 3.5) };
        assert_eq!(unsafe { sv.load(999) }, 3.5);
        let empty = SharedVec::<u32>::zeroed(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn allocations_are_cache_line_aligned() {
        // Every constructor path, across sizes that are not multiples of the
        // line (ragged allocations must still start aligned).
        for n in [1usize, 2, 3, 7, 8, 63, 64, 65, 1000] {
            let z = SharedVec::<f64>::zeroed(n);
            assert_eq!(z.as_ptr() as usize % CACHE_LINE, 0, "zeroed({n})");
            let e = SharedVec::from_elem(1.5f64, n);
            assert_eq!(e.as_ptr() as usize % CACHE_LINE, 0, "from_elem({n})");
            let v = SharedVec::from_vec(vec![0u32; n]);
            assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0, "from_vec({n})");
            let c = e.clone();
            assert_eq!(c.as_ptr() as usize % CACHE_LINE, 0, "clone({n})");
        }
    }

    #[test]
    fn from_vec_drops_elements_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let sv = SharedVec::from_vec(vec![Counted, Counted, Counted]);
        assert_eq!(DROPS.load(Ordering::Relaxed), 0, "moved, not dropped");
        drop(sv);
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn fill_and_len() {
        let mut sv = SharedVec::from_elem(1.0f64, 5);
        sv.fill(2.5);
        assert_eq!(sv.to_vec(), vec![2.5; 5]);
        assert_eq!(sv.len(), 5);
        assert!(!sv.is_empty());
    }
}
