//! Partition arithmetic.
//!
//! Two partitioning schemes appear in the paper:
//!
//! * **Fixed-size partitions** (the HPX port, paper §IV): a loop over
//!   `0..n` becomes `ceil(n / p)` tasks of at most `p` iterations each,
//!   with `p` the tunable partition size of Table I.
//! * **Static thread split** (the OpenMP reference): `0..n` is split into
//!   `t` contiguous chunks, one per thread, sizes differing by at most one —
//!   the schedule `libgomp` uses for `schedule(static)`.

/// A contiguous index range `[begin, end)` produced by a partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First index (inclusive).
    pub begin: usize,
    /// One past the last index.
    pub end: usize,
}

impl Chunk {
    /// Number of indices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// `true` when the chunk covers no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// Iterate over the covered indices.
    #[inline]
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.begin..self.end
    }
}

/// Number of fixed-size chunks needed to cover `n` items with chunk size
/// `size` (the task count of the paper's manual partitioning).
#[inline]
pub fn chunk_count(n: usize, size: usize) -> usize {
    assert!(size > 0, "chunk size must be positive");
    n.div_ceil(size)
}

/// The `k`-th fixed-size chunk of `0..n` with chunk size `size`.
#[inline]
pub fn chunk_range(n: usize, size: usize, k: usize) -> Chunk {
    let begin = k * size;
    let end = (begin + size).min(n);
    assert!(
        begin <= n,
        "chunk index {k} out of range for n={n}, size={size}"
    );
    Chunk { begin, end }
}

/// Iterator over all fixed-size chunks of `0..n`.
pub fn chunks_of(n: usize, size: usize) -> impl Iterator<Item = Chunk> {
    (0..chunk_count(n, size)).map(move |k| chunk_range(n, size, k))
}

/// The contiguous range thread `t` of `nthreads` owns under a static split
/// of `0..n` (sizes differ by at most one; low-numbered threads get the
/// remainder, matching `libgomp`'s `schedule(static)`).
#[inline]
pub fn static_split(n: usize, nthreads: usize, t: usize) -> Chunk {
    assert!(nthreads > 0 && t < nthreads);
    let base = n / nthreads;
    let rem = n % nthreads;
    let begin = t * base + t.min(rem);
    let len = base + usize::from(t < rem);
    Chunk {
        begin,
        end: begin + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chunk_count_examples() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(4, 4), 1);
        assert_eq!(chunk_count(5, 4), 2);
        assert_eq!(chunk_count(8192, 2048), 4);
    }

    #[test]
    fn chunk_range_last_is_short() {
        let c = chunk_range(10, 4, 2);
        assert_eq!(c, Chunk { begin: 8, end: 10 });
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn static_split_even_and_remainder() {
        // 10 items over 3 threads: 4, 3, 3.
        assert_eq!(static_split(10, 3, 0), Chunk { begin: 0, end: 4 });
        assert_eq!(static_split(10, 3, 1), Chunk { begin: 4, end: 7 });
        assert_eq!(static_split(10, 3, 2), Chunk { begin: 7, end: 10 });
    }

    #[test]
    fn static_split_more_threads_than_items() {
        let owned: Vec<_> = (0..8).map(|t| static_split(3, 8, t)).collect();
        let total: usize = owned.iter().map(|c| c.len()).sum();
        assert_eq!(total, 3);
        assert!(owned[3].is_empty());
    }

    proptest! {
        /// Fixed-size chunks tile 0..n exactly once, in order.
        #[test]
        fn chunks_tile_exactly(n in 0usize..10_000, size in 1usize..4096) {
            let mut next = 0;
            for c in chunks_of(n, size) {
                prop_assert_eq!(c.begin, next);
                prop_assert!(c.len() <= size);
                prop_assert!(!c.is_empty());
                next = c.end;
            }
            prop_assert_eq!(next, n);
        }

        /// Static split tiles 0..n exactly once with near-equal sizes.
        #[test]
        fn static_split_tiles_exactly(n in 0usize..10_000, t in 1usize..64) {
            let mut next = 0;
            let mut min = usize::MAX;
            let mut max = 0;
            for i in 0..t {
                let c = static_split(n, t, i);
                prop_assert_eq!(c.begin, next);
                next = c.end;
                min = min.min(c.len());
                max = max.max(c.len());
            }
            prop_assert_eq!(next, n);
            prop_assert!(max - min <= 1);
        }

        /// chunk_count agrees with the number of yielded chunks.
        #[test]
        fn chunk_count_consistent(n in 0usize..10_000, size in 1usize..4096) {
            prop_assert_eq!(chunks_of(n, size).count(), chunk_count(n, size));
        }
    }
}
