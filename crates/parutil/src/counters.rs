//! Busy/idle time accounting.
//!
//! The paper's Figure 11 compares the *productive-time ratio* — the fraction
//! of total worker-thread time spent executing kernel code rather than
//! idling or doing runtime management — between HPX (via its idle-rate
//! performance counter) and OpenMP (via manual per-region timing). Both of
//! our runtimes account time through [`BusyIdleClock`], one per worker,
//! cache-line padded to avoid false sharing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pad-and-align wrapper keeping each worker's counters on its own cache
/// line(s).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Accumulates nanoseconds of "busy" (productive kernel execution) and
/// bookkeeping counts for one worker thread.
#[derive(Debug, Default)]
pub struct BusyIdleClock {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
    remote_steals: AtomicU64,
}

impl BusyIdleClock {
    /// New clock with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, attributing its wall time to busy time and counting one task.
    #[inline]
    pub fn run_busy<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Directly add busy nanoseconds (used when the caller already timed).
    #[inline]
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Count one executed task without touching the busy clock (used with
    /// [`add_busy_ns`](Self::add_busy_ns) when the caller times the task
    /// body itself, e.g. to share one measurement with a trace span).
    #[inline]
    pub fn count_task(&self) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful steal.
    #[inline]
    pub fn count_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful steal whose victim lived on a *different*
    /// NUMA node (also counted in [`count_steal`](Self::count_steal)'s
    /// total — remote steals are a subset of all steals).
    #[inline]
    pub fn count_remote_steal(&self) {
        self.remote_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Total busy nanoseconds so far.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Tasks executed so far.
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Successful cross-node steals so far (subset of [`steals`](Self::steals)).
    pub fn remote_steals(&self) -> u64 {
        self.remote_steals.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.busy_ns.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.remote_steals.store(0, Ordering::Relaxed);
    }
}

/// Aggregate utilization snapshot across a set of workers, the quantity
/// plotted in Figure 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Sum of per-worker busy nanoseconds.
    pub busy_ns: u64,
    /// Workers × wall nanoseconds of the measured interval.
    pub total_ns: u64,
    /// Total tasks executed.
    pub tasks: u64,
    /// Total successful steals.
    pub steals: u64,
}

impl Utilization {
    /// Productive-time ratio in `[0, 1]` (clamped: timer jitter can push the
    /// raw ratio epsilon above 1 on oversubscribed hosts).
    pub fn productive_ratio(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        (self.busy_ns as f64 / self.total_ns as f64).min(1.0)
    }
}

/// Sum worker clocks over a measured wall-clock interval.
pub fn aggregate(clocks: &[CachePadded<BusyIdleClock>], wall_ns: u64) -> Utilization {
    Utilization {
        busy_ns: clocks.iter().map(|c| c.busy_ns()).sum(),
        total_ns: wall_ns.saturating_mul(clocks.len() as u64),
        tasks: clocks.iter().map(|c| c.tasks()).sum(),
        steals: clocks.iter().map(|c| c.steals()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_busy_accumulates() {
        let c = BusyIdleClock::new();
        let out = c.run_busy(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        assert!(c.busy_ns() >= 1_000_000);
        assert_eq!(c.tasks(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = BusyIdleClock::new();
        c.add_busy_ns(100);
        c.count_steal();
        c.count_remote_steal();
        assert_eq!(c.remote_steals(), 1);
        c.reset();
        assert_eq!(c.busy_ns(), 0);
        assert_eq!(c.tasks(), 0);
        assert_eq!(c.steals(), 0);
        assert_eq!(c.remote_steals(), 0);
    }

    #[test]
    fn aggregate_and_ratio() {
        let clocks: Vec<CachePadded<BusyIdleClock>> =
            (0..4).map(|_| CachePadded(BusyIdleClock::new())).collect();
        for c in &clocks {
            c.add_busy_ns(500);
        }
        let u = aggregate(&clocks, 1000);
        assert_eq!(u.busy_ns, 2000);
        assert_eq!(u.total_ns, 4000);
        assert!((u.productive_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_clamps_to_one_and_handles_zero() {
        let u = Utilization {
            busy_ns: 10,
            total_ns: 5,
            tasks: 0,
            steals: 0,
        };
        assert_eq!(u.productive_ratio(), 1.0);
        let z = Utilization {
            busy_ns: 0,
            total_ns: 0,
            tasks: 0,
            steals: 0,
        };
        assert_eq!(z.productive_ratio(), 0.0);
    }

    #[test]
    fn cache_padded_alignment() {
        assert!(std::mem::align_of::<CachePadded<BusyIdleClock>>() >= 128);
    }
}
