//! Low-level parallel utilities shared by the LULESH runtimes.
//!
//! This crate holds the small, carefully audited primitives that both the
//! HPX-substitute task runtime ([`taskrt`]) and the OpenMP-substitute
//! fork-join runtime ([`ompsim`]) are built on:
//!
//! * [`SharedSlice`] / [`SharedVec`] — the one documented-unsafe escape hatch
//!   that lets many tasks write *disjoint* index ranges of the same array, the
//!   fundamental access pattern of every LULESH kernel.
//! * [`chunks`] — partition arithmetic: splitting `0..n` into fixed-size or
//!   per-thread contiguous chunks, exactly once, with no element dropped.
//! * [`barrier`] — a sense-reversing spin/park barrier used by the fork-join
//!   pool.
//! * [`counters`] — cache-line padded busy/idle clocks used to reproduce the
//!   paper's Figure 11 (productive-time ratio).
//!
//! [`taskrt`]: https://docs.rs/taskrt
//! [`ompsim`]: https://docs.rs/ompsim

pub mod aligned;
pub mod barrier;
pub mod chunks;
pub mod counters;
pub mod shared_slice;

pub use aligned::AlignedBuf;
pub use barrier::SenseBarrier;
pub use chunks::{chunk_count, chunk_range, chunks_of, static_split, Chunk};
pub use counters::{aggregate, BusyIdleClock, CachePadded, Utilization};
pub use shared_slice::{SharedSlice, SharedVec, ZeroBits, CACHE_LINE};
